//! Property-based tests for the storage substrate: MVTSO's serializability
//! invariant (Lemma 1) and the serialization-graph auditor, driven by
//! randomly generated concurrent transaction mixes.

use basil_common::error::AbortReason;
use basil_common::{ClientId, Duration, Key, SimTime, Timestamp, Value};
use basil_store::{
    audit_serializability, CheckOutcome, MvtsoStore, Transaction, TransactionBuilder, Vote,
};
use proptest::prelude::*;
use std::sync::Arc;

const DELTA: Duration = Duration::from_millis(100);
const CLOCK: SimTime = SimTime::from_secs(10);

/// A randomly generated operation mix for one transaction.
#[derive(Clone, Debug)]
struct TxSpec {
    time: u64,
    client: u64,
    reads: Vec<u8>,
    writes: Vec<u8>,
}

fn tx_spec() -> impl Strategy<Value = TxSpec> {
    (
        1u64..1_000_000,
        0u64..8,
        proptest::collection::vec(0u8..12, 0..3),
        proptest::collection::vec(0u8..12, 0..3),
    )
        .prop_map(|(time, client, reads, writes)| TxSpec {
            time,
            client,
            reads,
            writes,
        })
}

fn key(i: u8) -> Key {
    Key::new(format!("k{i}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying an arbitrary stream of transactions to a single replica's
    /// MVTSO store — preparing each, then committing those that got a commit
    /// vote — always yields a serializable committed history, and the store
    /// never commits a transaction it voted to abort.
    #[test]
    fn mvtso_committed_histories_are_serializable(specs in proptest::collection::vec(tx_spec(), 1..40)) {
        let mut store = MvtsoStore::with_initial_data((0..12).map(|i| (key(i), Value::from_u64(0))));
        let mut committed: Vec<Arc<Transaction>> = Vec::new();

        for spec in &specs {
            let ts = Timestamp::from_nanos(spec.time, ClientId(spec.client));
            let mut builder = TransactionBuilder::new(ts);
            for r in &spec.reads {
                // Read the version a fresh reader would actually observe, like
                // a client that contacted this replica.
                let observed = store
                    .read_without_rts(&key(*r), ts)
                    .committed
                    .map(|c| c.version)
                    .unwrap_or(Timestamp::ZERO);
                builder.record_read(key(*r), observed);
            }
            for w in &spec.writes {
                builder.record_write(key(*w), Value::from_u64(spec.time));
            }
            let tx = builder.build_shared();
            if tx.is_empty() {
                continue;
            }
            match store.prepare(&tx, CLOCK, DELTA) {
                CheckOutcome::Decided(Vote::Commit) => {
                    store.commit(&tx);
                    committed.push(tx);
                }
                CheckOutcome::Decided(Vote::Abort(_)) => {
                    store.abort(tx.id());
                }
                CheckOutcome::Pending { .. } => {
                    // No dependencies are declared in this test, so pending
                    // outcomes are impossible.
                    prop_assert!(false, "unexpected pending outcome");
                }
            }
        }

        prop_assert!(audit_serializability(&committed).is_ok(),
            "MVTSO committed a non-serializable history");
    }

    /// Timestamps above the acceptance window are always rejected, regardless
    /// of the rest of the transaction.
    #[test]
    fn timestamp_bound_is_always_enforced(extra_ns in 1u64..10_000_000, spec in tx_spec()) {
        let mut store = MvtsoStore::new();
        let bound = CLOCK.as_nanos() + DELTA.as_nanos();
        let ts = Timestamp::from_nanos(bound + extra_ns, ClientId(spec.client));
        let mut builder = TransactionBuilder::new(ts);
        builder.record_write(key(0), Value::from_u64(1));
        let tx = builder.build_shared();
        let outcome = store.prepare(&tx, CLOCK, DELTA);
        prop_assert_eq!(
            outcome,
            CheckOutcome::Decided(Vote::Abort(AbortReason::TimestampOutOfBounds))
        );
    }

    /// The auditor accepts every history produced by executing transactions
    /// strictly one at a time in timestamp order (MVTSO's serialization
    /// order), each reading the latest previously written version — i.e.
    /// genuinely serial histories are never misflagged.
    #[test]
    fn auditor_accepts_serial_histories(specs in proptest::collection::vec(tx_spec(), 1..30)) {
        // Execute in timestamp order, which is the serialization order MVTSO
        // (and the auditor's version order) uses.
        let mut ordered: Vec<(Timestamp, &TxSpec)> = specs
            .iter()
            .map(|s| (Timestamp::from_nanos(s.time, ClientId(s.client)), s))
            .collect();
        ordered.sort_by_key(|(ts, _)| *ts);
        ordered.dedup_by_key(|(ts, _)| *ts);

        let mut latest: std::collections::HashMap<Key, Timestamp> = std::collections::HashMap::new();
        let mut txs = Vec::new();
        for (ts, spec) in ordered {
            let mut builder = TransactionBuilder::new(ts);
            for r in &spec.reads {
                let version = latest.get(&key(*r)).copied().unwrap_or(Timestamp::ZERO);
                builder.record_read(key(*r), version);
            }
            for w in &spec.writes {
                builder.record_write(key(*w), Value::from_u64(spec.time));
            }
            let tx = builder.build();
            if tx.is_empty() {
                continue;
            }
            for w in tx.write_set() {
                latest.insert(w.key.clone(), ts);
            }
            txs.push(tx);
        }
        prop_assert!(audit_serializability(&txs).is_ok());
    }

    /// Transaction identifiers are collision-free across differing metadata
    /// (a hash collision would let a Byzantine client equivocate contents).
    #[test]
    fn transaction_ids_are_unique(specs in proptest::collection::vec(tx_spec(), 2..30)) {
        let mut ids = std::collections::HashSet::new();
        let mut metas = std::collections::HashSet::new();
        for spec in &specs {
            let ts = Timestamp::from_nanos(spec.time, ClientId(spec.client));
            let mut builder = TransactionBuilder::new(ts);
            for r in &spec.reads {
                builder.record_read(key(*r), Timestamp::ZERO);
            }
            for w in &spec.writes {
                builder.record_write(key(*w), Value::from_u64(7));
            }
            let tx = builder.build();
            let meta = format!("{:?}|{:?}|{:?}", tx.timestamp(), tx.read_set(), tx.write_set());
            if metas.insert(meta) {
                prop_assert!(ids.insert(tx.id()), "distinct transactions must have distinct ids");
            }
        }
    }
}
