//! WAL corruption robustness: recovery from an arbitrarily byte-flipped
//! log image never panics and always yields a clean prefix.
//!
//! The real-IO runtime persists the WAL to an ordinary file, so a crash (or
//! a failing disk) can hand [`Wal::recover`] literally anything. These
//! properties pin the contract the replica relies on: whatever the damage —
//! a single flipped bit in a length field, a shredded checksum, multi-byte
//! scribbles across several frames — recovery returns exactly the records
//! that precede the first corrupted frame, and the recovered log is itself
//! clean (re-recovering it reproduces the same records with no further
//! truncation).

use basil_common::{ClientId, Duration, Key, Timestamp, Value};
use basil_store::{Transaction, TransactionBuilder, Wal, WalRecord};
use proptest::prelude::*;
use std::sync::Arc;

/// A compact, generatable description of one WAL record.
#[derive(Clone, Debug)]
struct RecordSpec {
    kind: u8,
    time: u64,
    client: u64,
    commit: bool,
    with_tx: bool,
}

fn record_spec() -> impl Strategy<Value = RecordSpec> {
    (
        0u8..4,
        1u64..1_000_000,
        0u64..8,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(kind, time, client, commit, with_tx)| RecordSpec {
            kind,
            time,
            client,
            commit,
            with_tx,
        })
}

fn make_tx(spec: &RecordSpec) -> Arc<Transaction> {
    let ts = Timestamp::from_nanos(spec.time, ClientId(spec.client));
    let mut b = TransactionBuilder::new(ts);
    b.record_write(
        Key::new(format!("k{}", spec.client)),
        Value::from_u64(spec.time),
    );
    b.build_shared()
}

fn make_record(spec: &RecordSpec) -> WalRecord {
    match spec.kind {
        0 => WalRecord::Prepare {
            commit: spec.commit,
            tx: make_tx(spec),
        },
        1 => {
            let tx = make_tx(spec);
            WalRecord::Decision {
                txid: tx.id(),
                commit: spec.commit,
                view: spec.time % 3,
            }
        }
        2 => {
            let tx = make_tx(spec);
            WalRecord::Applied {
                txid: tx.id(),
                commit: spec.commit,
                tx: spec.with_tx.then(|| Arc::clone(&tx)),
            }
        }
        _ => WalRecord::GcWatermark {
            watermark: Timestamp::from_nanos(spec.time, ClientId(spec.client)),
        },
    }
}

/// Appends `specs` to a fresh WAL and returns the records plus the raw
/// log image.
fn build_log(specs: &[RecordSpec]) -> (Vec<WalRecord>, Vec<u8>) {
    let mut wal = Wal::new(Duration::ZERO);
    let records: Vec<WalRecord> = specs.iter().map(make_record).collect();
    for r in &records {
        wal.append(r);
    }
    let bytes = wal.take_bytes();
    (records, bytes)
}

/// The index of the frame containing byte offset `at`, given the intact
/// log image (frame = 8-byte header + big-endian u32 payload length).
fn frame_of_offset(bytes: &[u8], at: usize) -> usize {
    let mut start = 0usize;
    let mut frame = 0usize;
    while start < bytes.len() {
        let len = u32::from_be_bytes(bytes[start..start + 4].try_into().unwrap()) as usize;
        let end = start + 8 + len;
        if at < end {
            return frame;
        }
        start = end;
        frame += 1;
    }
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary multi-byte corruption (1–8 guaranteed byte changes at
    /// random offsets) never panics recovery, and the replayed records are
    /// exactly the prefix preceding the first damaged frame.
    #[test]
    fn corrupted_log_recovers_the_clean_prefix(
        specs in proptest::collection::vec(record_spec(), 1..12),
        flips in proptest::collection::vec((any::<u64>(), 1u8..=255), 1..8),
    ) {
        let (records, bytes) = build_log(&specs);
        prop_assert!(!bytes.is_empty());

        // XOR with non-zero masks; two flips on the same byte can cancel,
        // so the damage front is the first byte that actually differs.
        let mut damaged = bytes.clone();
        for (off, mask) in &flips {
            let at = (*off as usize) % damaged.len();
            damaged[at] ^= mask;
        }
        let first_hit = bytes.iter().zip(&damaged).position(|(a, b)| a != b);
        let cut = match first_hit {
            Some(at) => frame_of_offset(&bytes, at),
            None => records.len(), // all flips cancelled: the log is intact
        };

        let (recovered, replayed) = Wal::recover(damaged, Duration::ZERO);
        prop_assert_eq!(replayed.len(), cut);
        prop_assert_eq!(&replayed[..], &records[..cut]);

        // The recovered log is itself clean: recovering it again replays
        // the same records with no further truncation.
        let mut recovered = recovered;
        let (_, again) = Wal::recover(recovered.take_bytes(), Duration::ZERO);
        prop_assert_eq!(&again[..], &records[..cut]);
    }

    /// A recovered-from-corruption WAL keeps working: new appends land
    /// after the preserved prefix and survive another recovery intact.
    #[test]
    fn appends_after_corrupted_recovery_are_durable(
        specs in proptest::collection::vec(record_spec(), 1..8),
        off in any::<u64>(),
        mask in 1u8..=255,
        tail in record_spec(),
    ) {
        let (records, bytes) = build_log(&specs);
        let mut damaged = bytes.clone();
        let at = (off as usize) % damaged.len();
        damaged[at] ^= mask;
        let cut = frame_of_offset(&bytes, at);

        let (mut wal, replayed) = Wal::recover(damaged, Duration::ZERO);
        prop_assert_eq!(replayed.len(), cut);

        let appended = make_record(&tail);
        wal.append(&appended);
        let (_, after) = Wal::recover(wal.take_bytes(), Duration::ZERO);
        prop_assert_eq!(after.len(), cut + 1);
        prop_assert_eq!(&after[..cut], &records[..cut]);
        prop_assert_eq!(&after[cut], &appended);
    }

    /// Truncated images (any prefix of a valid log) recover without panic
    /// and replay only whole frames.
    #[test]
    fn truncated_log_recovers_whole_frames(
        specs in proptest::collection::vec(record_spec(), 1..8),
        keep in any::<u64>(),
    ) {
        let (records, bytes) = build_log(&specs);
        let keep = (keep as usize) % (bytes.len() + 1);
        let cut = frame_of_offset(&bytes, keep);
        // `keep` bytes retain every frame that ends at or before the cut.
        let whole = if keep == bytes.len() { records.len() } else { cut };

        let (_, replayed) = Wal::recover(bytes[..keep].to_vec(), Duration::ZERO);
        prop_assert_eq!(replayed.len(), whole);
        prop_assert_eq!(&replayed[..], &records[..whole]);
    }
}
