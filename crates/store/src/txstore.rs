//! The storage seam between [`crate::mvtso::MvtsoStore`] and the
//! concurrency-safe [`crate::concurrent::ConcurrentMvtsoStore`].
//!
//! `BasilReplica` is generic over this trait: the simulator keeps the
//! serial store (so every pinned determinism golden stays byte-identical),
//! while the real-IO runtime can opt into the sharded concurrent store and
//! fan independent St1/prepare work across an executor pool. The trait
//! surface is exactly the set of store calls the replica state machine
//! makes — nothing more — so both implementations stay honest about what
//! the protocol actually needs.
//!
//! Methods take `&mut self` to match the serial store's natural signatures;
//! the concurrent implementation ([`crate::concurrent::SharedStore`]) is
//! internally synchronized and simply ignores the exclusivity. With the
//! default type parameter (`BasilReplica<S = MvtsoStore>`) every call is
//! statically dispatched and inlines exactly as before — the seam costs
//! nothing on the serial path (bounded at ≤5% on `mvtso_prepare_commit` by
//! the bench baseline).

use crate::mvtso::{CheckOutcome, MvtsoStore, ReadResult, StoreStats, Vote};
use crate::tx::Transaction;
use basil_common::{Duration, Key, SimTime, Timestamp, TxId, Value};
use std::sync::Arc;

/// The store operations a Basil replica performs (Algorithm 1 plus the
/// decision/GC lifecycle). See the module docs for the design intent.
pub trait TxStore: Send + 'static {
    /// Creates a store preloaded with genesis versions at
    /// [`Timestamp::ZERO`].
    fn with_initial_data(data: impl IntoIterator<Item = (Key, Value)>) -> Self
    where
        Self: Sized;

    /// Serves a versioned read at `ts` and registers `ts` in the key's RTS
    /// set.
    fn read(&mut self, key: &Key, ts: Timestamp) -> ReadResult;

    /// Removes a read timestamp previously registered by
    /// [`TxStore::read`].
    fn remove_rts(&mut self, key: &Key, ts: Timestamp);

    /// Runs the MVTSO concurrency-control check (Algorithm 1) for `tx`.
    fn prepare(
        &mut self,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> CheckOutcome;

    /// Applies a commit decision; returns deferred votes it released.
    fn commit(&mut self, tx: &Arc<Transaction>) -> Vec<(TxId, Vote)>;

    /// Applies an abort decision; returns deferred votes it released.
    fn abort(&mut self, txid: TxId) -> Vec<(TxId, Vote)>;

    /// Garbage-collects bookkeeping below `watermark` and raises the abort
    /// floor.
    fn gc_before(&mut self, watermark: Timestamp);

    /// The prepared transaction's shared metadata, if present.
    fn prepared_tx_shared(&self, txid: &TxId) -> Option<Arc<Transaction>>;

    /// The scan-free fast-path counters.
    fn store_stats(&self) -> StoreStats;
}

impl TxStore for MvtsoStore {
    fn with_initial_data(data: impl IntoIterator<Item = (Key, Value)>) -> Self {
        MvtsoStore::with_initial_data(data)
    }

    fn read(&mut self, key: &Key, ts: Timestamp) -> ReadResult {
        MvtsoStore::read(self, key, ts)
    }

    fn remove_rts(&mut self, key: &Key, ts: Timestamp) {
        MvtsoStore::remove_rts(self, key, ts)
    }

    fn prepare(
        &mut self,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> CheckOutcome {
        MvtsoStore::prepare(self, tx, local_clock, delta)
    }

    fn commit(&mut self, tx: &Arc<Transaction>) -> Vec<(TxId, Vote)> {
        MvtsoStore::commit(self, tx)
    }

    fn abort(&mut self, txid: TxId) -> Vec<(TxId, Vote)> {
        MvtsoStore::abort(self, txid)
    }

    fn gc_before(&mut self, watermark: Timestamp) {
        MvtsoStore::gc_before(self, watermark)
    }

    fn prepared_tx_shared(&self, txid: &TxId) -> Option<Arc<Transaction>> {
        MvtsoStore::prepared_tx_shared(self, txid)
    }

    fn store_stats(&self) -> StoreStats {
        self.stats()
    }
}
