//! The per-replica MVTSO storage engine and the concurrency-control check of
//! Algorithm 1.
//!
//! Each Basil replica holds one [`MvtsoStore`] for its shard's key range. The
//! store tracks, per key, one flat `KeyRecord`:
//!
//! * the chain of **committed** versions,
//! * the **prepared** (visible but uncommitted) writes of transactions that
//!   passed the concurrency-control check,
//! * the read timestamps (**RTS**) left behind by execution-phase reads, and
//! * the reads performed by prepared and committed transactions.
//!
//! All four indexes are timestamp-sorted [`VersionArray`]s (flat `Vec`s,
//! append-mostly) rather than per-key `BTreeMap`s, and every record carries a
//! **generation stamp** plus two watermarks — the largest write timestamp and
//! the largest read timestamp currently present. The watermarks let
//! [`MvtsoStore::prepare`] answer the common no-conflict case with two integer
//! comparisons per key and no scan at all; the generation stamp counts record
//! mutations and pins the watermarks' freshness (every mutation bumps it, and
//! any removal that could lower a watermark recomputes the watermark from the
//! array tails in `O(1)`). [`MvtsoStore::stats`] reports the fast-path hit
//! rate. See `docs/ARCHITECTURE.md` ("Store layout & conflict windows").
//!
//! [`MvtsoStore::prepare`] implements Algorithm 1 of the paper. Step 7 of the
//! algorithm ("wait for all pending dependencies") is realised without
//! blocking: if some dependencies of the transaction have no decision yet the
//! check returns [`CheckOutcome::Pending`], and the replica defers its vote
//! until [`MvtsoStore::commit`] / [`MvtsoStore::abort`] of the dependencies
//! release it (the returned wake-ups carry the final vote).
//!
//! One deviation from the paper's text is documented inline: a dependency the
//! replica has *never heard of* (its `ST1` has not arrived, e.g. due to
//! message reordering) is treated as pending rather than invalid, which
//! avoids spurious aborts during fault-free executions while preserving
//! safety (the vote is still withheld until the dependency's fate is known).

use crate::tx::{Dependency, Transaction};
use crate::varray::{ReaderSummary, VersionArray};
use basil_common::error::AbortReason;
use basil_common::{Duration, FastHashMap, FastHashSet, Key, SimTime, Timestamp, TxId, Value};
use std::sync::Arc;

/// A replica's vote on whether committing a transaction preserves
/// serializability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// The transaction may commit.
    Commit,
    /// The transaction must abort, for the given reason.
    Abort(AbortReason),
}

impl Vote {
    /// True for [`Vote::Commit`].
    pub fn is_commit(&self) -> bool {
        matches!(self, Vote::Commit)
    }
}

/// Result of running the concurrency-control check for a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The vote is known immediately.
    Decided(Vote),
    /// The transaction is prepared, but the vote is withheld until every
    /// listed dependency reaches a decision on this replica.
    Pending {
        /// Dependencies whose decision this replica has not yet learned.
        waiting_on: Vec<TxId>,
    },
}

/// The final, durable decision for a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Decision {
    /// The transaction committed.
    Commit,
    /// The transaction aborted.
    Abort,
}

/// The latest committed version of a key visible to a given timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedVersion {
    /// Timestamp of the transaction that wrote the version.
    pub version: Timestamp,
    /// The value written.
    pub value: Value,
    /// Identifier of the writing transaction.
    pub txid: TxId,
}

/// The latest prepared (uncommitted) version of a key visible to a timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedVersion {
    /// Timestamp of the preparing transaction.
    pub version: Timestamp,
    /// The value it intends to write.
    pub value: Value,
    /// Identifier of the preparing transaction.
    pub txid: TxId,
    /// That transaction's own dependency set (`Dep_T'`), which the reader
    /// needs in order to understand what must commit before its dependency
    /// can.
    pub deps: Vec<Dependency>,
}

/// Reply to a versioned read: the newest committed and newest prepared
/// versions with timestamps strictly smaller than the reader's timestamp.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadResult {
    /// Newest committed version visible to the reader, if any.
    pub committed: Option<CommittedVersion>,
    /// Newest prepared version visible to the reader, if any.
    pub prepared: Option<PreparedVersion>,
}

/// Counters for the scan-free prepare fast path (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Prepare calls that ran the full concurrency-control pipeline (i.e.
    /// were not answered from the duplicate-delivery memo).
    pub prepares: u64,
    /// Per-key conflict checks answered by the watermark comparison alone.
    pub fast_path_checks: u64,
    /// Per-key conflict checks that fell past the watermark (the slow
    /// path). A subset of these still avoid the ordered reader scan via the
    /// Bloom-style reader summary — see `reader_scan_skips`.
    pub slow_path_checks: u64,
    /// Slow-path write checks whose invalidated-reader scan was skipped
    /// because the per-key reader summary proved no reader interval covers
    /// the write's timestamp.
    pub reader_scan_skips: u64,
}

impl StoreStats {
    /// Fraction of per-key checks answered without a scan (1.0 when no
    /// checks ran yet).
    pub fn fast_path_hit_rate(&self) -> f64 {
        let total = self.fast_path_checks + self.slow_path_checks;
        if total == 0 {
            return 1.0;
        }
        self.fast_path_checks as f64 / total as f64
    }

    /// Adds another store's counters into this one (harness aggregation).
    pub fn merge(&mut self, other: &StoreStats) {
        self.prepares += other.prepares;
        self.fast_path_checks += other.fast_path_checks;
        self.slow_path_checks += other.slow_path_checks;
        self.reader_scan_skips += other.reader_scan_skips;
    }
}

/// All concurrency-control state of one key, flattened into a single record
/// (one cache-friendly map lookup per key per check instead of five).
#[derive(Debug, Default)]
struct KeyRecord {
    /// Committed versions, sorted by writer timestamp.
    committed: VersionArray<(TxId, Value)>,
    /// Prepared (visible, uncommitted) writes, sorted by writer timestamp.
    prepared: VersionArray<TxId>,
    /// Reads of committed transactions: reader timestamp -> version read.
    committed_reads: VersionArray<Timestamp>,
    /// Reads of prepared transactions: reader timestamp -> version read.
    prepared_reads: VersionArray<Timestamp>,
    /// Read timestamps left by execution-phase reads (set semantics).
    rts: VersionArray<()>,
    /// Mutation counter: bumped on every insert/remove touching this record.
    /// The watermarks below are exact as of this generation.
    generation: u64,
    /// Largest committed-or-prepared write timestamp present.
    max_write: Timestamp,
    /// Largest read timestamp present across committed reads, prepared
    /// reads, and RTS entries.
    max_read: Timestamp,
    /// Bloom-style cover of the `(version read, reader)` intervals in
    /// `committed_reads` and `prepared_reads`. A clear bucket proves no
    /// reader can be invalidated by a write at that timestamp, skipping the
    /// ordered scans of check (5); rebuilt after GC drains a prefix.
    reader_summary: ReaderSummary,
}

impl KeyRecord {
    /// Records a write at `ts` into the watermarks.
    fn note_write(&mut self, ts: Timestamp) {
        self.generation += 1;
        if ts > self.max_write {
            self.max_write = ts;
        }
    }

    /// Records a read at `ts` into the watermarks.
    fn note_read(&mut self, ts: Timestamp) {
        self.generation += 1;
        if ts > self.max_read {
            self.max_read = ts;
        }
    }

    /// Recomputes the write watermark from the array tails (`O(1)`), after a
    /// removal that may have lowered it.
    fn refresh_write_watermark(&mut self) {
        self.max_write = self
            .committed
            .max_ts()
            .into_iter()
            .chain(self.prepared.max_ts())
            .max()
            .unwrap_or(Timestamp::ZERO);
    }

    /// True when every index is empty: the record carries no state a fresh
    /// `KeyRecord::default()` would not, so it can be dropped from the map.
    fn is_unused(&self) -> bool {
        self.committed.is_empty()
            && self.prepared.is_empty()
            && self.committed_reads.is_empty()
            && self.prepared_reads.is_empty()
            && self.rts.is_empty()
    }

    /// Recomputes the read watermark from the array tails (`O(1)`), after a
    /// removal that may have lowered it.
    fn refresh_read_watermark(&mut self) {
        self.max_read = self
            .committed_reads
            .max_ts()
            .into_iter()
            .chain(self.prepared_reads.max_ts())
            .chain(self.rts.max_ts())
            .max()
            .unwrap_or(Timestamp::ZERO);
    }

    /// Records a read of `version` performed at `reader` in the summary.
    fn cover_read(&mut self, version: Timestamp, reader: Timestamp) {
        self.reader_summary.cover(version, reader);
    }

    /// Recomputes the reader summary from the surviving reader entries.
    /// Removals never clear summary bits (Bloom semantics), so GC calls this
    /// after draining a prefix to stop stale covers from forcing scans.
    fn rebuild_reader_summary(&mut self) {
        self.reader_summary.clear();
        for (reader, version) in self
            .committed_reads
            .iter()
            .chain(self.prepared_reads.iter())
        {
            self.reader_summary.cover(*version, *reader);
        }
    }
}

/// The multiversioned store of a single replica.
///
/// Per-key state lives in one `Key -> KeyRecord` map; per-transaction state
/// (metadata, decisions, dependency wait graph) in `TxId`-keyed maps. Both
/// key kinds are uniform and attacker-independent ([`Key`]s are short
/// workload strings, [`TxId`]s SHA-256 digests), so the maps use
/// `basil_common::fasthash` instead of SipHash (see that module for the
/// threat-model note).
#[derive(Debug, Default)]
pub struct MvtsoStore {
    /// Per-key records live in an **arena**: the hash table maps a key to a
    /// `u32` slot in `key_records`, and freed slots are recycled through
    /// `free_records`. Storing ~160-byte records inline in the table made
    /// every probe, insert, and rehash drag whole records through the cache
    /// (measured ~1 µs per map operation on the 96-client bench's ~50k-key
    /// working set); with 4-byte values the table stays small and hot, the
    /// records are reached by direct indexing, and — because an index,
    /// unlike a map entry reference, can be *saved* — the prepare pipeline
    /// resolves each key once and reuses the slot for both the conflict
    /// check and the prepared-index insert.
    key_index: FastHashMap<Key, u32>,
    /// The record arena (`key_index` values point here).
    key_records: Vec<KeyRecord>,
    /// Recycled arena slots (records released by GC or RTS removal).
    free_records: Vec<u32>,
    /// Scratch: per-prepare resolved arena slots for the read/write sets
    /// (`u32::MAX` = key unknown at check time). Reused across calls to
    /// avoid an allocation per prepare; never observable state.
    scratch_reads: Vec<u32>,
    /// Scratch for the write set (see `scratch_reads`).
    scratch_writes: Vec<u32>,
    /// Metadata of committed transactions (needed for the read-write checks
    /// and for the serializability audit). `Arc`-shared so the prepared
    /// entry is promoted on commit without copying, and so audits can
    /// borrow instead of cloning the whole history.
    committed_txs: FastHashMap<TxId, Arc<Transaction>>,
    /// Metadata of prepared (visible, uncommitted) transactions.
    prepared_txs: FastHashMap<TxId, Arc<Transaction>>,
    /// Final decisions known to this replica.
    decisions: FastHashMap<TxId, Decision>,
    /// Aborted transactions (subset view of `decisions`, kept for fast checks).
    aborted: FastHashSet<TxId>,
    /// Transactions whose vote is withheld, with the dependencies still
    /// missing a decision.
    pending: FastHashMap<TxId, FastHashSet<TxId>>,
    /// Reverse index: dependency -> transactions waiting on it.
    waiters: FastHashMap<TxId, Vec<TxId>>,
    /// Highest watermark any [`MvtsoStore::gc_before`] sweep has used.
    /// Conflict evidence at or below it is gone, so prepares timestamped
    /// there must be refused (see the GC floor in `prepare`).
    gc_watermark: Timestamp,
    /// Fast-path counters.
    stats: StoreStats,
}

/// Sentinel for "key had no record when the check pass resolved it".
const NO_SLOT: u32 = u32::MAX;

impl MvtsoStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The record of `key`, if one exists.
    fn key_rec(&self, key: &Key) -> Option<&KeyRecord> {
        self.key_index
            .get(key)
            .map(|i| &self.key_records[*i as usize])
    }

    /// Mutable access to the record of `key`, if one exists.
    fn key_rec_mut(&mut self, key: &Key) -> Option<(u32, &mut KeyRecord)> {
        let idx = *self.key_index.get(key)?;
        Some((idx, &mut self.key_records[idx as usize]))
    }

    /// The arena slot of `key`, creating an empty record if needed.
    fn intern_key(&mut self, key: &Key) -> u32 {
        if let Some(idx) = self.key_index.get(key) {
            return *idx;
        }
        let idx = match self.free_records.pop() {
            Some(free) => free,
            None => {
                let idx = u32::try_from(self.key_records.len()).expect("fewer than 2^32 keys");
                assert!(idx != NO_SLOT, "key arena exhausted");
                self.key_records.push(KeyRecord::default());
                idx
            }
        };
        self.key_index.insert(key.clone(), idx);
        idx
    }

    /// Drops `key`'s (empty) record: the slot is reset and recycled.
    fn release_key(&mut self, key: &Key, idx: u32) {
        self.key_index.remove(key);
        self.key_records[idx as usize] = KeyRecord::default();
        self.free_records.push(idx);
    }

    /// Creates a store preloaded with initial data. The initial versions are
    /// committed at [`Timestamp::ZERO`] by a synthetic "genesis" transaction.
    pub fn with_initial_data(data: impl IntoIterator<Item = (Key, Value)>) -> Self {
        let mut store = Self::new();
        for (key, value) in data {
            store.load_initial(key, value);
        }
        store
    }

    /// Loads one more initial key (same semantics as
    /// [`MvtsoStore::with_initial_data`]).
    pub fn load_initial(&mut self, key: Key, value: Value) {
        let idx = self.intern_key(&key);
        let rec = &mut self.key_records[idx as usize];
        rec.committed
            .insert(Timestamp::ZERO, (TxId::default(), value));
        rec.note_write(Timestamp::ZERO);
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Serves a versioned read at timestamp `ts` and records `ts` in the
    /// key's RTS set (Section 4.1, replica read logic step 2).
    pub fn read(&mut self, key: &Key, ts: Timestamp) -> ReadResult {
        let idx = self.intern_key(key);
        let rec = &mut self.key_records[idx as usize];
        rec.rts.insert(ts, ());
        rec.note_read(ts);
        self.read_at_slot(idx, key, ts)
    }

    /// Serves a versioned read without registering an RTS (used when
    /// re-serving a retried read that already registered one).
    pub fn read_without_rts(&self, key: &Key, ts: Timestamp) -> ReadResult {
        match self.key_index.get(key) {
            Some(idx) => self.read_at_slot(*idx, key, ts),
            None => ReadResult::default(),
        }
    }

    /// The versioned-read logic against an already-resolved arena slot (so
    /// `read` pays one key lookup, not two).
    fn read_at_slot(&self, idx: u32, key: &Key, ts: Timestamp) -> ReadResult {
        let rec = &self.key_records[idx as usize];
        let committed = rec
            .committed
            .latest_before(ts)
            .map(|(version, (txid, value))| CommittedVersion {
                version: *version,
                value: value.clone(),
                txid: *txid,
            });
        let prepared = rec.prepared.latest_before(ts).and_then(|(version, txid)| {
            self.prepared_txs.get(txid).map(|tx| PreparedVersion {
                version: *version,
                value: tx.written_value(key).cloned().unwrap_or_else(Value::empty),
                txid: *txid,
                deps: tx.deps().to_vec(),
            })
        });
        ReadResult {
            committed,
            prepared,
        }
    }

    /// Removes a read timestamp previously registered by [`MvtsoStore::read`]
    /// (client-initiated `Abort()` during the execution phase).
    pub fn remove_rts(&mut self, key: &Key, ts: Timestamp) {
        let mut unused = None;
        if let Some((idx, rec)) = self.key_rec_mut(key) {
            if rec.rts.remove(ts).is_some() {
                rec.generation += 1;
                if ts == rec.max_read {
                    rec.refresh_read_watermark();
                }
                if rec.is_unused() {
                    unused = Some(idx);
                }
            }
        }
        // Reads of never-written keys create a record only to hold the RTS;
        // releasing the last piece of state releases the record too.
        if let Some(idx) = unused {
            self.release_key(key, idx);
        }
    }

    /// The newest committed value of a key (used by examples and tests to
    /// inspect final state).
    pub fn latest_committed(&self, key: &Key) -> Option<(Timestamp, Value)> {
        self.key_rec(key)
            .and_then(|rec| rec.committed.last())
            .map(|(ts, (_, value))| (*ts, value.clone()))
    }

    // ------------------------------------------------------------------
    // Algorithm 1: the concurrency-control check
    // ------------------------------------------------------------------

    /// Runs the MVTSO concurrency-control check (Algorithm 1) for `tx`.
    ///
    /// `local_clock` and `delta` implement the timestamp acceptance window of
    /// lines 1-2. On success the transaction is added to the prepared set and
    /// becomes visible to subsequent reads. The transaction arrives as the
    /// `Arc` the `ST1` message carries, so indexing it shares the allocation
    /// instead of deep-copying the read/write sets per prepare.
    ///
    /// The per-key conflict checks first consult the record watermarks (see
    /// module docs): a read that observed the key's newest write and a write
    /// above the key's newest read pass with two integer comparisons. Only
    /// keys whose conflict window is non-trivially populated fall through to
    /// the ordered binary-search scans, whose verdicts are bit-identical to
    /// the original nested-`BTreeMap` implementation (property-tested in
    /// `reference.rs`).
    pub fn prepare(
        &mut self,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> CheckOutcome {
        let txid = tx.id();

        // A transaction we already know the fate of keeps that fate.
        if let Some(decision) = self.decisions.get(&txid) {
            return CheckOutcome::Decided(match decision {
                Decision::Commit => Vote::Commit,
                Decision::Abort => Vote::Abort(AbortReason::Conflict),
            });
        }
        // Re-delivery of a prepare we are still waiting on.
        if let Some(missing) = self.pending.get(&txid) {
            return CheckOutcome::Pending {
                waiting_on: missing.iter().copied().collect(),
            };
        }
        // Re-delivery of a prepare we already voted to commit.
        if self.prepared_txs.contains_key(&txid) {
            return CheckOutcome::Decided(Vote::Commit);
        }

        self.stats.prepares += 1;

        // (1) Timestamp bound: ts_T <= localClock + delta.
        if tx.timestamp().exceeds_bound(local_clock, delta) {
            return CheckOutcome::Decided(Vote::Abort(AbortReason::TimestampOutOfBounds));
        }

        // (1b) GC floor: read records and superseded versions at or below the
        // GC watermark have been discarded, so the checks below could no
        // longer see a conflict there. A transaction backdated into that
        // region must abort — otherwise a Byzantine (or badly skewed) client
        // could commit a write under a collected reader, a serializability
        // violation rather than the liveness trade GC is allowed to make.
        if self.gc_watermark > Timestamp::ZERO && tx.timestamp() <= self.gc_watermark {
            return CheckOutcome::Decided(Vote::Abort(AbortReason::TimestampOutOfBounds));
        }

        // (2) Dependency validity: every dependency this replica knows about
        // must actually have produced the claimed version.
        for dep in tx.deps() {
            let known = self
                .prepared_txs
                .get(&dep.txid)
                .or_else(|| self.committed_txs.get(&dep.txid));
            if let Some(dep_tx) = known {
                let produced = dep_tx.writes(&dep.key) && dep_tx.timestamp() == dep.version;
                if !produced {
                    return CheckOutcome::Decided(Vote::Abort(AbortReason::InvalidDependency));
                }
            } else if self.aborted.contains(&dep.txid) {
                // The dependency already aborted here; the dependent cannot
                // commit (Algorithm 1, lines 16-18).
                return CheckOutcome::Decided(Vote::Abort(AbortReason::DependencyAborted));
            }
            // Unknown dependency: treated as pending (see module docs).
        }

        let ts = tx.timestamp();

        // (3) Reads must not claim versions from the future; that would prove
        // client misbehaviour. The builder froze the maximum claimed version,
        // so this is one comparison instead of a read-set walk.
        if tx.max_read_version() > ts {
            return CheckOutcome::Decided(Vote::Abort(AbortReason::Misbehavior));
        }

        // (4) Reads in T did not miss any committed or prepared write:
        // no write W to `key` with version_read < ts_W < ts_T may exist.
        // Fast path: the version read is the key's newest write overall.
        // Each key's arena slot is resolved once here and reused by the
        // prepared-index inserts below (one map lookup per key per prepare).
        self.scratch_reads.clear();
        for read in tx.read_set() {
            let slot = self.key_index.get(&read.key).copied();
            self.scratch_reads.push(slot.unwrap_or(NO_SLOT));
            match slot.map(|i| &self.key_records[i as usize]) {
                Some(rec) if rec.max_write > read.version => {
                    self.stats.slow_path_checks += 1;
                    if rec.committed.any_in_open_range(read.version, ts)
                        || rec.prepared.any_in_open_range(read.version, ts)
                    {
                        return CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict));
                    }
                }
                _ => self.stats.fast_path_checks += 1,
            }
        }

        // (5) Writes in T must not invalidate reads of prepared or committed
        // transactions: no reader T' with ts_T' > ts_T may have read a
        // version older than ts_T for a key T writes.
        // (6) Writes must not invalidate ongoing reads (RTS check).
        // Fast path for both: the write lands above the key's newest read.
        self.scratch_writes.clear();
        for write in tx.write_set() {
            let slot = self.key_index.get(&write.key).copied();
            self.scratch_writes.push(slot.unwrap_or(NO_SLOT));
            match slot.map(|i| &self.key_records[i as usize]) {
                Some(rec) if rec.max_read > ts => {
                    self.stats.slow_path_checks += 1;
                    // The reader summary proves most stale writes invalidate
                    // nobody without walking the reader arrays; a set bucket
                    // demands the exact ordered scan.
                    if rec.reader_summary.may_invalidate(ts) {
                        let invalidates = |reads: &VersionArray<Timestamp>| {
                            reads
                                .iter_above(ts)
                                .any(|(_, version_read)| *version_read < ts)
                        };
                        if invalidates(&rec.committed_reads) || invalidates(&rec.prepared_reads) {
                            return CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict));
                        }
                    } else {
                        self.stats.reader_scan_skips += 1;
                    }
                    if rec.rts.max_ts().map(|m| m > ts).unwrap_or(false) {
                        return CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict));
                    }
                }
                _ => self.stats.fast_path_checks += 1,
            }
        }

        // (7) Prepared.add(T): make the transaction visible to future reads,
        // reusing the slots resolved by the checks (keys unseen there are
        // interned now).
        let mut write_slots = std::mem::take(&mut self.scratch_writes);
        for (write, slot) in tx.write_set().iter().zip(write_slots.iter_mut()) {
            if *slot == NO_SLOT {
                *slot = self.intern_key(&write.key);
            }
            let rec = &mut self.key_records[*slot as usize];
            rec.prepared.insert(ts, txid);
            rec.note_write(ts);
        }
        self.scratch_writes = write_slots;
        let mut read_slots = std::mem::take(&mut self.scratch_reads);
        for (read, slot) in tx.read_set().iter().zip(read_slots.iter_mut()) {
            if *slot == NO_SLOT {
                *slot = self.intern_key(&read.key);
            }
            let rec = &mut self.key_records[*slot as usize];
            rec.prepared_reads.insert(ts, read.version);
            rec.cover_read(read.version, ts);
            rec.note_read(ts);
        }
        self.scratch_reads = read_slots;
        self.prepared_txs.insert(txid, Arc::clone(tx));

        // (8) Wait for all pending dependencies.
        let mut missing: FastHashSet<TxId> = FastHashSet::default();
        for dep in tx.deps() {
            match self.decisions.get(&dep.txid) {
                Some(Decision::Commit) => {}
                Some(Decision::Abort) => {
                    // A dependency already aborted: withdraw the prepare.
                    self.unindex_prepared(&txid);
                    return CheckOutcome::Decided(Vote::Abort(AbortReason::DependencyAborted));
                }
                None => {
                    missing.insert(dep.txid);
                }
            }
        }
        if missing.is_empty() {
            return CheckOutcome::Decided(Vote::Commit);
        }
        for dep in &missing {
            self.waiters.entry(*dep).or_default().push(txid);
        }
        let waiting_on: Vec<TxId> = missing.iter().copied().collect();
        self.pending.insert(txid, missing);
        CheckOutcome::Pending { waiting_on }
    }

    /// Removes a prepared transaction from the visibility indexes,
    /// returning its shared metadata so a commit can promote it without
    /// copying. Watermarks are recomputed (`O(1)` from the array tails)
    /// whenever the removed entry was the watermark, so the fast path stays
    /// exact rather than decaying conservatively.
    fn unindex_prepared(&mut self, txid: &TxId) -> Option<Arc<Transaction>> {
        let tx = self.prepared_txs.remove(txid)?;
        let ts = tx.timestamp();
        for write in tx.write_set() {
            if let Some((_, rec)) = self.key_rec_mut(&write.key) {
                if rec.prepared.remove(ts).is_some() {
                    rec.generation += 1;
                    if ts == rec.max_write {
                        rec.refresh_write_watermark();
                    }
                }
            }
        }
        for read in tx.read_set() {
            if let Some((_, rec)) = self.key_rec_mut(&read.key) {
                if rec.prepared_reads.remove(ts).is_some() {
                    rec.generation += 1;
                    if ts == rec.max_read {
                        rec.refresh_read_watermark();
                    }
                }
            }
        }
        Some(tx)
    }

    // ------------------------------------------------------------------
    // Decisions
    // ------------------------------------------------------------------

    /// Applies a commit decision for `tx`: its writes become committed
    /// versions and its reads are recorded for future checks. Returns the
    /// votes of transactions whose deferred check was waiting on this
    /// decision.
    pub fn commit(&mut self, tx: &Arc<Transaction>) -> Vec<(TxId, Vote)> {
        let txid = tx.id();
        if matches!(self.decisions.get(&txid), Some(Decision::Commit)) {
            return Vec::new();
        }
        // Promote the prepared entry when there is one: the transaction id
        // is a content hash, so the prepared metadata under this id is the
        // same transaction and no copy is needed. A commit that skipped the
        // prepare (writeback to a replica that missed ST1) shares the Arc
        // the writeback carries. The prepared-entry removal and the
        // committed-version insert are fused into one key-record pass —
        // the per-key end state is identical to removing first and
        // inserting second, at half the map lookups.
        let shared = self
            .prepared_txs
            .remove(&txid)
            .unwrap_or_else(|| Arc::clone(tx));
        self.pending.remove(&txid);
        self.decisions.insert(txid, Decision::Commit);

        let ts = tx.timestamp();
        for write in tx.write_set() {
            let idx = self.intern_key(&write.key);
            let rec = &mut self.key_records[idx as usize];
            if rec.prepared.remove(ts).is_some() {
                rec.generation += 1;
                if ts == rec.max_write {
                    rec.refresh_write_watermark();
                }
            }
            rec.committed.insert(ts, (txid, write.value.clone()));
            rec.note_write(ts);
        }
        for read in tx.read_set() {
            let idx = self.intern_key(&read.key);
            let rec = &mut self.key_records[idx as usize];
            if rec.prepared_reads.remove(ts).is_some() {
                rec.generation += 1;
                if ts == rec.max_read {
                    rec.refresh_read_watermark();
                }
            }
            rec.committed_reads.insert(ts, read.version);
            rec.cover_read(read.version, ts);
            rec.note_read(ts);
        }
        self.committed_txs.insert(txid, shared);

        self.wake_waiters(txid, Decision::Commit)
    }

    /// Applies an abort decision for `txid`. Returns the votes of
    /// transactions whose deferred check was waiting on this decision (each
    /// of them votes abort, per Algorithm 1 lines 16-18).
    pub fn abort(&mut self, txid: TxId) -> Vec<(TxId, Vote)> {
        if matches!(self.decisions.get(&txid), Some(Decision::Abort)) {
            return Vec::new();
        }
        self.unindex_prepared(&txid);
        self.pending.remove(&txid);
        self.decisions.insert(txid, Decision::Abort);
        self.aborted.insert(txid);
        self.wake_waiters(txid, Decision::Abort)
    }

    fn wake_waiters(&mut self, resolved: TxId, decision: Decision) -> Vec<(TxId, Vote)> {
        let mut released = Vec::new();
        let Some(waiters) = self.waiters.remove(&resolved) else {
            return released;
        };
        for waiter in waiters {
            let Some(missing) = self.pending.get_mut(&waiter) else {
                continue; // already resolved some other way
            };
            match decision {
                Decision::Abort => {
                    // The dependency aborted: the waiter votes abort and is
                    // withdrawn from the prepared set.
                    self.pending.remove(&waiter);
                    self.unindex_prepared(&waiter);
                    released.push((waiter, Vote::Abort(AbortReason::DependencyAborted)));
                }
                Decision::Commit => {
                    missing.remove(&resolved);
                    if missing.is_empty() {
                        self.pending.remove(&waiter);
                        released.push((waiter, Vote::Commit));
                    }
                }
            }
        }
        released
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The decision this replica knows for `txid`, if any.
    pub fn decision(&self, txid: &TxId) -> Option<Decision> {
        self.decisions.get(txid).copied()
    }

    /// Whether the transaction is currently prepared (visible, uncommitted).
    pub fn is_prepared(&self, txid: &TxId) -> bool {
        self.prepared_txs.contains_key(txid)
    }

    /// The prepared transaction's metadata, if present.
    pub fn prepared_tx(&self, txid: &TxId) -> Option<&Transaction> {
        self.prepared_txs.get(txid).map(|tx| tx.as_ref())
    }

    /// The prepared transaction's shared metadata, if present (a reference
    /// count bump, not a copy — used to embed the transaction in read
    /// replies).
    pub fn prepared_tx_shared(&self, txid: &TxId) -> Option<Arc<Transaction>> {
        self.prepared_txs.get(txid).cloned()
    }

    /// The committed transaction's metadata, if present.
    pub fn committed_tx(&self, txid: &TxId) -> Option<&Transaction> {
        self.committed_txs.get(txid).map(|tx| tx.as_ref())
    }

    /// Whether the transaction's vote is currently withheld waiting on
    /// dependencies.
    pub fn is_pending(&self, txid: &TxId) -> bool {
        self.pending.contains_key(txid)
    }

    /// Iterates over all committed transactions without cloning them (the
    /// serializability audit used to clone the entire history per replica
    /// per audit; it now borrows).
    pub fn committed_iter(&self) -> impl Iterator<Item = &Transaction> {
        self.committed_txs.values().map(|tx| tx.as_ref())
    }

    /// Iterates over every final decision this replica knows, in arbitrary
    /// order. The real-IO runtime dumps these into per-process result files
    /// so the supervisor can run the cross-replica decision-agreement audit
    /// without reaching into live actors.
    pub fn decisions_iter(&self) -> impl Iterator<Item = (&TxId, &Decision)> {
        self.decisions.iter()
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> usize {
        self.committed_txs.len()
    }

    /// Number of currently prepared transactions.
    pub fn prepared_count(&self) -> usize {
        self.prepared_txs.len()
    }

    /// The scan-free fast-path counters (see [`StoreStats`]).
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The GC abort floor (highest watermark any sweep has used). Prepares
    /// timestamped at or below it are refused; the concurrent-store
    /// equivalence harness compares floors after replay.
    pub fn gc_floor(&self) -> Timestamp {
        self.gc_watermark
    }

    /// The generation stamp of a key's record: how many times its
    /// concurrency-control state has mutated (tests and diagnostics).
    pub fn key_generation(&self, key: &Key) -> Option<u64> {
        self.key_rec(key).map(|rec| rec.generation)
    }

    /// The `(max_write, max_read)` watermarks of a key's record (tests and
    /// diagnostics).
    pub fn key_watermarks(&self, key: &Key) -> Option<(Timestamp, Timestamp)> {
        self.key_rec(key).map(|rec| (rec.max_write, rec.max_read))
    }

    /// Garbage-collects bookkeeping that can no longer affect any future
    /// check: committed versions strictly older than the newest one at or
    /// below `watermark` (the newest such version must be retained because
    /// future readers may still need it), committed read records below the
    /// watermark, and RTS entries below the watermark.
    ///
    /// In the flattened layout each trim is an in-place prefix drain of a
    /// sorted `Vec` — no allocation, unlike the `BTreeMap::split_off` tail
    /// copies this replaces.
    pub fn gc_before(&mut self, watermark: Timestamp) {
        self.gc_watermark = self.gc_watermark.max(watermark);
        for idx in self.key_index.values() {
            let rec = &mut self.key_records[*idx as usize];
            let mut dropped = 0;
            if let Some(keep_from) = rec.committed.latest_at_or_below(watermark).map(|(t, _)| *t) {
                dropped += rec.committed.drop_below(keep_from);
            }
            dropped += rec.committed_reads.drop_below(watermark);
            dropped += rec.rts.drop_below(watermark);
            if dropped > 0 {
                rec.generation += 1;
                // Prefix drains cannot raise the tails, but they can empty
                // an array entirely; recompute both watermarks exactly, and
                // re-derive the reader summary from the surviving entries
                // (its Bloom bits are never cleared incrementally).
                rec.refresh_read_watermark();
                rec.refresh_write_watermark();
                rec.rebuild_reader_summary();
            }
        }
        // A fully drained record is semantically identical to an absent one;
        // dropping it (and recycling its arena slot) keeps the store bounded
        // by the keys that still carry state (reads of never-written keys
        // would otherwise pin a record forever).
        let drained: Vec<(Key, u32)> = self
            .key_index
            .iter()
            .filter(|(_, idx)| self.key_records[**idx as usize].is_unused())
            .map(|(key, idx)| (key.clone(), *idx))
            .collect();
        for (key, idx) in drained {
            self.release_key(&key, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TransactionBuilder;
    use basil_common::ClientId;

    const DELTA: Duration = Duration::from_millis(100);
    // A clock far enough in the future that timestamp-bound checks pass by
    // default in these unit tests.
    const CLOCK: SimTime = SimTime::from_secs(1);

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(c))
    }

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    fn store_with_xy() -> MvtsoStore {
        MvtsoStore::with_initial_data([(k("x"), v(0)), (k("y"), v(0))])
    }

    /// A transaction reading nothing and writing `key := val` at `t`.
    fn blind_write(t: u64, c: u64, key: &str, val: u64) -> Arc<Transaction> {
        let mut b = TransactionBuilder::new(ts(t, c));
        b.record_write(k(key), v(val));
        b.build_shared()
    }

    /// A read-modify-write transaction on one key.
    fn rmw(t: u64, c: u64, key: &str, read_version: Timestamp, val: u64) -> Arc<Transaction> {
        let mut b = TransactionBuilder::new(ts(t, c));
        b.record_read(k(key), read_version);
        b.record_write(k(key), v(val));
        b.build_shared()
    }

    fn expect_commit(out: CheckOutcome) {
        assert_eq!(out, CheckOutcome::Decided(Vote::Commit));
    }

    fn expect_abort(out: CheckOutcome, reason: AbortReason) {
        assert_eq!(out, CheckOutcome::Decided(Vote::Abort(reason)));
    }

    #[test]
    fn read_returns_initial_version() {
        let mut store = store_with_xy();
        let r = store.read(&k("x"), ts(10, 1));
        let committed = r.committed.expect("initial version exists");
        assert_eq!(committed.version, Timestamp::ZERO);
        assert_eq!(committed.value, v(0));
        assert!(r.prepared.is_none());
        assert!(store.read(&k("unknown"), ts(10, 1)).committed.is_none());
    }

    #[test]
    fn prepare_and_commit_installs_version() {
        let mut store = store_with_xy();
        let t = blind_write(100, 1, "x", 42);
        expect_commit(store.prepare(&t, CLOCK, DELTA));
        assert!(store.is_prepared(&t.id()));

        // Visible as prepared to later readers, not as committed.
        let r = store.read(&k("x"), ts(200, 2));
        assert_eq!(r.prepared.as_ref().expect("prepared visible").value, v(42));
        assert_eq!(r.committed.expect("initial").version, Timestamp::ZERO);

        let woken = store.commit(&t);
        assert!(woken.is_empty());
        assert!(!store.is_prepared(&t.id()));
        let r = store.read(&k("x"), ts(200, 2));
        assert_eq!(r.committed.expect("committed").value, v(42));
        assert!(r.prepared.is_none());
        assert_eq!(store.decision(&t.id()), Some(Decision::Commit));
    }

    #[test]
    fn read_ignores_versions_at_or_above_reader_timestamp() {
        let mut store = store_with_xy();
        let t = blind_write(100, 1, "x", 42);
        expect_commit(store.prepare(&t, CLOCK, DELTA));
        store.commit(&t);
        // A reader at exactly ts 100 must not see the version written at 100
        // (reads return versions strictly smaller than the reader timestamp).
        let r = store.read(&k("x"), ts(100, 0));
        assert_eq!(r.committed.expect("initial").version, Timestamp::ZERO);
        // A reader below 100 sees only the initial version.
        let r = store.read(&k("x"), ts(50, 2));
        assert_eq!(r.committed.expect("initial").version, Timestamp::ZERO);
    }

    #[test]
    fn timestamp_bound_rejected() {
        let mut store = store_with_xy();
        let t = blind_write(u64::MAX / 2, 1, "x", 1);
        expect_abort(
            store.prepare(&t, SimTime::from_millis(1), Duration::from_millis(1)),
            AbortReason::TimestampOutOfBounds,
        );
        assert!(!store.is_prepared(&t.id()));
    }

    #[test]
    fn read_from_future_is_misbehaviour() {
        let mut store = store_with_xy();
        let mut b = TransactionBuilder::new(ts(100, 1));
        b.record_read(k("x"), ts(500, 2)); // claims to have read the future
        let t = b.build_shared();
        expect_abort(store.prepare(&t, CLOCK, DELTA), AbortReason::Misbehavior);
    }

    #[test]
    fn stale_read_misses_committed_write_aborts() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
        store.commit(&w);

        // T reads version 0 of x but has timestamp 200 > 100: it missed the
        // write at 100 and must abort (Algorithm 1 lines 7-8).
        let t = rmw(200, 2, "x", Timestamp::ZERO, 7);
        expect_abort(store.prepare(&t, CLOCK, DELTA), AbortReason::Conflict);
    }

    #[test]
    fn stale_read_misses_prepared_write_aborts() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA)); // prepared only

        let t = rmw(200, 2, "x", Timestamp::ZERO, 7);
        expect_abort(store.prepare(&t, CLOCK, DELTA), AbortReason::Conflict);
    }

    #[test]
    fn read_of_latest_version_commits() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
        store.commit(&w);

        // Reader at 200 read the version written at 100: no missed write.
        let t = rmw(200, 2, "x", ts(100, 1), 7);
        expect_commit(store.prepare(&t, CLOCK, DELTA));
    }

    #[test]
    fn late_write_under_committed_reader_aborts() {
        let mut store = store_with_xy();
        // Reader at ts 300 read version 0 of x, committed.
        let mut b = TransactionBuilder::new(ts(300, 1));
        b.record_read(k("x"), Timestamp::ZERO);
        b.record_write(k("dummy"), v(1));
        let reader = b.build_shared();
        expect_commit(store.prepare(&reader, CLOCK, DELTA));
        store.commit(&reader);

        // A writer at ts 200 < 300 writing x would invalidate that read
        // (the reader should have seen it): abort (lines 9-11).
        let w = blind_write(200, 2, "x", 9);
        expect_abort(store.prepare(&w, CLOCK, DELTA), AbortReason::Conflict);

        // A writer above the reader's timestamp is fine.
        let w2 = blind_write(400, 3, "x", 9);
        expect_commit(store.prepare(&w2, CLOCK, DELTA));
    }

    #[test]
    fn late_write_under_prepared_reader_aborts() {
        let mut store = store_with_xy();
        let mut b = TransactionBuilder::new(ts(300, 1));
        b.record_read(k("x"), Timestamp::ZERO);
        let reader = b.build_shared();
        expect_commit(store.prepare(&reader, CLOCK, DELTA)); // prepared only

        let w = blind_write(200, 2, "x", 9);
        expect_abort(store.prepare(&w, CLOCK, DELTA), AbortReason::Conflict);
    }

    #[test]
    fn rts_blocks_late_writer_and_clears_on_removal() {
        let mut store = store_with_xy();
        // An execution-phase read at ts 500 leaves an RTS on x.
        store.read(&k("x"), ts(500, 1));

        let w = blind_write(200, 2, "x", 9);
        expect_abort(store.prepare(&w, CLOCK, DELTA), AbortReason::Conflict);

        // After the reader abandons its transaction the RTS is removed and
        // the same write succeeds.
        store.remove_rts(&k("x"), ts(500, 1));
        let w2 = blind_write(201, 2, "x", 9);
        expect_commit(store.prepare(&w2, CLOCK, DELTA));
    }

    #[test]
    fn rts_below_writer_timestamp_is_harmless() {
        let mut store = store_with_xy();
        store.read(&k("x"), ts(100, 1));
        let w = blind_write(200, 2, "x", 9);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
    }

    #[test]
    fn write_write_is_not_a_conflict_by_itself() {
        // MVTSO orders blind writes by timestamp; two writers of the same key
        // can both commit.
        let mut store = store_with_xy();
        let w1 = blind_write(100, 1, "x", 1);
        let w2 = blind_write(200, 2, "x", 2);
        expect_commit(store.prepare(&w1, CLOCK, DELTA));
        expect_commit(store.prepare(&w2, CLOCK, DELTA));
        store.commit(&w1);
        store.commit(&w2);
        assert_eq!(store.latest_committed(&k("x")).expect("x").1, v(2));
    }

    #[test]
    fn dependent_read_waits_for_dependency_commit() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA)); // prepared, not committed

        // T2 reads the prepared version and declares the dependency.
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("x"), ts(100, 1), w.id());
        b.record_write(k("y"), v(6));
        let t2 = b.build_shared();

        match store.prepare(&t2, CLOCK, DELTA) {
            CheckOutcome::Pending { waiting_on } => assert_eq!(waiting_on, vec![w.id()]),
            other => panic!("expected pending, got {other:?}"),
        }
        assert!(store.is_pending(&t2.id()));
        assert!(
            store.is_prepared(&t2.id()),
            "pending transactions are visible"
        );

        // Committing the dependency releases T2 with a commit vote.
        let woken = store.commit(&w);
        assert_eq!(woken, vec![(t2.id(), Vote::Commit)]);
        assert!(!store.is_pending(&t2.id()));
    }

    #[test]
    fn dependent_read_aborts_when_dependency_aborts() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));

        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("x"), ts(100, 1), w.id());
        let t2 = b.build_shared();
        assert!(matches!(
            store.prepare(&t2, CLOCK, DELTA),
            CheckOutcome::Pending { .. }
        ));

        let woken = store.abort(w.id());
        assert_eq!(
            woken,
            vec![(t2.id(), Vote::Abort(AbortReason::DependencyAborted))]
        );
        assert!(
            !store.is_prepared(&t2.id()),
            "aborted-by-dependency transactions leave the prepared set"
        );
    }

    #[test]
    fn dependency_already_committed_votes_immediately() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
        store.commit(&w);

        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("x"), ts(100, 1), w.id());
        let t2 = b.build_shared();
        expect_commit(store.prepare(&t2, CLOCK, DELTA));
    }

    #[test]
    fn dependency_already_aborted_votes_abort() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
        store.abort(w.id());

        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("x"), ts(100, 1), w.id());
        let t2 = b.build_shared();
        expect_abort(
            store.prepare(&t2, CLOCK, DELTA),
            AbortReason::DependencyAborted,
        );
    }

    #[test]
    fn invalid_dependency_claim_is_rejected() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));

        // Claim a dependency on w for key "y", which w never wrote.
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("y"), ts(100, 1), w.id());
        let t2 = b.build_shared();
        expect_abort(
            store.prepare(&t2, CLOCK, DELTA),
            AbortReason::InvalidDependency,
        );

        // Claim a dependency with the wrong version timestamp.
        let mut b = TransactionBuilder::new(ts(200, 3));
        b.record_dependent_read(k("x"), ts(101, 1), w.id());
        let t3 = b.build_shared();
        expect_abort(
            store.prepare(&t3, CLOCK, DELTA),
            AbortReason::InvalidDependency,
        );
    }

    #[test]
    fn unknown_dependency_is_pending_not_invalid() {
        let mut store = store_with_xy();
        let unseen = blind_write(100, 1, "x", 5); // never sent to this store
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("x"), ts(100, 1), unseen.id());
        let t2 = b.build_shared();
        match store.prepare(&t2, CLOCK, DELTA) {
            CheckOutcome::Pending { waiting_on } => assert_eq!(waiting_on, vec![unseen.id()]),
            other => panic!("expected pending, got {other:?}"),
        }
        // When the missing dependency's decision finally arrives, the waiter
        // is released.
        let woken = store.commit(&unseen);
        assert_eq!(woken, vec![(t2.id(), Vote::Commit)]);
    }

    #[test]
    fn multiple_dependencies_release_only_when_all_commit() {
        let mut store = store_with_xy();
        let w1 = blind_write(100, 1, "x", 1);
        let w2 = blind_write(110, 2, "y", 2);
        expect_commit(store.prepare(&w1, CLOCK, DELTA));
        expect_commit(store.prepare(&w2, CLOCK, DELTA));

        let mut b = TransactionBuilder::new(ts(200, 3));
        b.record_dependent_read(k("x"), ts(100, 1), w1.id());
        b.record_dependent_read(k("y"), ts(110, 2), w2.id());
        let t = b.build_shared();
        assert!(matches!(
            store.prepare(&t, CLOCK, DELTA),
            CheckOutcome::Pending { .. }
        ));

        assert!(store.commit(&w1).is_empty(), "still waiting on w2");
        let woken = store.commit(&w2);
        assert_eq!(woken, vec![(t.id(), Vote::Commit)]);
    }

    #[test]
    fn duplicate_prepare_is_idempotent() {
        let mut store = store_with_xy();
        let t = blind_write(100, 1, "x", 1);
        expect_commit(store.prepare(&t, CLOCK, DELTA));
        expect_commit(store.prepare(&t, CLOCK, DELTA));
        assert_eq!(store.prepared_count(), 1);
        assert_eq!(
            store.stats().prepares,
            1,
            "duplicate deliveries answer from the memo without a check"
        );

        store.commit(&t);
        // After commit, a re-delivered prepare reports commit.
        expect_commit(store.prepare(&t, CLOCK, DELTA));

        let t2 = blind_write(200, 2, "x", 2);
        expect_commit(store.prepare(&t2, CLOCK, DELTA));
        store.abort(t2.id());
        // After abort, a re-delivered prepare reports abort.
        expect_abort(store.prepare(&t2, CLOCK, DELTA), AbortReason::Conflict);
    }

    #[test]
    fn commit_and_abort_are_idempotent() {
        let mut store = store_with_xy();
        let t = blind_write(100, 1, "x", 1);
        store.prepare(&t, CLOCK, DELTA);
        assert!(store.commit(&t).is_empty());
        assert!(store.commit(&t).is_empty());
        assert_eq!(store.committed_count(), 1);

        let t2 = blind_write(200, 2, "y", 1);
        store.prepare(&t2, CLOCK, DELTA);
        assert!(store.abort(t2.id()).is_empty());
        assert!(store.abort(t2.id()).is_empty());
        assert_eq!(store.decision(&t2.id()), Some(Decision::Abort));
    }

    #[test]
    fn commit_without_prior_prepare_applies_writes() {
        // A replica that voted abort (or missed ST1 entirely) still applies a
        // transaction once it receives a valid commit certificate.
        let mut store = store_with_xy();
        let t = blind_write(100, 1, "x", 77);
        store.commit(&t);
        assert_eq!(store.latest_committed(&k("x")).expect("x").1, v(77));
        assert_eq!(store.committed_count(), 1);
    }

    #[test]
    fn gc_retains_visibility_for_future_readers() {
        let mut store = store_with_xy();
        for i in 1..=10u64 {
            let t = blind_write(i * 100, 1, "x", i);
            store.prepare(&t, CLOCK, DELTA);
            store.commit(&t);
        }
        store.gc_before(ts(550, 0));
        // Future readers still see the newest version at or below the
        // watermark (ts 500) and everything above it.
        let r = store.read(&k("x"), ts(551, 9));
        assert_eq!(r.committed.expect("visible").value, v(5));
        let r = store.read(&k("x"), ts(2_000, 9));
        assert_eq!(r.committed.expect("latest").value, v(10));
    }

    #[test]
    fn prepared_version_carries_dependency_chain_info() {
        let mut store = store_with_xy();
        let w1 = blind_write(100, 1, "x", 1);
        expect_commit(store.prepare(&w1, CLOCK, DELTA));

        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_dependent_read(k("x"), ts(100, 1), w1.id());
        b.record_write(k("y"), v(2));
        let t2 = b.build_shared();
        assert!(matches!(
            store.prepare(&t2, CLOCK, DELTA),
            CheckOutcome::Pending { .. }
        ));

        // A reader of y at ts 300 sees t2's prepared write, including t2's
        // dependency on w1, so it can later help finish the whole chain.
        let r = store.read(&k("y"), ts(300, 3));
        let prepared = r.prepared.expect("prepared y visible");
        assert_eq!(prepared.txid, t2.id());
        assert_eq!(prepared.deps.len(), 1);
        assert_eq!(prepared.deps[0].txid, w1.id());
    }

    // ------------------------------------------------------------------
    // Flattened-layout specifics: watermarks, generations, fast path
    // ------------------------------------------------------------------

    #[test]
    fn timestamp_ordered_appends_stay_on_the_fast_path() {
        let mut store = store_with_xy();
        // Monotone blind writes to one key: every check is answered by the
        // watermark comparison (no reader above, version read is newest).
        for i in 1..=50u64 {
            let t = rmw(
                i * 10,
                1,
                "x",
                if i == 1 {
                    Timestamp::ZERO
                } else {
                    ts((i - 1) * 10, 1)
                },
                i,
            );
            expect_commit(store.prepare(&t, CLOCK, DELTA));
            store.commit(&t);
        }
        let stats = store.stats();
        assert_eq!(stats.prepares, 50);
        assert_eq!(stats.slow_path_checks, 0, "no conflict window ever opened");
        assert_eq!(
            stats.fast_path_checks, 100,
            "one read + one write check per tx"
        );
        assert_eq!(stats.fast_path_hit_rate(), 1.0);
    }

    #[test]
    fn stale_reads_and_late_writes_take_the_slow_path() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
        store.commit(&w);

        // Stale read: max_write (100) > version read (0) forces the scan.
        let stale = rmw(200, 2, "x", Timestamp::ZERO, 7);
        expect_abort(store.prepare(&stale, CLOCK, DELTA), AbortReason::Conflict);
        assert!(store.stats().slow_path_checks >= 1);

        // Late write under an RTS: max_read (500) > write ts (300).
        store.read(&k("y"), ts(500, 3));
        let before = store.stats().slow_path_checks;
        let late = blind_write(300, 4, "y", 1);
        expect_abort(store.prepare(&late, CLOCK, DELTA), AbortReason::Conflict);
        assert_eq!(store.stats().slow_path_checks, before + 1);
    }

    #[test]
    fn generation_stamp_counts_record_mutations() {
        let mut store = store_with_xy();
        let g0 = store.key_generation(&k("x")).expect("genesis record");
        store.read(&k("x"), ts(10, 1));
        let g1 = store.key_generation(&k("x")).unwrap();
        assert!(g1 > g0, "RTS registration bumps the generation");
        store.remove_rts(&k("x"), ts(10, 1));
        let g2 = store.key_generation(&k("x")).unwrap();
        assert!(g2 > g1, "RTS removal bumps the generation");
        assert_eq!(store.key_generation(&k("never-touched")), None);
    }

    #[test]
    fn watermarks_track_inserts_and_removals_exactly() {
        let mut store = store_with_xy();
        let w = blind_write(100, 1, "x", 5);
        expect_commit(store.prepare(&w, CLOCK, DELTA));
        assert_eq!(store.key_watermarks(&k("x")).unwrap().0, ts(100, 1));

        // Aborting the newest prepared write lowers max_write back to the
        // genesis version, restoring the fast path for future readers of
        // version ZERO.
        store.abort(w.id());
        assert_eq!(store.key_watermarks(&k("x")).unwrap().0, Timestamp::ZERO);
        let before = store.stats().fast_path_checks;
        let t = rmw(200, 2, "x", Timestamp::ZERO, 7);
        expect_commit(store.prepare(&t, CLOCK, DELTA));
        assert!(
            store.stats().fast_path_checks > before,
            "read check answered by the refreshed watermark"
        );

        // Read watermarks follow RTS removal the same way.
        store.read(&k("y"), ts(900, 3));
        assert_eq!(store.key_watermarks(&k("y")).unwrap().1, ts(900, 3));
        store.remove_rts(&k("y"), ts(900, 3));
        assert_eq!(store.key_watermarks(&k("y")).unwrap().1, Timestamp::ZERO);
    }

    #[test]
    fn prepare_below_gc_watermark_aborts() {
        let mut store = store_with_xy();
        // Reader at 300 read x@0 and committed; GC then collects its read
        // record. A write backdated under the collected reader must abort —
        // the evidence that would have caught it is gone.
        let mut b = TransactionBuilder::new(ts(300, 1));
        b.record_read(k("x"), Timestamp::ZERO);
        b.record_write(k("dummy"), v(1));
        let reader = b.build_shared();
        expect_commit(store.prepare(&reader, CLOCK, DELTA));
        store.commit(&reader);
        store.gc_before(ts(400, 0));

        let w = blind_write(200, 2, "x", 9);
        expect_abort(
            store.prepare(&w, CLOCK, DELTA),
            AbortReason::TimestampOutOfBounds,
        );
        // Exactly at the watermark is refused too; strictly above proceeds.
        let at = blind_write(400, 0, "x", 9);
        expect_abort(
            store.prepare(&at, CLOCK, DELTA),
            AbortReason::TimestampOutOfBounds,
        );
        let above = blind_write(500, 3, "x", 9);
        expect_commit(store.prepare(&above, CLOCK, DELTA));
    }

    #[test]
    fn unused_key_records_are_pruned() {
        let mut store = store_with_xy();
        // A read of a never-written key holds a record only for its RTS.
        store.read(&k("ghost"), ts(100, 1));
        assert!(store.key_generation(&k("ghost")).is_some());
        store.remove_rts(&k("ghost"), ts(100, 1));
        assert_eq!(
            store.key_generation(&k("ghost")),
            None,
            "record released with its last RTS"
        );

        // GC drops records drained to nothing but keeps live ones.
        store.read(&k("phantom"), ts(100, 2));
        store.gc_before(ts(200, 0));
        assert_eq!(store.key_generation(&k("phantom")), None);
        assert!(
            store.key_generation(&k("x")).is_some(),
            "keys with retained versions keep their record"
        );
    }

    #[test]
    fn gc_refreshes_watermarks_and_generation() {
        let mut store = store_with_xy();
        for i in 1..=5u64 {
            let t = blind_write(i * 100, 1, "x", i);
            store.prepare(&t, CLOCK, DELTA);
            store.commit(&t);
        }
        store.read(&k("x"), ts(120, 7));
        let gen_before = store.key_generation(&k("x")).unwrap();
        store.gc_before(ts(450, 0));
        assert!(store.key_generation(&k("x")).unwrap() > gen_before);
        // The RTS at 120 was collected; the newest write (500) is retained.
        let (max_write, max_read) = store.key_watermarks(&k("x")).unwrap();
        assert_eq!(max_write, ts(500, 1));
        assert_eq!(
            max_read,
            Timestamp::ZERO,
            "the only read record (the RTS) was below the GC watermark"
        );
    }
}
