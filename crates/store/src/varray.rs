//! Flattened, timestamp-sorted version arrays.
//!
//! The MVTSO concurrency-control check is dominated by per-key ordered
//! lookups: "newest version below `ts`", "any write strictly inside
//! `(lower, upper)`", "any reader above `ts`". The original store kept one
//! `BTreeMap` per key per index, which answers those queries in `O(log n)`
//! but with pointer-chasing node traversals and one allocation per entry.
//!
//! [`VersionArray`] stores the same ordered mapping as a single flat `Vec`
//! of `(Timestamp, V)` pairs sorted by timestamp. Workload timestamps are
//! issued by loosely synchronized client clocks, so inserts arrive in
//! almost-sorted order: the common case is a bounds check plus a `push`,
//! and the rare out-of-order insert is a binary search plus `Vec::insert`.
//! Range queries become `partition_point` binary searches over contiguous
//! memory, and the max element — the watermark the scan-free prepare fast
//! path compares against — is just the last slot.
//!
//! Semantics match the `BTreeMap` it replaces: timestamps are unique keys
//! and inserting an existing timestamp replaces the value.

use basil_common::Timestamp;

/// An ordered `Timestamp -> V` map stored as a flat sorted `Vec`.
///
/// Optimized for append-mostly insertion and read-heavy range queries; see
/// the module docs for the rationale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionArray<V> {
    entries: Vec<(Timestamp, V)>,
}

impl<V> Default for VersionArray<V> {
    fn default() -> Self {
        VersionArray::new()
    }
}

impl<V> VersionArray<V> {
    /// Creates an empty array.
    pub fn new() -> Self {
        VersionArray {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The largest timestamp present, if any — the write/read watermark the
    /// scan-free prepare fast path compares against.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.entries.last().map(|(ts, _)| *ts)
    }

    /// The entry with the largest timestamp, if any.
    pub fn last(&self) -> Option<&(Timestamp, V)> {
        self.entries.last()
    }

    /// First index whose timestamp is `>= ts`.
    fn lower_bound(&self, ts: Timestamp) -> usize {
        self.entries.partition_point(|(t, _)| *t < ts)
    }

    /// First index whose timestamp is `> ts`.
    fn upper_bound(&self, ts: Timestamp) -> usize {
        self.entries.partition_point(|(t, _)| *t <= ts)
    }

    /// Inserts `value` at `ts`, replacing any existing entry with the same
    /// timestamp (`BTreeMap::insert` semantics). Appends without searching
    /// when `ts` is newer than everything present — the common case under
    /// timestamp-ordered workloads.
    pub fn insert(&mut self, ts: Timestamp, value: V) {
        match self.entries.last() {
            Some((last, _)) if *last < ts => self.entries.push((ts, value)),
            None => self.entries.push((ts, value)),
            _ => {
                let idx = self.lower_bound(ts);
                if self
                    .entries
                    .get(idx)
                    .map(|(t, _)| *t == ts)
                    .unwrap_or(false)
                {
                    self.entries[idx].1 = value;
                } else {
                    self.entries.insert(idx, (ts, value));
                }
            }
        }
    }

    /// Removes the entry at exactly `ts`, returning its value.
    pub fn remove(&mut self, ts: Timestamp) -> Option<V> {
        let idx = self.lower_bound(ts);
        if self
            .entries
            .get(idx)
            .map(|(t, _)| *t == ts)
            .unwrap_or(false)
        {
            Some(self.entries.remove(idx).1)
        } else {
            None
        }
    }

    /// The value stored at exactly `ts`.
    pub fn get(&self, ts: Timestamp) -> Option<&V> {
        let idx = self.lower_bound(ts);
        match self.entries.get(idx) {
            Some((t, v)) if *t == ts => Some(v),
            _ => None,
        }
    }

    /// The newest entry with timestamp strictly below `ts` (versioned-read
    /// visibility: readers see versions strictly older than themselves).
    pub fn latest_before(&self, ts: Timestamp) -> Option<&(Timestamp, V)> {
        let idx = self.lower_bound(ts);
        if idx == 0 {
            None
        } else {
            self.entries.get(idx - 1)
        }
    }

    /// The newest entry with timestamp at or below `ts` (the GC keep-point:
    /// the newest version a reader at the watermark could still observe).
    pub fn latest_at_or_below(&self, ts: Timestamp) -> Option<&(Timestamp, V)> {
        let idx = self.upper_bound(ts);
        if idx == 0 {
            None
        } else {
            self.entries.get(idx - 1)
        }
    }

    /// Whether any entry lies strictly inside the open window
    /// `(lower, upper)` — the missed-write check of Algorithm 1.
    pub fn any_in_open_range(&self, lower: Timestamp, upper: Timestamp) -> bool {
        let idx = self.upper_bound(lower);
        self.entries
            .get(idx)
            .map(|(t, _)| *t < upper)
            .unwrap_or(false)
    }

    /// Iterates over entries with timestamp strictly above `ts`, in
    /// ascending order (the invalidated-reader scan of Algorithm 1).
    pub fn iter_above(&self, ts: Timestamp) -> impl Iterator<Item = &(Timestamp, V)> {
        self.entries[self.upper_bound(ts)..].iter()
    }

    /// Iterates over all entries in ascending timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &(Timestamp, V)> {
        self.entries.iter()
    }

    /// Drops every entry with timestamp strictly below `keep_from`, shifting
    /// the retained suffix down in place. Unlike `BTreeMap::split_off` this
    /// allocates nothing; it returns how many entries were dropped.
    pub fn drop_below(&mut self, keep_from: Timestamp) -> usize {
        let idx = self.lower_bound(keep_from);
        if idx > 0 {
            self.entries.drain(..idx);
        }
        idx
    }

    /// Keeps only the `n` newest entries, draining the older prefix in
    /// place; returns how many entries were dropped. Used to bound
    /// retained-history arrays whose consumers only need a recent window.
    pub fn keep_newest(&mut self, n: usize) -> usize {
        let dropped = self.entries.len().saturating_sub(n);
        if dropped > 0 {
            self.entries.drain(..dropped);
        }
        dropped
    }
}

/// Width of one [`ReaderSummary`] time bucket as a power-of-two shift of
/// raw nanoseconds: 2^17 ns ≈ 131 µs. Reader intervals (version read →
/// reader timestamp) span microseconds to a few milliseconds under the
/// simulated cost model, so most cover a handful of the 64 buckets.
const READER_BUCKET_SHIFT: u32 = 17;

/// Bloom-style one-word summary of the reader intervals recorded for one
/// key.
///
/// Check (5) of the MVTSO prepare asks, for a write at `ts`, whether any
/// recorded read (reader timestamp `r`, version read `v`) satisfies
/// `v < ts < r` — the write would land inside a window some reader believes
/// it read over. The exact answer is an ordered scan of the reader arrays;
/// this summary answers "definitely no such reader" in O(1) and has no
/// false negatives, so a clear bucket skips the scan outright.
///
/// Each recorded read covers the coarse time buckets its `(v, r)` interval
/// spans, taken modulo 64 into a single `u64`. Removing a read does *not*
/// clear bits (Bloom semantics — clearing could uncover another interval's
/// buckets); the owner rebuilds the summary from the surviving entries when
/// garbage collection drains a prefix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReaderSummary {
    bits: u64,
}

impl ReaderSummary {
    /// An empty summary: no reader interval covers anything.
    pub fn new() -> Self {
        ReaderSummary::default()
    }

    fn bucket(time_ns: u64) -> u32 {
        ((time_ns >> READER_BUCKET_SHIFT) % 64) as u32
    }

    /// Forgets every covered interval (used before a rebuild).
    pub fn clear(&mut self) {
        self.bits = 0;
    }

    /// Whether nothing has been covered since the last clear.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Covers the bucket range spanned by a read of `version` performed at
    /// `reader`. Endpoint buckets are included (the conflict predicate is
    /// strict, so this only over-approximates). An interval spanning all 64
    /// buckets saturates the summary.
    pub fn cover(&mut self, version: Timestamp, reader: Timestamp) {
        let lo = version.time.min(reader.time);
        let hi = version.time.max(reader.time);
        let span = (hi >> READER_BUCKET_SHIFT) - (lo >> READER_BUCKET_SHIFT) + 1;
        if span >= 64 {
            self.bits = u64::MAX;
            return;
        }
        let mut b = Self::bucket(lo);
        for _ in 0..span {
            self.bits |= 1u64 << b;
            b = (b + 1) % 64;
        }
    }

    /// Whether a write at `ts` *may* be invalidated by a covered reader.
    /// `false` is definitive: no recorded interval contains `ts`, so the
    /// ordered reader scan can be skipped. `true` demands the exact scan
    /// (the bucket may be set by an unrelated interval or a mod-64 alias).
    pub fn may_invalidate(&self, ts: Timestamp) -> bool {
        self.bits & (1u64 << Self::bucket(ts.time)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;

    fn ts(t: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(t % 4))
    }

    fn filled(times: &[u64]) -> VersionArray<u64> {
        let mut a = VersionArray::new();
        for &t in times {
            a.insert(ts(t), t);
        }
        a
    }

    #[test]
    fn append_and_out_of_order_insert_stay_sorted() {
        let a = filled(&[10, 30, 20, 40, 5]);
        let order: Vec<u64> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![5, 10, 20, 30, 40]);
        assert_eq!(a.max_ts(), Some(ts(40)));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn insert_replaces_on_equal_timestamp() {
        let mut a = filled(&[10, 20]);
        a.insert(ts(10), 99);
        assert_eq!(a.get(ts(10)), Some(&99));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn remove_and_get() {
        let mut a = filled(&[10, 20, 30]);
        assert_eq!(a.remove(ts(20)), Some(20));
        assert_eq!(a.remove(ts(20)), None);
        assert_eq!(a.get(ts(20)), None);
        assert_eq!(a.get(ts(30)), Some(&30));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn visibility_lookups() {
        let a = filled(&[10, 20, 30]);
        assert_eq!(a.latest_before(ts(25)).map(|(_, v)| *v), Some(20));
        assert_eq!(a.latest_before(ts(10)).map(|(_, v)| *v), None);
        assert_eq!(a.latest_before(ts(5)), None);
        assert_eq!(a.latest_at_or_below(ts(20)).map(|(_, v)| *v), Some(20));
        assert_eq!(a.latest_at_or_below(ts(9)), None);
    }

    #[test]
    fn open_range_matches_exclusive_bounds() {
        let a = filled(&[10, 20, 30]);
        assert!(a.any_in_open_range(ts(10), ts(30)));
        assert!(
            !a.any_in_open_range(ts(20), ts(30)),
            "both bounds exclusive"
        );
        assert!(!a.any_in_open_range(ts(30), ts(100)));
        assert!(a.any_in_open_range(ts(0), ts(11)));
        assert!(VersionArray::<u64>::new().is_empty());
        assert!(!VersionArray::<u64>::new().any_in_open_range(ts(0), ts(100)));
    }

    #[test]
    fn iter_above_is_strict() {
        let a = filled(&[10, 20, 30]);
        let above: Vec<u64> = a.iter_above(ts(20)).map(|(_, v)| *v).collect();
        assert_eq!(above, vec![30]);
        assert_eq!(a.iter_above(ts(30)).count(), 0);
        assert_eq!(a.iter_above(ts(0)).count(), 3);
    }

    #[test]
    fn keep_newest_bounds_the_array() {
        let mut a = filled(&[10, 20, 30, 40]);
        assert_eq!(a.keep_newest(10), 0, "already within bound");
        assert_eq!(a.keep_newest(2), 2);
        let left: Vec<u64> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(left, vec![30, 40]);
        assert_eq!(a.keep_newest(0), 2);
        assert!(a.is_empty());
    }

    #[test]
    fn drop_below_retains_suffix_in_place() {
        let mut a = filled(&[10, 20, 30, 40]);
        assert_eq!(a.drop_below(ts(30)), 2);
        let left: Vec<u64> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(left, vec![30, 40]);
        assert_eq!(a.drop_below(ts(0)), 0);
        assert_eq!(a.drop_below(ts(100)), 2);
        assert!(a.is_empty());
        assert_eq!(a.max_ts(), None);
    }

    const B: u64 = 1 << READER_BUCKET_SHIFT; // one summary bucket, in ns

    #[test]
    fn reader_summary_clears_and_covers() {
        let mut s = ReaderSummary::new();
        assert!(s.is_empty());
        // Interval well inside one bucket-group: buckets far away stay clear.
        s.cover(ts(2 * B), ts(3 * B));
        assert!(s.may_invalidate(ts(2 * B + 10)));
        assert!(s.may_invalidate(ts(3 * B + 10)), "endpoint bucket included");
        assert!(!s.may_invalidate(ts(10 * B)));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.may_invalidate(ts(2 * B + 10)));
    }

    #[test]
    fn reader_summary_never_false_negatives() {
        // Exhaustive-ish sweep: for every covered interval and every ts
        // strictly inside it, the summary must answer "maybe".
        let intervals = [
            (0, 5),
            (B - 1, B + 1),          // crosses a bucket edge
            (10 * B, 10 * B),        // degenerate (v == r): nothing inside
            (62 * B, 66 * B),        // wraps past the 64-bucket modulus
            (7 * B, 7 * B + 90 * B), // saturating span (>64 buckets)
        ];
        for &(v, r) in &intervals {
            let mut s = ReaderSummary::new();
            s.cover(ts(v), ts(r));
            for probe in [v, v + 1, (v + r) / 2, r.saturating_sub(1), r] {
                if probe > v && probe < r {
                    assert!(
                        s.may_invalidate(ts(probe)),
                        "interval ({v},{r}) missed inner probe {probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn reader_summary_saturates_on_wide_intervals() {
        let mut s = ReaderSummary::new();
        s.cover(ts(0), ts(65 * B));
        for probe in [1, 50 * B, 1000 * B, u64::MAX / 2] {
            assert!(s.may_invalidate(ts(probe)), "saturated summary covers all");
        }
    }

    #[test]
    fn reader_summary_aliasing_is_conservative_only() {
        // A bucket 64 groups away aliases to the same bit — allowed (false
        // positive), but a clear bucket within the same epoch is definitive.
        let mut s = ReaderSummary::new();
        s.cover(ts(5 * B), ts(6 * B));
        assert!(s.may_invalidate(ts((5 + 64) * B)), "mod-64 alias");
        assert!(
            !s.may_invalidate(ts(40 * B)),
            "clear bucket stays definitive"
        );
    }
}
