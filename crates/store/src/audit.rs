//! Serializability auditing.
//!
//! Tests and benchmarks use this module to check, after the fact, that the
//! set of transactions a system committed forms a serializable history. It
//! builds Adya's direct serialization graph (DSG) — the construction used in
//! the paper's proof of Lemma 1 — and verifies that it is acyclic, and that
//! every read observed a version actually produced by a committed transaction
//! (or the initial database state).

use crate::tx::Transaction;
use basil_common::{Key, Timestamp, TxId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Ways in which a committed history can violate Byz-serializability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// A committed transaction read a version that no committed transaction
    /// (nor the initial state) produced — e.g. a value fabricated by a
    /// Byzantine replica or a read from an aborted transaction.
    ReadFromUncommitted {
        /// The reader.
        reader: TxId,
        /// Key whose read is unaccounted for.
        key: Key,
        /// The claimed version.
        version: Timestamp,
    },
    /// Two distinct committed transactions share a timestamp; the
    /// serialization order would be ambiguous.
    DuplicateTimestamp {
        /// The shared timestamp.
        timestamp: Timestamp,
    },
    /// The direct serialization graph contains a cycle.
    Cycle {
        /// Transactions participating in the detected cycle.
        members: Vec<TxId>,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::ReadFromUncommitted { reader, key, version } => write!(
                f,
                "committed transaction {reader} read {key:?} at {version}, which no committed transaction wrote"
            ),
            AuditError::DuplicateTimestamp { timestamp } => {
                write!(f, "two committed transactions share timestamp {timestamp}")
            }
            AuditError::Cycle { members } => {
                write!(f, "serialization graph contains a cycle through {members:?}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Checks that `committed` is a serializable history.
///
/// Edges are built exactly as in the paper's Lemma 1 proof:
///
/// * `ww`: `Ti -> Tj` when both write key `x` and `ts_i < ts_j` (the version
///   order of MVTSO is timestamp order);
/// * `wr`: `Ti -> Tj` when `Tj` read the version of `x` that `Ti` wrote;
/// * `rw`: `Ti -> Tj` when `Ti` read a version of `x` older than the version
///   `Tj` wrote.
///
/// Returns `Ok(())` when the graph is acyclic and every read is accounted
/// for. Accepts any borrow of [`Transaction`] — owned histories in tests,
/// `&Transaction` borrows straight out of the replica stores in the
/// harness audit (which no longer clones the committed history).
pub fn audit_serializability<T: std::borrow::Borrow<Transaction>>(
    committed: &[T],
) -> Result<(), AuditError> {
    // Index committed writers per key, ordered by timestamp.
    let mut writers: HashMap<&Key, BTreeMap<Timestamp, usize>> = HashMap::new();
    let mut seen_ts: HashMap<Timestamp, usize> = HashMap::new();
    for (i, tx) in committed.iter().enumerate() {
        let tx = tx.borrow();
        if let Some(_prev) = seen_ts.insert(tx.timestamp(), i) {
            return Err(AuditError::DuplicateTimestamp {
                timestamp: tx.timestamp(),
            });
        }
        for w in tx.write_set() {
            writers.entry(&w.key).or_default().insert(tx.timestamp(), i);
        }
    }

    let n = committed.len();
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let add_edge = |from: usize, to: usize, edges: &mut Vec<HashSet<usize>>| {
        if from != to {
            edges[from].insert(to);
        }
    };

    // ww edges: consecutive (in fact all) writers of the same key in
    // timestamp order. Adjacent pairs suffice for cycle detection because ww
    // edges are transitive along the version chain.
    for versions in writers.values() {
        let idx: Vec<usize> = versions.values().copied().collect();
        for pair in idx.windows(2) {
            add_edge(pair[0], pair[1], &mut edges);
        }
    }

    // wr and rw edges, plus read accountability.
    for (j, tx) in committed.iter().enumerate() {
        let tx = tx.borrow();
        for read in tx.read_set() {
            let key_writers = writers.get(&read.key);
            if read.version != Timestamp::ZERO {
                match key_writers.and_then(|w| w.get(&read.version)) {
                    Some(&i) => add_edge(i, j, &mut edges), // wr
                    None => {
                        return Err(AuditError::ReadFromUncommitted {
                            reader: tx.id(),
                            key: read.key.clone(),
                            version: read.version,
                        });
                    }
                }
            }
            // rw: every committed writer of this key with a version newer
            // than what we read is anti-depended upon. The earliest such
            // writer suffices for cycle detection (later writers are
            // reachable from it through ww edges).
            if let Some(w) = key_writers {
                if let Some((_, &i)) = w
                    .range((
                        std::ops::Bound::Excluded(read.version),
                        std::ops::Bound::Unbounded,
                    ))
                    .next()
                {
                    add_edge(j, i, &mut edges);
                }
            }
        }
    }

    // Cycle detection via iterative DFS with colouring.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; n];
    for start in 0..n {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (node, iterator position over its successors).
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        colour[start] = Colour::Grey;
        let succ: Vec<usize> = edges[start].iter().copied().collect();
        stack.push((start, succ, 0));
        while let Some((node, succ, pos)) = stack.last_mut() {
            if *pos < succ.len() {
                let next = succ[*pos];
                *pos += 1;
                match colour[next] {
                    Colour::White => {
                        colour[next] = Colour::Grey;
                        let next_succ: Vec<usize> = edges[next].iter().copied().collect();
                        stack.push((next, next_succ, 0));
                    }
                    Colour::Grey => {
                        // Found a back edge: everything grey on the stack from
                        // `next` onward is part of a cycle.
                        let members: Vec<TxId> = stack
                            .iter()
                            .map(|(i, _, _)| committed[*i].borrow().id())
                            .collect();
                        return Err(AuditError::Cycle { members });
                    }
                    Colour::Black => {}
                }
            } else {
                colour[*node] = Colour::Black;
                stack.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TransactionBuilder;
    use basil_common::{ClientId, Key, Value};

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(c))
    }

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn write_tx(t: u64, c: u64, key: &str) -> Transaction {
        let mut b = TransactionBuilder::new(ts(t, c));
        b.record_write(k(key), Value::from_u64(t));
        b.build()
    }

    #[test]
    fn empty_and_single_histories_are_serializable() {
        assert!(audit_serializability::<Transaction>(&[]).is_ok());
        assert!(audit_serializability(&[write_tx(1, 1, "x")]).is_ok());
    }

    #[test]
    fn chain_of_rmw_is_serializable() {
        // T1 writes x@100; T2 reads x@100, writes x@200; T3 reads x@200.
        let t1 = write_tx(100, 1, "x");
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_read(k("x"), ts(100, 1));
        b.record_write(k("x"), Value::from_u64(2));
        let t2 = b.build();
        let mut b = TransactionBuilder::new(ts(300, 3));
        b.record_read(k("x"), ts(200, 2));
        let t3 = b.build();
        assert!(audit_serializability(&[t3, t1, t2]).is_ok());
    }

    #[test]
    fn read_of_unknown_version_is_flagged() {
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_read(k("x"), ts(123, 9)); // nobody wrote this
        let t = b.build();
        match audit_serializability(&[t]) {
            Err(AuditError::ReadFromUncommitted { key, version, .. }) => {
                assert_eq!(key, k("x"));
                assert_eq!(version, ts(123, 9));
            }
            other => panic!("expected ReadFromUncommitted, got {other:?}"),
        }
    }

    #[test]
    fn initial_version_reads_are_fine() {
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_read(k("x"), Timestamp::ZERO);
        let t = b.build();
        assert!(audit_serializability(&[t]).is_ok());
    }

    #[test]
    fn write_skew_style_cycle_is_detected() {
        // Classic non-serializable interleaving expressed in version reads:
        // T1 reads y@0 and writes x; T2 reads x@0 and writes y.
        // rw edges: T1 -> T2 (T1 read y older than T2's write)
        //           T2 -> T1 (T2 read x older than T1's write)  => cycle.
        let mut b = TransactionBuilder::new(ts(100, 1));
        b.record_read(k("y"), Timestamp::ZERO);
        b.record_write(k("x"), Value::from_u64(1));
        let t1 = b.build();
        let mut b = TransactionBuilder::new(ts(110, 2));
        b.record_read(k("x"), Timestamp::ZERO);
        b.record_write(k("y"), Value::from_u64(1));
        let t2 = b.build();
        match audit_serializability(&[t1, t2]) {
            Err(AuditError::Cycle { members }) => assert!(members.len() >= 2),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn lost_update_cycle_is_detected() {
        // T1 and T2 both read x@0 and both write x: whichever is serialized
        // first, the other read a stale version => cycle via rw edges.
        let mk = |t: u64, c: u64| {
            let mut b = TransactionBuilder::new(ts(t, c));
            b.record_read(k("x"), Timestamp::ZERO);
            b.record_write(k("x"), Value::from_u64(t));
            b.build()
        };
        let t1 = mk(100, 1);
        let t2 = mk(200, 2);
        assert!(matches!(
            audit_serializability(&[t1, t2]),
            Err(AuditError::Cycle { .. })
        ));
    }

    #[test]
    fn duplicate_timestamps_are_rejected() {
        let t1 = write_tx(100, 1, "x");
        let t2 = write_tx(100, 1, "y"); // same (time, client) pair
        assert!(matches!(
            audit_serializability(&[t1, t2]),
            Err(AuditError::DuplicateTimestamp { .. })
        ));
    }

    #[test]
    fn independent_transactions_are_serializable() {
        let txs: Vec<Transaction> = (1..50u64)
            .map(|i| write_tx(i * 10, i, &format!("k{i}")))
            .collect();
        assert!(audit_serializability(&txs).is_ok());
    }

    #[test]
    fn large_valid_rmw_history_is_serializable() {
        // A long chain of read-modify-writes on a handful of keys, each
        // reading the immediately preceding version: always serializable.
        // Keys are interned once (`Key` is `Arc<str>`) and shared between
        // the map and the transactions instead of allocating fresh `String`s
        // per committed write.
        let keys: Vec<Key> = (0..5).map(|i| k(&format!("k{i}"))).collect();
        let mut txs = Vec::new();
        let mut latest: HashMap<Key, Timestamp> = HashMap::new();
        for i in 1..200u64 {
            let key = keys[(i % 5) as usize].clone();
            let prev = latest.get(&key).copied().unwrap_or(Timestamp::ZERO);
            let now = ts(i * 10, i % 7);
            let mut b = TransactionBuilder::new(now);
            b.record_read(key.clone(), prev);
            b.record_write(key.clone(), Value::from_u64(i));
            txs.push(b.build());
            latest.insert(key, now);
        }
        assert!(audit_serializability(&txs).is_ok());
    }
}
