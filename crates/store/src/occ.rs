//! A classic optimistic-concurrency-control store with two-phase commit
//! locking, used by the baseline systems.
//!
//! The paper's baselines (TxHotstuff and TxBFT-SMaRt) layer "a standard
//! optimistic concurrency control serializability check [Kung & Robinson]"
//! and a 2PC coordination layer on top of a totally ordered shard
//! (Section 6, *Baselines*). TAPIR's execution layer is modelled the same
//! way. This module implements that execution layer: versioned reads,
//! backward validation at prepare time, prepare locks to bridge the window
//! between a shard's prepare and the coordinator's final decision, and
//! commit/abort application.

use crate::mvtso::Decision;
use crate::tx::Transaction;
use crate::varray::VersionArray;
use basil_common::error::AbortReason;
use basil_common::{FastHashMap, Key, Timestamp, TxId, Value};
use std::sync::Arc;

/// Result of an OCC prepare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccVote {
    /// Reads are still current and all write locks were acquired.
    Commit,
    /// Validation failed or a lock is held by another in-flight transaction.
    Abort(AbortReason),
}

impl OccVote {
    /// True for [`OccVote::Commit`].
    pub fn is_commit(&self) -> bool {
        matches!(self, OccVote::Commit)
    }
}

/// Per-key state of the OCC store.
#[derive(Clone, Debug)]
struct Entry {
    /// Timestamp (of the writing transaction) identifying the installed
    /// version. The initial load uses [`Timestamp::ZERO`].
    ///
    /// This is *application order*, not timestamp order: the shard's
    /// consensus log decides which write is current, and a later-applied
    /// write with a smaller timestamp replaces an earlier one. The installed
    /// pair is therefore kept separately from `history`.
    version: Timestamp,
    value: Value,
    /// Transaction currently holding the prepare lock on this key, if any.
    locked_by: Option<TxId>,
    /// Recently committed versions of this key, timestamp-sorted in the
    /// shared flat-array layout ([`VersionArray`]); backs
    /// [`OccStore::versioned_read`] snapshot reads. Bounded to the
    /// [`OccStore::HISTORY_WINDOW`] newest versions so long runs do not
    /// accrue unbounded per-key state; values are `Arc`-backed, so the
    /// window shares allocations with the installed pair.
    history: VersionArray<Value>,
}

impl Entry {
    fn fresh() -> Self {
        Entry {
            version: Timestamp::ZERO,
            value: Value::empty(),
            locked_by: None,
            history: VersionArray::new(),
        }
    }
}

/// The OCC execution store of one baseline shard replica.
#[derive(Clone, Debug, Default)]
pub struct OccStore {
    data: FastHashMap<Key, Entry>,
    /// Prepared transactions whose decision has not arrived yet, shared with
    /// the consensus batches that carried them.
    prepared: FastHashMap<TxId, Arc<Transaction>>,
    committed: u64,
    aborted: u64,
    /// Transactions committed through this store, retained for the
    /// harness-level serializability audit.
    committed_log: Vec<Arc<Transaction>>,
    /// Final decision applied per transaction (only transactions that were
    /// actually prepared here are recorded).
    decisions: FastHashMap<TxId, Decision>,
}

impl OccStore {
    /// How many committed versions per key [`OccStore::versioned_read`] can
    /// see: snapshot reads only need a recent window, and the bound keeps a
    /// long-running shard's per-key state flat.
    pub const HISTORY_WINDOW: usize = 64;

    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store preloaded with initial data (version
    /// [`Timestamp::ZERO`]).
    pub fn with_initial_data(data: impl IntoIterator<Item = (Key, Value)>) -> Self {
        let mut s = Self::new();
        for (key, value) in data {
            let mut entry = Entry::fresh();
            entry.value = value.clone();
            entry.history.insert(Timestamp::ZERO, value);
            s.data.insert(key, entry);
        }
        s
    }

    /// Reads the currently committed version of `key`.
    /// Returns the version identifier and value; absent keys read as an empty
    /// value at version zero (and can be written later).
    pub fn read(&self, key: &Key) -> (Timestamp, Value) {
        match self.data.get(key) {
            Some(e) => (e.version, e.value.clone()),
            None => (Timestamp::ZERO, Value::empty()),
        }
    }

    /// OCC prepare: backward-validates the transaction's reads against the
    /// currently installed versions and acquires write locks. Must be called
    /// in the shard's serialization order (the baselines order prepares
    /// through consensus before executing them).
    pub fn prepare(&mut self, tx: &Arc<Transaction>) -> OccVote {
        let txid = tx.id();
        if self.prepared.contains_key(&txid) {
            return OccVote::Commit; // duplicate delivery
        }
        // Validation: every read must still be the installed version, and no
        // read key may be locked by a concurrent prepared transaction.
        for read in tx.read_set() {
            let (current, _) = self.read(&read.key);
            if current != read.version {
                return OccVote::Abort(AbortReason::Conflict);
            }
            if let Some(entry) = self.data.get(&read.key) {
                if entry.locked_by.is_some() && entry.locked_by != Some(txid) {
                    return OccVote::Abort(AbortReason::Conflict);
                }
            }
        }
        // Lock acquisition for writes.
        for write in tx.write_set() {
            if let Some(entry) = self.data.get(&write.key) {
                if entry.locked_by.is_some() && entry.locked_by != Some(txid) {
                    return OccVote::Abort(AbortReason::Conflict);
                }
            }
        }
        for write in tx.write_set() {
            self.data
                .entry(write.key.clone())
                .or_insert_with(Entry::fresh)
                .locked_by = Some(txid);
        }
        self.prepared.insert(txid, Arc::clone(tx));
        OccVote::Commit
    }

    /// Applies the commit decision for a prepared transaction: installs its
    /// writes (versioned by the transaction's timestamp) and releases locks.
    pub fn commit(&mut self, txid: &TxId) {
        let Some(tx) = self.prepared.remove(txid) else {
            return;
        };
        for write in tx.write_set() {
            let entry = self
                .data
                .entry(write.key.clone())
                .or_insert_with(Entry::fresh);
            entry.version = tx.timestamp();
            entry.value = write.value.clone();
            entry.locked_by = None;
            entry.history.insert(tx.timestamp(), write.value.clone());
            entry.history.keep_newest(Self::HISTORY_WINDOW);
        }
        self.committed += 1;
        self.decisions.insert(*txid, Decision::Commit);
        self.committed_log.push(tx);
    }

    /// Applies an abort decision: releases the transaction's locks.
    pub fn abort(&mut self, txid: &TxId) {
        let Some(tx) = self.prepared.remove(txid) else {
            return;
        };
        for write in tx.write_set() {
            if let Some(entry) = self.data.get_mut(&write.key) {
                if entry.locked_by == Some(*txid) {
                    entry.locked_by = None;
                }
            }
        }
        self.aborted += 1;
        self.decisions.insert(*txid, Decision::Abort);
    }

    /// Whether `txid` is currently prepared (locked, awaiting decision).
    pub fn is_prepared(&self, txid: &TxId) -> bool {
        self.prepared.contains_key(txid)
    }

    /// Number of transactions committed through this store.
    pub fn committed_count(&self) -> u64 {
        self.committed
    }

    /// Number of transactions aborted through this store.
    pub fn aborted_count(&self) -> u64 {
        self.aborted
    }

    /// The committed value of a key (test/inspection helper).
    pub fn committed_value(&self, key: &Key) -> Option<Value> {
        self.data.get(key).map(|e| e.value.clone())
    }

    /// Snapshot read: the newest committed version of `key` with timestamp
    /// strictly below `ts` (TAPIR-style versioned reads; mirrors the MVTSO
    /// visibility rule). Unlike [`OccStore::read`], which serves the
    /// *installed* (most recently applied) version, this consults the full
    /// timestamp-sorted history.
    pub fn versioned_read(&self, key: &Key, ts: Timestamp) -> Option<(Timestamp, Value)> {
        self.data.get(key).and_then(|e| {
            e.history
                .latest_before(ts)
                .map(|(version, value)| (*version, value.clone()))
        })
    }

    /// Number of committed versions retained for `key`.
    pub fn version_count(&self, key: &Key) -> usize {
        self.data.get(key).map(|e| e.history.len()).unwrap_or(0)
    }

    /// Iterates over the transactions committed through this store, in
    /// commit order, without cloning them (for the harness-level
    /// serializability audit).
    pub fn committed_iter(&self) -> impl Iterator<Item = &Transaction> {
        self.committed_log.iter().map(|tx| tx.as_ref())
    }

    /// The decision applied for `txid`, if this store prepared and then
    /// decided it.
    pub fn decision(&self, txid: &TxId) -> Option<Decision> {
        self.decisions.get(txid).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TransactionBuilder;
    use basil_common::ClientId;

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(c))
    }

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn store() -> OccStore {
        OccStore::with_initial_data([(k("x"), Value::from_u64(0)), (k("y"), Value::from_u64(0))])
    }

    fn rmw(t: u64, key: &str, read_version: Timestamp, val: u64) -> Arc<Transaction> {
        let mut b = TransactionBuilder::new(ts(t, t));
        b.record_read(k(key), read_version);
        b.record_write(k(key), Value::from_u64(val));
        b.build_shared()
    }

    #[test]
    fn read_validate_commit_cycle() {
        let mut s = store();
        let (v0, _) = s.read(&k("x"));
        let t = rmw(100, "x", v0, 5);
        assert!(s.prepare(&t).is_commit());
        s.commit(&t.id());
        assert_eq!(s.read(&k("x")).1, Value::from_u64(5));
        assert_eq!(s.read(&k("x")).0, ts(100, 100));
        assert_eq!(s.committed_count(), 1);
    }

    #[test]
    fn stale_read_fails_validation() {
        let mut s = store();
        let t1 = rmw(100, "x", Timestamp::ZERO, 5);
        assert!(s.prepare(&t1).is_commit());
        s.commit(&t1.id());

        // t2 read the old version of x before t1 committed.
        let t2 = rmw(200, "x", Timestamp::ZERO, 7);
        assert_eq!(s.prepare(&t2), OccVote::Abort(AbortReason::Conflict));
        assert_eq!(s.aborted_count(), 0, "failed validation never prepared");
    }

    #[test]
    fn prepare_lock_blocks_concurrent_writer_until_decision() {
        let mut s = store();
        let t1 = rmw(100, "x", Timestamp::ZERO, 5);
        assert!(s.prepare(&t1).is_commit());

        // Another transaction writing x while t1 is prepared must abort.
        let t2 = rmw(200, "x", Timestamp::ZERO, 7);
        assert_eq!(s.prepare(&t2), OccVote::Abort(AbortReason::Conflict));

        // Once t1 aborts, its locks are released and the key is writable
        // again (with the still-valid read version).
        s.abort(&t1.id());
        let t3 = rmw(300, "x", Timestamp::ZERO, 9);
        assert!(s.prepare(&t3).is_commit());
        s.commit(&t3.id());
        assert_eq!(s.committed_value(&k("x")), Some(Value::from_u64(9)));
    }

    #[test]
    fn read_lock_conflict_blocks_reader_of_locked_key() {
        let mut s = store();
        let t1 = rmw(100, "x", Timestamp::ZERO, 5);
        assert!(s.prepare(&t1).is_commit());
        // A transaction that reads x while it is locked must abort (it cannot
        // know which version it would serialize against).
        let mut b = TransactionBuilder::new(ts(200, 2));
        b.record_read(k("x"), Timestamp::ZERO);
        b.record_write(k("y"), Value::from_u64(1));
        let t2 = b.build_shared();
        assert_eq!(s.prepare(&t2), OccVote::Abort(AbortReason::Conflict));
    }

    #[test]
    fn disjoint_transactions_do_not_conflict() {
        let mut s = store();
        let t1 = rmw(100, "x", Timestamp::ZERO, 1);
        let t2 = rmw(110, "y", Timestamp::ZERO, 2);
        assert!(s.prepare(&t1).is_commit());
        assert!(s.prepare(&t2).is_commit());
        s.commit(&t1.id());
        s.commit(&t2.id());
        assert_eq!(s.committed_count(), 2);
    }

    #[test]
    fn writes_to_new_keys_are_allowed() {
        let mut s = store();
        let mut b = TransactionBuilder::new(ts(50, 1));
        b.record_write(k("fresh"), Value::from_u64(1));
        let t = b.build_shared();
        assert!(s.prepare(&t).is_commit());
        s.commit(&t.id());
        assert_eq!(s.committed_value(&k("fresh")), Some(Value::from_u64(1)));
    }

    #[test]
    fn versioned_reads_consult_the_history_not_the_installed_pair() {
        let mut s = store();
        let t1 = rmw(100, "x", Timestamp::ZERO, 5);
        assert!(s.prepare(&t1).is_commit());
        s.commit(&t1.id());
        let t2 = rmw(200, "x", ts(100, 100), 7);
        assert!(s.prepare(&t2).is_commit());
        s.commit(&t2.id());

        // Snapshot visibility is strictly-below, like the MVTSO store.
        assert_eq!(
            s.versioned_read(&k("x"), ts(150, 0)),
            Some((ts(100, 100), Value::from_u64(5)))
        );
        assert_eq!(
            s.versioned_read(&k("x"), ts(100, 100)),
            Some((Timestamp::ZERO, Value::from_u64(0)))
        );
        assert_eq!(
            s.versioned_read(&k("x"), Timestamp::from_nanos(u64::MAX, ClientId(0))),
            Some((ts(200, 200), Value::from_u64(7)))
        );
        assert_eq!(s.versioned_read(&k("missing"), ts(100, 0)), None);
        assert_eq!(s.version_count(&k("x")), 3);
        assert_eq!(s.version_count(&k("missing")), 0);

        // The installed pair still follows application order.
        assert_eq!(s.read(&k("x")), (ts(200, 200), Value::from_u64(7)));
    }

    #[test]
    fn history_window_is_bounded() {
        let mut s = OccStore::new();
        for i in 0..(OccStore::HISTORY_WINDOW as u64 + 40) {
            let mut b = TransactionBuilder::new(ts(100 + i, i));
            b.record_write(k("hot"), Value::from_u64(i));
            let t = b.build_shared();
            assert!(s.prepare(&t).is_commit());
            s.commit(&t.id());
        }
        assert_eq!(s.version_count(&k("hot")), OccStore::HISTORY_WINDOW);
        // The newest versions are still snapshot-readable.
        let last = ts(100 + OccStore::HISTORY_WINDOW as u64 + 39, 0);
        assert!(s.versioned_read(&k("hot"), last).is_some());
    }

    #[test]
    fn duplicate_prepare_and_unknown_decisions_are_harmless() {
        let mut s = store();
        let t = rmw(100, "x", Timestamp::ZERO, 5);
        assert!(s.prepare(&t).is_commit());
        assert!(s.prepare(&t).is_commit());
        s.commit(&TxId::from_bytes([7; 32])); // unknown txid: no-op
        s.abort(&TxId::from_bytes([8; 32]));
        assert!(s.is_prepared(&t.id()));
        s.commit(&t.id());
        assert!(!s.is_prepared(&t.id()));
    }
}
