//! Transaction representation.
//!
//! A Basil transaction `T` carries its timestamp `ts_T`, the set of keys it
//! read together with the version (timestamp) it read for each, the buffered
//! writes it wants to install, and the dependency set `Dep_T`: for every
//! *prepared-but-uncommitted* version the transaction read, the identifier of
//! the transaction that produced it. The transaction identifier `id_T` is a
//! SHA-256 hash over all of this metadata, so a Byzantine client can neither
//! spoof the set of involved shards nor equivocate the contents (Section 4.2).

use basil_common::{Key, ShardId, SystemConfig, Timestamp, TxId, Value};
use basil_crypto::Sha256;
use std::collections::BTreeSet;

/// One read performed by a transaction: the key and the timestamp of the
/// version that was read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOp {
    /// Key that was read.
    pub key: Key,
    /// Timestamp of the version returned by the read (the writer's timestamp;
    /// `Timestamp::ZERO` for the initial value).
    pub version: Timestamp,
}

/// One buffered write of a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOp {
    /// Key being written.
    pub key: Key,
    /// New value.
    pub value: Value,
}

/// A write-read dependency: this transaction read `version` of `key`, which
/// was produced by the not-yet-committed transaction `txid`. The dependency
/// must commit before this transaction can.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependency {
    /// The transaction that produced the version we read.
    pub txid: TxId,
    /// The key whose prepared version was read.
    pub key: Key,
    /// The timestamp of the prepared version (equals the dependency's
    /// transaction timestamp).
    pub version: Timestamp,
}

/// A transaction's metadata, as shipped in `ST1` (prepare) messages.
///
/// Transactions are frozen by [`TransactionBuilder::build`]: the fields are
/// private and only readable, which is what makes the identifier digest and
/// the canonical encoding safely memoizable — the first [`Transaction::id`]
/// or [`Transaction::encoded`] call serializes (and hashes) the metadata,
/// every later call (the replica and store hot paths ask for both on every
/// message) is a copy or a borrow. Cloning a transaction carries both memos
/// along; the protocol itself shares transactions behind `Arc` instead of
/// cloning (see the "Message plane & ownership" section of
/// `docs/ARCHITECTURE.md`).
pub struct Transaction {
    /// The client-chosen timestamp defining the serialization order.
    timestamp: Timestamp,
    /// Keys read, with the versions observed.
    read_set: Vec<ReadOp>,
    /// Buffered writes.
    write_set: Vec<WriteOp>,
    /// Write-read dependencies on prepared, uncommitted transactions.
    deps: Vec<Dependency>,
    /// Largest version claimed by any read, frozen at build time. The MVTSO
    /// prepare compares it against the transaction timestamp once instead of
    /// walking the read set (the read-from-the-future misbehaviour check).
    max_read_version: Timestamp,
    /// Memoized identifier digest.
    cached_id: std::sync::OnceLock<TxId>,
    /// Memoized canonical encoding (the signing payload of `ST1`); computed
    /// once instead of once per recipient and per verification.
    cached_encoding: std::sync::OnceLock<Vec<u8>>,
}

impl Clone for Transaction {
    fn clone(&self) -> Self {
        Transaction {
            timestamp: self.timestamp,
            read_set: self.read_set.clone(),
            write_set: self.write_set.clone(),
            deps: self.deps.clone(),
            max_read_version: self.max_read_version,
            cached_id: self.cached_id.clone(),
            cached_encoding: self.cached_encoding.clone(),
        }
    }
}

impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        // The memo is derived state and excluded from equality.
        self.timestamp == other.timestamp
            && self.read_set == other.read_set
            && self.write_set == other.write_set
            && self.deps == other.deps
    }
}
impl Eq for Transaction {}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("timestamp", &self.timestamp)
            .field("read_set", &self.read_set)
            .field("write_set", &self.write_set)
            .field("deps", &self.deps)
            .finish()
    }
}

impl Transaction {
    /// The transaction identifier: a SHA-256 digest over the canonical
    /// encoding of the metadata, computed once and memoized.
    ///
    /// Deliberately does *not* populate the encoding memo: committed
    /// transactions are retained for the whole run (store indexes, audit
    /// log), and pinning the encoding bytes for every transaction that only
    /// ever needed its id — e.g. the baselines, which never sign `ST1` —
    /// would roughly double their resident size. Signing paths call
    /// [`Transaction::encoded`], which does cache.
    pub fn id(&self) -> TxId {
        *self.cached_id.get_or_init(|| {
            let digest = match self.cached_encoding.get() {
                Some(encoded) => Sha256::digest(encoded),
                None => Sha256::digest(&self.compute_encoding()),
            };
            TxId::from_bytes(*digest.as_bytes())
        })
    }

    /// The client-chosen timestamp defining the serialization order.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// Keys read, with the versions observed.
    pub fn read_set(&self) -> &[ReadOp] {
        &self.read_set
    }

    /// Buffered writes.
    pub fn write_set(&self) -> &[WriteOp] {
        &self.write_set
    }

    /// Write-read dependencies on prepared, uncommitted transactions.
    pub fn deps(&self) -> &[Dependency] {
        &self.deps
    }

    /// The largest version claimed by any read (or [`Timestamp::ZERO`] for a
    /// read-free transaction), precomputed when the builder froze the
    /// metadata. `max_read_version() > timestamp()` proves the client claimed
    /// a read from the future.
    pub fn max_read_version(&self) -> Timestamp {
        self.max_read_version
    }

    /// The memoized canonical byte encoding used for hashing and signing.
    ///
    /// The first call serializes the metadata; every later call borrows the
    /// cached bytes. `St1::signed_bytes` is recomputed once per recipient
    /// and once per verifying replica, so memoizing here turns ~12 encodings
    /// per prepare fan-out into one encoding plus cheap copies.
    pub fn encoded(&self) -> &[u8] {
        self.cached_encoding.get_or_init(|| self.compute_encoding())
    }

    /// Canonical byte encoding used for hashing and for signing (owned copy;
    /// prefer [`Transaction::encoded`] on hot paths).
    pub fn encode(&self) -> Vec<u8> {
        self.encoded().to_vec()
    }

    fn compute_encoding(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 32 * (self.read_set.len() + self.write_set.len()));
        out.extend_from_slice(&self.timestamp.time.to_be_bytes());
        out.extend_from_slice(&self.timestamp.client.0.to_be_bytes());
        out.extend_from_slice(&(self.read_set.len() as u32).to_be_bytes());
        for r in &self.read_set {
            encode_key(&mut out, &r.key);
            encode_ts(&mut out, &r.version);
        }
        out.extend_from_slice(&(self.write_set.len() as u32).to_be_bytes());
        for w in &self.write_set {
            encode_key(&mut out, &w.key);
            out.extend_from_slice(&(w.value.len() as u32).to_be_bytes());
            out.extend_from_slice(w.value.as_bytes());
        }
        out.extend_from_slice(&(self.deps.len() as u32).to_be_bytes());
        for d in &self.deps {
            out.extend_from_slice(d.txid.as_bytes());
            encode_key(&mut out, &d.key);
            encode_ts(&mut out, &d.version);
        }
        out
    }

    /// Decodes a transaction from its canonical encoding (the inverse of
    /// [`Transaction::encoded`]). Returns `None` on truncated or malformed
    /// input, including trailing bytes. The decoded transaction re-derives
    /// `max_read_version` from the read set and re-serializes to the exact
    /// input bytes, so [`Transaction::id`] is preserved — which is what lets
    /// WAL replay and catch-up trust a shipped body after checking its hash.
    pub fn decode(bytes: &[u8]) -> Option<Transaction> {
        let mut pos = 0usize;
        let timestamp = take_ts(bytes, &mut pos)?;
        let reads = take_u32(bytes, &mut pos)? as usize;
        let mut read_set = Vec::with_capacity(reads.min(1024));
        for _ in 0..reads {
            let key = take_key(bytes, &mut pos)?;
            let version = take_ts(bytes, &mut pos)?;
            read_set.push(ReadOp { key, version });
        }
        let writes = take_u32(bytes, &mut pos)? as usize;
        let mut write_set = Vec::with_capacity(writes.min(1024));
        for _ in 0..writes {
            let key = take_key(bytes, &mut pos)?;
            let len = take_u32(bytes, &mut pos)? as usize;
            let value = Value::new(take(bytes, &mut pos, len)?);
            write_set.push(WriteOp { key, value });
        }
        let dep_count = take_u32(bytes, &mut pos)? as usize;
        let mut deps = Vec::with_capacity(dep_count.min(1024));
        for _ in 0..dep_count {
            let txid = TxId::from_bytes(take(bytes, &mut pos, 32)?.try_into().ok()?);
            let key = take_key(bytes, &mut pos)?;
            let version = take_ts(bytes, &mut pos)?;
            deps.push(Dependency { txid, key, version });
        }
        if pos != bytes.len() {
            return None; // trailing garbage: not the canonical encoding
        }
        let max_read_version = read_set
            .iter()
            .map(|r| r.version)
            .max()
            .unwrap_or(Timestamp::ZERO);
        Some(Transaction {
            timestamp,
            read_set,
            write_set,
            deps,
            max_read_version,
            cached_id: std::sync::OnceLock::new(),
            cached_encoding: std::sync::OnceLock::new(),
        })
    }

    /// Whether the transaction writes `key`.
    pub fn writes(&self, key: &Key) -> bool {
        self.write_set.iter().any(|w| &w.key == key)
    }

    /// Whether the transaction reads `key`.
    pub fn reads(&self, key: &Key) -> bool {
        self.read_set.iter().any(|r| &r.key == key)
    }

    /// The value this transaction writes to `key`, if any.
    pub fn written_value(&self, key: &Key) -> Option<&Value> {
        self.write_set
            .iter()
            .find(|w| &w.key == key)
            .map(|w| &w.value)
    }

    /// The version this transaction read for `key`, if any.
    pub fn read_version(&self, key: &Key) -> Option<Timestamp> {
        self.read_set
            .iter()
            .find(|r| &r.key == key)
            .map(|r| r.version)
    }

    /// The shards touched by this transaction under `cfg`'s key placement,
    /// in ascending order.
    pub fn involved_shards(&self, cfg: &SystemConfig) -> Vec<ShardId> {
        let mut shards: BTreeSet<ShardId> = BTreeSet::new();
        for r in &self.read_set {
            shards.insert(cfg.shard_for_key(&r.key));
        }
        for w in &self.write_set {
            shards.insert(cfg.shard_for_key(&w.key));
        }
        shards.into_iter().collect()
    }

    /// True when the transaction touches no keys at all.
    pub fn is_empty(&self) -> bool {
        self.read_set.is_empty() && self.write_set.is_empty()
    }
}

fn encode_key(out: &mut Vec<u8>, key: &Key) {
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(key.as_bytes());
}

fn encode_ts(out: &mut Vec<u8>, ts: &Timestamp) {
    out.extend_from_slice(&ts.time.to_be_bytes());
    out.extend_from_slice(&ts.client.0.to_be_bytes());
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    if end > buf.len() {
        return None;
    }
    let slice = &buf[*pos..end];
    *pos = end;
    Some(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    Some(u32::from_be_bytes(take(buf, pos, 4)?.try_into().ok()?))
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    Some(u64::from_be_bytes(take(buf, pos, 8)?.try_into().ok()?))
}

fn take_ts(buf: &[u8], pos: &mut usize) -> Option<Timestamp> {
    let time = take_u64(buf, pos)?;
    let client = take_u64(buf, pos)?;
    Some(Timestamp::from_nanos(time, basil_common::ClientId(client)))
}

fn take_key(buf: &[u8], pos: &mut usize) -> Option<Key> {
    let len = take_u32(buf, pos)? as usize;
    let bytes = take(buf, pos, len)?;
    Some(Key::new(std::str::from_utf8(bytes).ok()?))
}

/// Incrementally assembles a [`Transaction`] during the execution phase.
///
/// The client buffers writes locally and records each read together with the
/// version it observed; prepared-version reads additionally record a
/// dependency. `build()` freezes the metadata.
#[derive(Clone, Debug)]
pub struct TransactionBuilder {
    timestamp: Timestamp,
    read_set: Vec<ReadOp>,
    write_set: Vec<WriteOp>,
    deps: Vec<Dependency>,
}

impl TransactionBuilder {
    /// Starts building a transaction with the given timestamp.
    pub fn new(timestamp: Timestamp) -> Self {
        TransactionBuilder {
            timestamp,
            read_set: Vec::new(),
            write_set: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// The transaction's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// Records a read of `key` that observed `version`.
    pub fn record_read(&mut self, key: Key, version: Timestamp) -> &mut Self {
        self.read_set.push(ReadOp { key, version });
        self
    }

    /// Records a read of a prepared (uncommitted) version, adding the
    /// corresponding dependency.
    pub fn record_dependent_read(
        &mut self,
        key: Key,
        version: Timestamp,
        dep_txid: TxId,
    ) -> &mut Self {
        self.read_set.push(ReadOp {
            key: key.clone(),
            version,
        });
        self.deps.push(Dependency {
            txid: dep_txid,
            key,
            version,
        });
        self
    }

    /// Buffers a write. A later write to the same key overwrites the earlier
    /// one (last-writer-wins within the transaction).
    pub fn record_write(&mut self, key: Key, value: Value) -> &mut Self {
        if let Some(w) = self.write_set.iter_mut().find(|w| w.key == key) {
            w.value = value;
        } else {
            self.write_set.push(WriteOp { key, value });
        }
        self
    }

    /// The value this transaction has buffered for `key`, if any. Reads of
    /// keys the transaction itself wrote must return the buffered value
    /// (read-your-writes).
    pub fn buffered_value(&self, key: &Key) -> Option<&Value> {
        self.write_set
            .iter()
            .find(|w| &w.key == key)
            .map(|w| &w.value)
    }

    /// Whether the builder has already recorded a read of `key`.
    pub fn has_read(&self, key: &Key) -> bool {
        self.read_set.iter().any(|r| &r.key == key)
    }

    /// Number of reads recorded so far.
    pub fn read_count(&self) -> usize {
        self.read_set.len()
    }

    /// Number of distinct keys written so far.
    pub fn write_count(&self) -> usize {
        self.write_set.len()
    }

    /// Freezes the metadata into an immutable [`Transaction`].
    pub fn build(self) -> Transaction {
        let max_read_version = self
            .read_set
            .iter()
            .map(|r| r.version)
            .max()
            .unwrap_or(Timestamp::ZERO);
        Transaction {
            timestamp: self.timestamp,
            read_set: self.read_set,
            write_set: self.write_set,
            deps: self.deps,
            max_read_version,
            cached_id: std::sync::OnceLock::new(),
            cached_encoding: std::sync::OnceLock::new(),
        }
    }

    /// Freezes the metadata into a reference-counted [`Transaction`], the
    /// form the message plane ships (prepare fan-out, record state, and the
    /// store share one allocation instead of deep-copying per hop).
    pub fn build_shared(self) -> std::sync::Arc<Transaction> {
        std::sync::Arc::new(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(c))
    }

    fn sample_tx() -> Transaction {
        let mut b = TransactionBuilder::new(ts(100, 1));
        b.record_read(Key::new("x"), ts(50, 2));
        b.record_write(Key::new("y"), Value::from_u64(7));
        b.build()
    }

    #[test]
    fn id_is_deterministic_and_content_sensitive() {
        let a = sample_tx();
        let b = sample_tx();
        assert_eq!(a.id(), b.id());

        // A different written value changes the digest.
        let mut cb = TransactionBuilder::new(ts(100, 1));
        cb.record_read(Key::new("x"), ts(50, 2));
        cb.record_write(Key::new("y"), Value::from_u64(8));
        let c = cb.build();
        assert_ne!(a.id(), c.id());

        // A different timestamp changes the digest.
        let mut db = TransactionBuilder::new(ts(101, 1));
        db.record_read(Key::new("x"), ts(50, 2));
        db.record_write(Key::new("y"), Value::from_u64(7));
        let d = db.build();
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn id_is_memoized_and_carried_by_clone() {
        let a = sample_tx();
        let first = a.id();
        assert_eq!(a.id(), first, "repeated calls return the memo");
        let b = a.clone();
        assert_eq!(b.id(), first, "clones carry the memo");
    }

    #[test]
    fn encoding_is_memoized_and_carried_by_clone() {
        let t = sample_tx();
        let first = t.encoded().as_ptr();
        assert_eq!(t.encoded().as_ptr(), first, "repeat calls borrow the memo");
        assert_eq!(t.encode(), t.encoded().to_vec(), "encode() matches");
        let c = t.clone();
        assert_eq!(c.encoded(), t.encoded(), "clones agree on the encoding");
        let shared = {
            let mut b = TransactionBuilder::new(ts(100, 1));
            b.record_read(Key::new("x"), ts(50, 2));
            b.record_write(Key::new("y"), Value::from_u64(7));
            b.build_shared()
        };
        assert_eq!(shared.encoded(), t.encoded());
        assert_eq!(shared.id(), t.id());
    }

    #[test]
    fn id_depends_on_dependencies() {
        let mut b = TransactionBuilder::new(ts(100, 1));
        b.record_dependent_read(Key::new("x"), ts(50, 2), TxId::from_bytes([9; 32]));
        let with_dep = b.build();

        let mut b2 = TransactionBuilder::new(ts(100, 1));
        b2.record_read(Key::new("x"), ts(50, 2));
        let without_dep = b2.build();

        assert_ne!(with_dep.id(), without_dep.id());
        assert_eq!(with_dep.deps.len(), 1);
        assert_eq!(with_dep.read_set.len(), 1);
    }

    #[test]
    fn builder_read_your_writes_and_overwrite() {
        let mut b = TransactionBuilder::new(ts(10, 1));
        b.record_write(Key::new("k"), Value::from_u64(1));
        assert_eq!(b.buffered_value(&Key::new("k")), Some(&Value::from_u64(1)));
        b.record_write(Key::new("k"), Value::from_u64(2));
        let t = b.build();
        assert_eq!(t.write_set.len(), 1);
        assert_eq!(t.written_value(&Key::new("k")), Some(&Value::from_u64(2)));
    }

    #[test]
    fn max_read_version_is_frozen_at_build() {
        let mut b = TransactionBuilder::new(ts(100, 1));
        b.record_read(Key::new("x"), ts(50, 2));
        b.record_read(Key::new("y"), ts(70, 3));
        b.record_read(Key::new("z"), ts(10, 1));
        let t = b.build();
        assert_eq!(t.max_read_version(), ts(70, 3));

        let empty = TransactionBuilder::new(ts(1, 1)).build();
        assert_eq!(empty.max_read_version(), Timestamp::ZERO);
    }

    #[test]
    fn accessors() {
        let t = sample_tx();
        assert!(t.reads(&Key::new("x")));
        assert!(!t.reads(&Key::new("y")));
        assert!(t.writes(&Key::new("y")));
        assert!(!t.writes(&Key::new("x")));
        assert_eq!(t.read_version(&Key::new("x")), Some(ts(50, 2)));
        assert_eq!(t.read_version(&Key::new("y")), None);
        assert!(!t.is_empty());
        assert!(TransactionBuilder::new(ts(1, 1)).build().is_empty());
    }

    #[test]
    fn involved_shards_covers_reads_and_writes() {
        let cfg = SystemConfig::sharded(3);
        let mut b = TransactionBuilder::new(ts(10, 1));
        // Touch enough keys that more than one shard is involved.
        for i in 0..20 {
            b.record_write(Key::new(format!("w{i}")), Value::from_u64(i));
            b.record_read(Key::new(format!("r{i}")), Timestamp::ZERO);
        }
        let t = b.build();
        let shards = t.involved_shards(&cfg);
        assert!(
            shards.len() >= 2,
            "expected multiple shards, got {shards:?}"
        );
        assert!(shards.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for s in &shards {
            assert!(s.0 < 3);
        }
    }

    #[test]
    fn decode_round_trips_and_preserves_the_id() {
        let mut b = TransactionBuilder::new(ts(100, 1));
        b.record_read(Key::new("x"), ts(50, 2));
        b.record_dependent_read(Key::new("dep"), ts(60, 3), TxId::from_bytes([5; 32]));
        b.record_write(Key::new("y"), Value::from_u64(7));
        b.record_write(Key::new("empty"), Value::new(b""));
        let original = b.build();

        let decoded = Transaction::decode(original.encoded()).expect("canonical bytes decode");
        assert_eq!(decoded, original);
        assert_eq!(decoded.encoded(), original.encoded());
        assert_eq!(decoded.id(), original.id());
        assert_eq!(decoded.max_read_version(), ts(60, 3));
        assert_eq!(decoded.deps().len(), 1);

        let empty = TransactionBuilder::new(ts(1, 9)).build();
        let decoded_empty = Transaction::decode(empty.encoded()).expect("empty tx decodes");
        assert_eq!(decoded_empty.id(), empty.id());
        assert_eq!(decoded_empty.max_read_version(), Timestamp::ZERO);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let encoded = sample_tx().encode();
        for cut in 0..encoded.len() {
            assert!(
                Transaction::decode(&encoded[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(Transaction::decode(&padded).is_none(), "trailing byte");
        assert!(Transaction::decode(&encoded).is_some());
    }

    #[test]
    fn encoding_is_prefix_free_between_fields() {
        // Moving a byte between key and value must change the encoding.
        let mut b1 = TransactionBuilder::new(ts(1, 1));
        b1.record_write(Key::new("ab"), Value::new(b"c"));
        let mut b2 = TransactionBuilder::new(ts(1, 1));
        b2.record_write(Key::new("a"), Value::new(b"bc"));
        assert_ne!(b1.build().encode(), b2.build().encode());
    }
}
