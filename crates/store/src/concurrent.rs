//! A sharded, internally synchronized MVTSO store for multicore replicas.
//!
//! [`crate::mvtso::MvtsoStore`] is single-threaded by construction: one
//! `&mut self` caller at a time. That is exactly right for the simulator
//! (determinism) but wastes a real multicore host — PR 5 shards *actors*
//! across threads, yet every prepare/commit on one replica still runs
//! sequentially. [`ConcurrentMvtsoStore`] re-lays the flat `KeyRecord`
//! arena as `N` independent **key shards** (`shard = fasthash(key) % N`) so
//! independent transactions touch disjoint locks, and mirrors the serial
//! store's exact per-key watermark screen in **atomics** so the common
//! no-conflict prepare stays two integer compares — now lock-free.
//!
//! # Layout
//!
//! * Each `Shard` owns a `Mutex<ShardState>` (the authoritative per-key
//!   records of the keys that hash there) plus an `RwLock` index of
//!   `KeyAtomics` — per-key `max_write`/`max_read` watermark mirrors and a
//!   generation counter, readable without any lock.
//! * One global `Mutex<TxTable>` holds the per-transaction state
//!   (prepared/committed metadata, decisions, the dependency wait graph,
//!   and the GC floor). Votes publish atomically per `TxId` under it.
//!
//! # The lock-free watermark screen
//!
//! Every record mutation (all of which happen under the owning shard lock)
//! updates the watermark atomic **first** and bumps `generation` **last**.
//! The screen loads `generation`, then the watermark, with no locks held.
//! Later, under the shard lock, the hint is trusted only if the record's
//! generation still equals the screened one: since mutations complete under
//! the shard lock and always end with a generation bump, an equal
//! generation proves no mutation intervened and the screened watermark is
//! the record's current, exact value. A mismatch falls back to the serial
//! store's exact check — the screen is an optimization, never an oracle.
//!
//! `Timestamp` is a `(time, client)` pair and does not fit one `AtomicU64`,
//! so the mirrors hold only the `time` component and the screen passes only
//! on a *strict* `time` comparison — a conservative subset of the serial
//! fast path, never a superset.
//!
//! # Lock ordering (deadlock freedom)
//!
//! Shard locks are always acquired in ascending shard index, then the
//! transaction table, then (innermost) the optional test op-log. The
//! `KeyAtomics` index `RwLock` is a leaf: writers take it inside a shard
//! lock; the screen reads it with no other lock held. Specifically:
//!
//! * `prepare`/`commit` lock exactly the transaction's key shards
//!   (ascending), so same-`TxId` operations are mutually exclusive for
//!   free — they contend on the same first shard.
//! * `abort` and `gc_before` are **stop-the-world**: they take every shard
//!   lock. An abort's key set is unknowable from the `TxId` alone (and an
//!   abort wake must un-index *waiters'* records in arbitrary shards); a
//!   GC sweep must not move the abort floor under a concurrent prepare's
//!   feet. Both are rare, cold-path events.
//!
//! # Equivalence
//!
//! The store is linearizable, and every completed operation is equivalent
//! to the serial [`crate::MvtsoStore`] running the same operations in
//! linearization order. The optional op log records each operation inside
//! its deciding critical section; the multi-threaded property test replays
//! the log on a serial store and demands identical outcomes, released
//! votes, decisions, and final committed state (see the test module).

use crate::mvtso::{
    CheckOutcome, CommittedVersion, Decision, PreparedVersion, ReadResult, StoreStats, Vote,
};
use crate::tx::Transaction;
use crate::txstore::TxStore;
use crate::varray::{ReaderSummary, VersionArray};
use basil_common::error::AbortReason;
use basil_common::{
    Duration, FastHashMap, FastHashSet, FxHasher, Key, SimTime, Timestamp, TxId, Value,
};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Panic message for poisoned locks: a panic inside a store operation has
/// already lost the replica's state machine; propagating is the only honest
/// option.
const POISONED: &str = "concurrent store lock poisoned by a panicked operation";

/// Per-key watermark mirrors readable without the shard lock.
///
/// Only the `time` component of each watermark is mirrored (a full
/// [`Timestamp`] does not fit an `AtomicU64`); see the module docs for the
/// strict-comparison consequence. Entries are interned once per key and
/// never removed, so `generation` is monotonic over the store's lifetime —
/// a released-and-reinterned record can never replay an old generation
/// value and validate a stale screen.
#[derive(Debug, Default)]
struct KeyAtomics {
    /// `time` of the record's `max_write` watermark.
    max_write_time: AtomicU64,
    /// `time` of the record's `max_read` watermark.
    max_read_time: AtomicU64,
    /// Mutation counter; bumped (last) by every record mutation.
    generation: AtomicU64,
}

/// A lock-free screening verdict for one key of a prepare.
#[derive(Clone, Copy, Debug)]
enum Hint {
    /// The watermark proved the fast path *if* the record's generation
    /// still matches under the shard lock.
    PassAtGen(u64),
    /// No conclusion; run the exact check under the shard lock.
    NoHint,
}

/// All concurrency-control state of one key (the concurrent counterpart of
/// the serial store's `KeyRecord`).
///
/// `prepared` carries the writing transaction's `Arc` alongside its id so
/// versioned reads build their [`PreparedVersion`] reply entirely under the
/// shard lock, without consulting the global transaction table.
#[derive(Debug)]
struct CRecord {
    /// Committed versions, sorted by writer timestamp.
    committed: VersionArray<(TxId, Value)>,
    /// Prepared (visible, uncommitted) writes, with writer metadata.
    prepared: VersionArray<(TxId, Arc<Transaction>)>,
    /// Reads of committed transactions: reader timestamp -> version read.
    committed_reads: VersionArray<Timestamp>,
    /// Reads of prepared transactions: reader timestamp -> version read.
    prepared_reads: VersionArray<Timestamp>,
    /// Read timestamps left by execution-phase reads (set semantics).
    rts: VersionArray<()>,
    /// Largest committed-or-prepared write timestamp present (exact).
    max_write: Timestamp,
    /// Largest read timestamp present (exact).
    max_read: Timestamp,
    /// Bloom-style cover of reader intervals (see the serial store).
    reader_summary: ReaderSummary,
    /// The key's lock-free mirror, shared with the shard's atomics index.
    atomics: Arc<KeyAtomics>,
}

impl CRecord {
    fn new(atomics: Arc<KeyAtomics>) -> Self {
        CRecord {
            committed: VersionArray::new(),
            prepared: VersionArray::new(),
            committed_reads: VersionArray::new(),
            prepared_reads: VersionArray::new(),
            rts: VersionArray::new(),
            max_write: Timestamp::ZERO,
            max_read: Timestamp::ZERO,
            reader_summary: ReaderSummary::new(),
            atomics,
        }
    }

    /// Bumps the generation mirror. Always the *last* step of a mutation
    /// (module docs: watermark first, generation last).
    fn bump_gen(&self) {
        self.atomics.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a write at `ts` into the watermarks, then bumps.
    fn note_write(&mut self, ts: Timestamp) {
        if ts > self.max_write {
            self.max_write = ts;
        }
        self.atomics
            .max_write_time
            .fetch_max(ts.time, Ordering::SeqCst);
        self.bump_gen();
    }

    /// Records a read at `ts` into the watermarks, then bumps.
    fn note_read(&mut self, ts: Timestamp) {
        if ts > self.max_read {
            self.max_read = ts;
        }
        self.atomics
            .max_read_time
            .fetch_max(ts.time, Ordering::SeqCst);
        self.bump_gen();
    }

    /// Recomputes the write watermark after a removal that may have lowered
    /// it, refreshing the mirror. The caller bumps the generation after the
    /// rest of its mutation.
    fn refresh_write_watermark(&mut self) {
        self.max_write = self
            .committed
            .max_ts()
            .into_iter()
            .chain(self.prepared.max_ts())
            .max()
            .unwrap_or(Timestamp::ZERO);
        self.atomics
            .max_write_time
            .store(self.max_write.time, Ordering::SeqCst);
    }

    /// Recomputes the read watermark after a removal (see
    /// [`CRecord::refresh_write_watermark`]).
    fn refresh_read_watermark(&mut self) {
        self.max_read = self
            .committed_reads
            .max_ts()
            .into_iter()
            .chain(self.prepared_reads.max_ts())
            .chain(self.rts.max_ts())
            .max()
            .unwrap_or(Timestamp::ZERO);
        self.atomics
            .max_read_time
            .store(self.max_read.time, Ordering::SeqCst);
    }

    /// Records a read of `version` performed at `reader` in the summary.
    fn cover_read(&mut self, version: Timestamp, reader: Timestamp) {
        self.reader_summary.cover(version, reader);
    }

    /// Recomputes the reader summary from the surviving reader entries
    /// (Bloom bits are never cleared incrementally; GC calls this).
    fn rebuild_reader_summary(&mut self) {
        self.reader_summary.clear();
        for (reader, version) in self
            .committed_reads
            .iter()
            .chain(self.prepared_reads.iter())
        {
            self.reader_summary.cover(*version, *reader);
        }
    }

    /// True when every index is empty: the record can be dropped.
    fn is_unused(&self) -> bool {
        self.committed.is_empty()
            && self.prepared.is_empty()
            && self.committed_reads.is_empty()
            && self.prepared_reads.is_empty()
            && self.rts.is_empty()
    }
}

/// The lock-guarded authoritative state of one key shard.
#[derive(Debug, Default)]
struct ShardState {
    records: FastHashMap<Key, CRecord>,
}

/// One key shard: the record map behind its mutex, plus the lock-free
/// watermark index.
#[derive(Debug, Default)]
struct Shard {
    /// Per-key watermark mirrors; read by the screen with no lock held,
    /// written under `state`'s mutex (interning takes the write lock).
    atomics: RwLock<FastHashMap<Key, Arc<KeyAtomics>>>,
    /// The authoritative records.
    state: Mutex<ShardState>,
}

/// Global per-transaction state (the serial store's `TxId`-keyed maps).
#[derive(Debug, Default)]
struct TxTable {
    committed_txs: FastHashMap<TxId, Arc<Transaction>>,
    prepared_txs: FastHashMap<TxId, Arc<Transaction>>,
    decisions: FastHashMap<TxId, Decision>,
    aborted: FastHashSet<TxId>,
    pending: FastHashMap<TxId, FastHashSet<TxId>>,
    waiters: FastHashMap<TxId, Vec<TxId>>,
    gc_watermark: Timestamp,
}

/// Fast-path counters, shared across executors.
#[derive(Debug, Default)]
struct AtomicStats {
    prepares: AtomicU64,
    fast_path_checks: AtomicU64,
    slow_path_checks: AtomicU64,
    reader_scan_skips: AtomicU64,
}

/// One store operation, recorded inside its deciding critical section.
///
/// Test instrumentation for the multi-threaded equivalence harness: the log
/// order is a linearization of the concurrent execution (conflicting
/// operations always share a lock at their log points), so replaying it on
/// a serial [`crate::MvtsoStore`] must reproduce every outcome bit for bit.
#[derive(Clone, Debug)]
pub enum LoggedOp {
    /// A `prepare` call and its outcome.
    Prepare {
        /// The prepared transaction.
        tx: Arc<Transaction>,
        /// The replica clock passed to the check.
        clock: SimTime,
        /// The timestamp-bound window passed to the check.
        delta: Duration,
        /// The outcome the concurrent store returned.
        outcome: CheckOutcome,
    },
    /// A `commit` call and the deferred votes it released.
    Commit {
        /// The committed transaction.
        tx: Arc<Transaction>,
        /// Votes released by the decision.
        released: Vec<(TxId, Vote)>,
    },
    /// An `abort` call and the deferred votes it released.
    Abort {
        /// The aborted transaction.
        txid: TxId,
        /// Votes released by the decision.
        released: Vec<(TxId, Vote)>,
    },
    /// A versioned `read` and its reply.
    Read {
        /// The key read.
        key: Key,
        /// The reader timestamp.
        ts: Timestamp,
        /// The reply served.
        result: ReadResult,
    },
    /// An RTS removal.
    RemoveRts {
        /// The key whose RTS entry was removed.
        key: Key,
        /// The reader timestamp removed.
        ts: Timestamp,
    },
    /// A GC sweep.
    Gc {
        /// The sweep watermark.
        watermark: Timestamp,
    },
}

/// The sharded, internally synchronized MVTSO store (see module docs).
///
/// All operations take `&self`; the store is safe to share across executor
/// threads behind an `Arc` (see [`SharedStore`]). Semantics are equivalent
/// to the serial [`crate::MvtsoStore`] under any interleaving — property-tested by
/// the multi-threaded oracle harness in this module's tests.
pub struct ConcurrentMvtsoStore {
    shards: Box<[Shard]>,
    tx: Mutex<TxTable>,
    stats: AtomicStats,
    op_log: Option<Mutex<Vec<LoggedOp>>>,
}

impl std::fmt::Debug for ConcurrentMvtsoStore {
    /// Prints shape, not contents (records sit behind per-shard locks).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentMvtsoStore")
            .field("num_shards", &self.shards.len())
            .field("op_log", &self.op_log.is_some())
            .finish_non_exhaustive()
    }
}

/// A sorted set of shard guards held for one operation.
///
/// Guards are acquired in ascending shard index (the `ids` vector is sorted
/// and deduplicated), which is what makes cross-shard prepares deadlock
/// free.
struct ShardGuards<'a> {
    ids: Vec<usize>,
    guards: Vec<MutexGuard<'a, ShardState>>,
}

impl ShardGuards<'_> {
    /// The locked state of `shard`. Panics if the operation did not lock
    /// it — that would be a lock-ordering bug, not a runtime condition.
    fn state_mut(&mut self, shard: usize) -> &mut ShardState {
        let i = self
            .ids
            .binary_search(&shard)
            .expect("operation touched a shard it did not lock");
        &mut self.guards[i]
    }
}

impl ConcurrentMvtsoStore {
    /// Creates an empty store with `num_shards` key shards.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        ConcurrentMvtsoStore {
            shards: (0..num_shards).map(|_| Shard::default()).collect(),
            tx: Mutex::new(TxTable::default()),
            stats: AtomicStats::default(),
            op_log: None,
        }
    }

    /// Creates a store preloaded with genesis versions at
    /// [`Timestamp::ZERO`], sharded `num_shards` ways.
    pub fn with_initial_data(
        num_shards: usize,
        data: impl IntoIterator<Item = (Key, Value)>,
    ) -> Self {
        let store = Self::new(num_shards);
        for (key, value) in data {
            store.load_initial(key, value);
        }
        store
    }

    /// Enables the operation log (test instrumentation; see [`LoggedOp`]).
    pub fn with_op_log(mut self) -> Self {
        self.op_log = Some(Mutex::new(Vec::new()));
        self
    }

    /// Drains the operation log recorded so far (empty if logging is off).
    pub fn take_op_log(&self) -> Vec<LoggedOp> {
        self.op_log
            .as_ref()
            .map(|log| std::mem::take(&mut *log.lock().expect(POISONED)))
            .unwrap_or_default()
    }

    /// The number of key shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Loads one more genesis key (committed at [`Timestamp::ZERO`]).
    pub fn load_initial(&self, key: Key, value: Value) {
        let shard = self.shard_of(&key);
        let mut state = self.shards[shard].state.lock().expect(POISONED);
        let rec = self.intern_record(shard, &mut state, &key);
        rec.committed
            .insert(Timestamp::ZERO, (TxId::default(), value));
        rec.note_write(Timestamp::ZERO);
    }

    fn shard_of(&self, key: &Key) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// The sorted, deduplicated shard set of a transaction's key footprint.
    fn shard_set(&self, tx: &Transaction) -> Vec<usize> {
        let mut ids: Vec<usize> = tx
            .read_set()
            .iter()
            .map(|r| self.shard_of(&r.key))
            .chain(tx.write_set().iter().map(|w| self.shard_of(&w.key)))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Locks the given (sorted ascending) shard ids.
    fn lock_shards(&self, ids: &[usize]) -> ShardGuards<'_> {
        ShardGuards {
            ids: ids.to_vec(),
            guards: ids
                .iter()
                .map(|&i| self.shards[i].state.lock().expect(POISONED))
                .collect(),
        }
    }

    /// Locks every shard (stop-the-world operations: abort, GC).
    fn lock_all(&self) -> ShardGuards<'_> {
        ShardGuards {
            ids: (0..self.shards.len()).collect(),
            guards: self
                .shards
                .iter()
                .map(|s| s.state.lock().expect(POISONED))
                .collect(),
        }
    }

    /// The record of `key` in a locked shard, creating (or re-attaching to
    /// the key's persistent [`KeyAtomics`]) if absent.
    fn intern_record<'s>(
        &self,
        shard: usize,
        state: &'s mut ShardState,
        key: &Key,
    ) -> &'s mut CRecord {
        if !state.records.contains_key(key) {
            let atomics = {
                let mut index = self.shards[shard].atomics.write().expect(POISONED);
                Arc::clone(index.entry(key.clone()).or_default())
            };
            state.records.insert(key.clone(), CRecord::new(atomics));
        }
        state.records.get_mut(key).expect("just interned")
    }

    /// Drops a fully drained record. The key's [`KeyAtomics`] entry stays
    /// in the index forever (generation monotonicity — see the struct
    /// docs); its watermark mirrors reset to the absent-record state.
    fn release_record(&self, state: &mut ShardState, key: &Key) {
        if let Some(rec) = state.records.remove(key) {
            rec.atomics.max_write_time.store(0, Ordering::SeqCst);
            rec.atomics.max_read_time.store(0, Ordering::SeqCst);
            rec.atomics.generation.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Appends to the op log, if enabled. Must be called inside the
    /// operation's deciding critical section (see [`LoggedOp`]).
    fn log_op(&self, build: impl FnOnce() -> LoggedOp) {
        if let Some(log) = &self.op_log {
            log.lock().expect(POISONED).push(build());
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Serves a versioned read at `ts` and registers `ts` in the key's RTS
    /// set (the serial store's [`crate::MvtsoStore::read`], under one shard lock).
    pub fn read(&self, key: &Key, ts: Timestamp) -> ReadResult {
        let shard = self.shard_of(key);
        let mut state = self.shards[shard].state.lock().expect(POISONED);
        let rec = self.intern_record(shard, &mut state, key);
        rec.rts.insert(ts, ());
        rec.note_read(ts);
        let result = Self::read_from_record(Some(rec), key, ts);
        self.log_op(|| LoggedOp::Read {
            key: key.clone(),
            ts,
            result: result.clone(),
        });
        result
    }

    /// Serves a versioned read without registering an RTS. Not part of the
    /// logged operation surface (callers re-serving a retried read already
    /// registered the RTS through [`ConcurrentMvtsoStore::read`]).
    pub fn read_without_rts(&self, key: &Key, ts: Timestamp) -> ReadResult {
        let shard = self.shard_of(key);
        let state = self.shards[shard].state.lock().expect(POISONED);
        Self::read_from_record(state.records.get(key), key, ts)
    }

    fn read_from_record(rec: Option<&CRecord>, key: &Key, ts: Timestamp) -> ReadResult {
        let Some(rec) = rec else {
            return ReadResult::default();
        };
        let committed = rec
            .committed
            .latest_before(ts)
            .map(|(version, (txid, value))| CommittedVersion {
                version: *version,
                value: value.clone(),
                txid: *txid,
            });
        let prepared =
            rec.prepared
                .latest_before(ts)
                .map(|(version, (txid, tx))| PreparedVersion {
                    version: *version,
                    value: tx.written_value(key).cloned().unwrap_or_else(Value::empty),
                    txid: *txid,
                    deps: tx.deps().to_vec(),
                });
        ReadResult {
            committed,
            prepared,
        }
    }

    /// Removes a read timestamp previously registered by
    /// [`ConcurrentMvtsoStore::read`].
    pub fn remove_rts(&self, key: &Key, ts: Timestamp) {
        let shard = self.shard_of(key);
        let mut state = self.shards[shard].state.lock().expect(POISONED);
        if let Some(rec) = state.records.get_mut(key) {
            if rec.rts.remove(ts).is_some() {
                if ts == rec.max_read {
                    rec.refresh_read_watermark();
                }
                rec.bump_gen();
                if rec.is_unused() {
                    self.release_record(&mut state, key);
                }
            }
        }
        self.log_op(|| LoggedOp::RemoveRts {
            key: key.clone(),
            ts,
        });
    }

    /// The newest committed value of a key (inspection).
    pub fn latest_committed(&self, key: &Key) -> Option<(Timestamp, Value)> {
        let shard = self.shard_of(key);
        let state = self.shards[shard].state.lock().expect(POISONED);
        state
            .records
            .get(key)
            .and_then(|rec| rec.committed.last())
            .map(|(ts, (_, value))| (*ts, value.clone()))
    }

    // ------------------------------------------------------------------
    // The lock-free screen
    // ------------------------------------------------------------------

    fn screen_read(&self, key: &Key, version: Timestamp) -> Hint {
        let shard = &self.shards[self.shard_of(key)];
        let index = shard.atomics.read().expect(POISONED);
        match index.get(key) {
            Some(a) => {
                // Generation first, watermark second: the hint is used only
                // if the generation is unchanged under the shard lock,
                // which proves the watermark load saw the current value.
                let g = a.generation.load(Ordering::SeqCst);
                if a.max_write_time.load(Ordering::SeqCst) < version.time {
                    Hint::PassAtGen(g)
                } else {
                    Hint::NoHint
                }
            }
            None => Hint::NoHint,
        }
    }

    fn screen_write(&self, key: &Key, ts: Timestamp) -> Hint {
        let shard = &self.shards[self.shard_of(key)];
        let index = shard.atomics.read().expect(POISONED);
        match index.get(key) {
            Some(a) => {
                let g = a.generation.load(Ordering::SeqCst);
                if a.max_read_time.load(Ordering::SeqCst) < ts.time {
                    Hint::PassAtGen(g)
                } else {
                    Hint::NoHint
                }
            }
            None => Hint::NoHint,
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1: the concurrency-control check
    // ------------------------------------------------------------------

    /// Runs the MVTSO concurrency-control check for `tx` (the serial
    /// store's [`crate::MvtsoStore::prepare`], safe for concurrent callers).
    ///
    /// Pipeline: lock-free watermark screen → lock the transaction's key
    /// shards in ascending index order → transaction-level checks under the
    /// `TxTable` lock → per-key checks under the shard locks only → publish
    /// the vote atomically under the `TxTable` lock → index the prepared
    /// read/write sets (shard locks still held, so the published entry and
    /// its visibility appear atomic to every other key-touching operation).
    pub fn prepare(
        &self,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> CheckOutcome {
        let shard_ids = self.shard_set(tx);
        if shard_ids.is_empty() {
            // A keyless transaction: the whole check is transaction-table
            // state; one critical section keeps duplicate deliveries from
            // double-publishing.
            let mut t = self.tx.lock().expect(POISONED);
            let outcome = match self.precheck(&mut t, tx, local_clock, delta) {
                Some(outcome) => outcome,
                None => Self::publish(&mut t, tx),
            };
            self.log_op(|| LoggedOp::Prepare {
                tx: Arc::clone(tx),
                clock: local_clock,
                delta,
                outcome: outcome.clone(),
            });
            return outcome;
        }

        // Screen before any lock: on the no-conflict fast path the per-key
        // verdicts below become two atomic loads each.
        let read_hints: Vec<Hint> = tx
            .read_set()
            .iter()
            .map(|r| self.screen_read(&r.key, r.version))
            .collect();
        let write_hints: Vec<Hint> = tx
            .write_set()
            .iter()
            .map(|w| self.screen_write(&w.key, tx.timestamp()))
            .collect();

        let mut guards = self.lock_shards(&shard_ids);

        {
            let mut t = self.tx.lock().expect(POISONED);
            if let Some(outcome) = self.precheck(&mut t, tx, local_clock, delta) {
                self.log_op(|| LoggedOp::Prepare {
                    tx: Arc::clone(tx),
                    clock: local_clock,
                    delta,
                    outcome: outcome.clone(),
                });
                return outcome;
            }
        }

        // Per-key conflict checks: shard locks only — concurrent prepares
        // on disjoint shards proceed in parallel here.
        let conflict = self.any_key_conflict(&mut guards, tx, &read_hints, &write_hints);

        let mut t = self.tx.lock().expect(POISONED);
        let outcome = if conflict {
            // Between the precheck and here, dependencies may have gained
            // decisions (their key shards are disjoint from ours, so their
            // commits were not blocked by our guards). The serial store
            // runs the dependency checks *before* the key checks, so a
            // dependency-level abort reason must win over `Conflict` for
            // the log replay to agree.
            CheckOutcome::Decided(Vote::Abort(
                self.tx_level_abort(&t, tx, local_clock, delta)
                    .unwrap_or(AbortReason::Conflict),
            ))
        } else if let Some(reason) = self.tx_level_abort(&t, tx, local_clock, delta) {
            CheckOutcome::Decided(Vote::Abort(reason))
        } else {
            Self::publish(&mut t, tx)
        };
        self.log_op(|| LoggedOp::Prepare {
            tx: Arc::clone(tx),
            clock: local_clock,
            delta,
            outcome: outcome.clone(),
        });
        drop(t);

        // Index the prepared read/write sets while the shard guards are
        // still held: no other operation can observe the published
        // transaction-table entry without also waiting on one of these
        // shards, so publication and visibility are atomic together.
        if matches!(
            outcome,
            CheckOutcome::Pending { .. } | CheckOutcome::Decided(Vote::Commit)
        ) {
            self.index_prepared(&mut guards, tx);
        }
        outcome
    }

    /// The duplicate-delivery memo and transaction-level checks, under the
    /// `TxTable` lock. `None` means "proceed to the per-key checks".
    fn precheck(
        &self,
        t: &mut TxTable,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> Option<CheckOutcome> {
        let txid = tx.id();
        if let Some(decision) = t.decisions.get(&txid) {
            return Some(CheckOutcome::Decided(match decision {
                Decision::Commit => Vote::Commit,
                Decision::Abort => Vote::Abort(AbortReason::Conflict),
            }));
        }
        if let Some(missing) = t.pending.get(&txid) {
            return Some(CheckOutcome::Pending {
                waiting_on: missing.iter().copied().collect(),
            });
        }
        if t.prepared_txs.contains_key(&txid) {
            return Some(CheckOutcome::Decided(Vote::Commit));
        }
        self.stats.prepares.fetch_add(1, Ordering::Relaxed);
        self.tx_level_abort(t, tx, local_clock, delta)
            .map(|reason| CheckOutcome::Decided(Vote::Abort(reason)))
    }

    /// Checks (1)–(3) of the serial prepare: timestamp bound, GC floor,
    /// dependency validity, read-from-the-future misbehaviour. Pure reads
    /// of the transaction table; no counters, so the conflict path may
    /// re-run it.
    fn tx_level_abort(
        &self,
        t: &TxTable,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> Option<AbortReason> {
        if tx.timestamp().exceeds_bound(local_clock, delta) {
            return Some(AbortReason::TimestampOutOfBounds);
        }
        if t.gc_watermark > Timestamp::ZERO && tx.timestamp() <= t.gc_watermark {
            return Some(AbortReason::TimestampOutOfBounds);
        }
        for dep in tx.deps() {
            let known = t
                .prepared_txs
                .get(&dep.txid)
                .or_else(|| t.committed_txs.get(&dep.txid));
            if let Some(dep_tx) = known {
                let produced = dep_tx.writes(&dep.key) && dep_tx.timestamp() == dep.version;
                if !produced {
                    return Some(AbortReason::InvalidDependency);
                }
            } else if t.aborted.contains(&dep.txid) {
                return Some(AbortReason::DependencyAborted);
            }
        }
        if tx.max_read_version() > tx.timestamp() {
            return Some(AbortReason::Misbehavior);
        }
        None
    }

    /// Checks (4)–(6) of the serial prepare against the locked shards,
    /// consuming the screen hints. Returns true on the first conflict, in
    /// the serial store's check order (reads, then writes).
    fn any_key_conflict(
        &self,
        guards: &mut ShardGuards<'_>,
        tx: &Transaction,
        read_hints: &[Hint],
        write_hints: &[Hint],
    ) -> bool {
        let ts = tx.timestamp();
        for (read, hint) in tx.read_set().iter().zip(read_hints) {
            let shard = self.shard_of(&read.key);
            let rec = guards.state_mut(shard).records.get(&read.key);
            if self.read_check_conflicts(rec, *hint, read.version, ts) {
                return true;
            }
        }
        for (write, hint) in tx.write_set().iter().zip(write_hints) {
            let shard = self.shard_of(&write.key);
            let rec = guards.state_mut(shard).records.get(&write.key);
            if self.write_check_conflicts(rec, *hint, ts) {
                return true;
            }
        }
        false
    }

    /// Check (4): did this read miss a committed or prepared write?
    fn read_check_conflicts(
        &self,
        rec: Option<&CRecord>,
        hint: Hint,
        version: Timestamp,
        ts: Timestamp,
    ) -> bool {
        let Some(rec) = rec else {
            self.stats.fast_path_checks.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        if let Hint::PassAtGen(g) = hint {
            if rec.atomics.generation.load(Ordering::SeqCst) == g {
                // Unchanged generation under the lock: the screened
                // `max_write.time < version.time` is current, which implies
                // the serial fast path (`max_write <= version`) passes.
                self.stats.fast_path_checks.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        if rec.max_write > version {
            self.stats.slow_path_checks.fetch_add(1, Ordering::Relaxed);
            rec.committed.any_in_open_range(version, ts)
                || rec.prepared.any_in_open_range(version, ts)
        } else {
            self.stats.fast_path_checks.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Checks (5)+(6): does this write invalidate a reader or an RTS?
    fn write_check_conflicts(&self, rec: Option<&CRecord>, hint: Hint, ts: Timestamp) -> bool {
        let Some(rec) = rec else {
            self.stats.fast_path_checks.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        if let Hint::PassAtGen(g) = hint {
            if rec.atomics.generation.load(Ordering::SeqCst) == g {
                self.stats.fast_path_checks.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        if rec.max_read > ts {
            self.stats.slow_path_checks.fetch_add(1, Ordering::Relaxed);
            if rec.reader_summary.may_invalidate(ts) {
                let invalidates = |reads: &VersionArray<Timestamp>| {
                    reads
                        .iter_above(ts)
                        .any(|(_, version_read)| *version_read < ts)
                };
                if invalidates(&rec.committed_reads) || invalidates(&rec.prepared_reads) {
                    return true;
                }
            } else {
                self.stats.reader_scan_skips.fetch_add(1, Ordering::Relaxed);
            }
            rec.rts.max_ts().map(|m| m > ts).unwrap_or(false)
        } else {
            self.stats.fast_path_checks.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Step (8): publishes the vote in the transaction table. The caller
    /// indexes the read/write sets afterwards iff the transaction was
    /// added to the prepared set (`Pending` or `Decided(Commit)`).
    fn publish(t: &mut TxTable, tx: &Arc<Transaction>) -> CheckOutcome {
        let txid = tx.id();
        let mut missing: FastHashSet<TxId> = FastHashSet::default();
        for dep in tx.deps() {
            match t.decisions.get(&dep.txid) {
                Some(Decision::Commit) => {}
                Some(Decision::Abort) => {
                    // A dependency already aborted: the serial store inserts
                    // and immediately withdraws; net effect is no prepare.
                    return CheckOutcome::Decided(Vote::Abort(AbortReason::DependencyAborted));
                }
                None => {
                    missing.insert(dep.txid);
                }
            }
        }
        t.prepared_txs.insert(txid, Arc::clone(tx));
        if missing.is_empty() {
            return CheckOutcome::Decided(Vote::Commit);
        }
        for dep in &missing {
            t.waiters.entry(*dep).or_default().push(txid);
        }
        let waiting_on: Vec<TxId> = missing.iter().copied().collect();
        t.pending.insert(txid, missing);
        CheckOutcome::Pending { waiting_on }
    }

    /// Step (7): makes the prepared transaction visible to reads. Shard
    /// guards for every touched key must be held.
    fn index_prepared(&self, guards: &mut ShardGuards<'_>, tx: &Arc<Transaction>) {
        let txid = tx.id();
        let ts = tx.timestamp();
        for write in tx.write_set() {
            let shard = self.shard_of(&write.key);
            let state = guards.state_mut(shard);
            let rec = self.intern_record(shard, state, &write.key);
            rec.prepared.insert(ts, (txid, Arc::clone(tx)));
            rec.note_write(ts);
        }
        for read in tx.read_set() {
            let shard = self.shard_of(&read.key);
            let state = guards.state_mut(shard);
            let rec = self.intern_record(shard, state, &read.key);
            rec.prepared_reads.insert(ts, read.version);
            rec.cover_read(read.version, ts);
            rec.note_read(ts);
        }
    }

    /// Removes a prepared transaction from the visibility indexes. The
    /// caller must hold shard guards covering the transaction's key set.
    fn unindex_prepared(
        &self,
        t: &mut TxTable,
        guards: &mut ShardGuards<'_>,
        txid: &TxId,
    ) -> Option<Arc<Transaction>> {
        let tx = t.prepared_txs.remove(txid)?;
        let ts = tx.timestamp();
        for write in tx.write_set() {
            let shard = self.shard_of(&write.key);
            if let Some(rec) = guards.state_mut(shard).records.get_mut(&write.key) {
                if rec.prepared.remove(ts).is_some() {
                    if ts == rec.max_write {
                        rec.refresh_write_watermark();
                    }
                    rec.bump_gen();
                }
            }
        }
        for read in tx.read_set() {
            let shard = self.shard_of(&read.key);
            if let Some(rec) = guards.state_mut(shard).records.get_mut(&read.key) {
                if rec.prepared_reads.remove(ts).is_some() {
                    if ts == rec.max_read {
                        rec.refresh_read_watermark();
                    }
                    rec.bump_gen();
                }
            }
        }
        Some(tx)
    }

    // ------------------------------------------------------------------
    // Decisions
    // ------------------------------------------------------------------

    /// Applies a commit decision (the serial store's [`crate::MvtsoStore::commit`]).
    /// Locks the transaction's key shards plus the transaction table; a
    /// commit releases waiters without touching their records, so no other
    /// shard is needed.
    pub fn commit(&self, tx: &Arc<Transaction>) -> Vec<(TxId, Vote)> {
        let txid = tx.id();
        let shard_ids = self.shard_set(tx);
        let mut guards = self.lock_shards(&shard_ids);
        let mut t = self.tx.lock().expect(POISONED);
        if matches!(t.decisions.get(&txid), Some(Decision::Commit)) {
            self.log_op(|| LoggedOp::Commit {
                tx: Arc::clone(tx),
                released: Vec::new(),
            });
            return Vec::new();
        }
        let shared = t
            .prepared_txs
            .remove(&txid)
            .unwrap_or_else(|| Arc::clone(tx));
        t.pending.remove(&txid);
        t.decisions.insert(txid, Decision::Commit);

        let ts = tx.timestamp();
        for write in tx.write_set() {
            let shard = self.shard_of(&write.key);
            let state = guards.state_mut(shard);
            let rec = self.intern_record(shard, state, &write.key);
            if rec.prepared.remove(ts).is_some() {
                if ts == rec.max_write {
                    rec.refresh_write_watermark();
                }
                rec.bump_gen();
            }
            rec.committed.insert(ts, (txid, write.value.clone()));
            rec.note_write(ts);
        }
        for read in tx.read_set() {
            let shard = self.shard_of(&read.key);
            let state = guards.state_mut(shard);
            let rec = self.intern_record(shard, state, &read.key);
            if rec.prepared_reads.remove(ts).is_some() {
                if ts == rec.max_read {
                    rec.refresh_read_watermark();
                }
                rec.bump_gen();
            }
            rec.committed_reads.insert(ts, read.version);
            rec.cover_read(read.version, ts);
            rec.note_read(ts);
        }
        t.committed_txs.insert(txid, shared);

        let released = Self::wake_commit(&mut t, txid);
        self.log_op(|| LoggedOp::Commit {
            tx: Arc::clone(tx),
            released: released.clone(),
        });
        released
    }

    /// Applies an abort decision (the serial store's [`crate::MvtsoStore::abort`]).
    ///
    /// Stop-the-world: the key set is unknowable from the `TxId`, and the
    /// abort wake must un-index released waiters' records in arbitrary
    /// shards, so every shard lock is taken (ascending).
    pub fn abort(&self, txid: TxId) -> Vec<(TxId, Vote)> {
        let mut guards = self.lock_all();
        let mut t = self.tx.lock().expect(POISONED);
        if matches!(t.decisions.get(&txid), Some(Decision::Abort)) {
            self.log_op(|| LoggedOp::Abort {
                txid,
                released: Vec::new(),
            });
            return Vec::new();
        }
        self.unindex_prepared(&mut t, &mut guards, &txid);
        t.pending.remove(&txid);
        t.decisions.insert(txid, Decision::Abort);
        t.aborted.insert(txid);
        let released = self.wake_abort(&mut t, &mut guards, txid);
        self.log_op(|| LoggedOp::Abort {
            txid,
            released: released.clone(),
        });
        released
    }

    /// Releases waiters of a committed dependency (transaction-table only).
    fn wake_commit(t: &mut TxTable, resolved: TxId) -> Vec<(TxId, Vote)> {
        let mut released = Vec::new();
        let Some(waiters) = t.waiters.remove(&resolved) else {
            return released;
        };
        for waiter in waiters {
            let Some(missing) = t.pending.get_mut(&waiter) else {
                continue; // already resolved some other way
            };
            missing.remove(&resolved);
            if missing.is_empty() {
                t.pending.remove(&waiter);
                released.push((waiter, Vote::Commit));
            }
        }
        released
    }

    /// Releases waiters of an aborted dependency: each votes abort and is
    /// withdrawn from the prepared set (guards must cover all shards).
    fn wake_abort(
        &self,
        t: &mut TxTable,
        guards: &mut ShardGuards<'_>,
        resolved: TxId,
    ) -> Vec<(TxId, Vote)> {
        let mut released = Vec::new();
        let Some(waiters) = t.waiters.remove(&resolved) else {
            return released;
        };
        for waiter in waiters {
            if t.pending.remove(&waiter).is_none() {
                continue; // already resolved some other way
            }
            self.unindex_prepared(t, guards, &waiter);
            released.push((waiter, Vote::Abort(AbortReason::DependencyAborted)));
        }
        released
    }

    // ------------------------------------------------------------------
    // GC
    // ------------------------------------------------------------------

    /// Garbage-collects bookkeeping below `watermark` and raises the abort
    /// floor (the serial store's [`crate::MvtsoStore::gc_before`]).
    ///
    /// Stop-the-world: a prepare screens the floor under the transaction
    /// table lock and then trusts it while holding only its own shard
    /// locks; taking every shard here means the floor can never move under
    /// a prepare in flight.
    pub fn gc_before(&self, watermark: Timestamp) {
        let mut guards = self.lock_all();
        let mut t = self.tx.lock().expect(POISONED);
        t.gc_watermark = t.gc_watermark.max(watermark);
        for shard in 0..self.shards.len() {
            let state = guards.state_mut(shard);
            for rec in state.records.values_mut() {
                let mut dropped = 0;
                if let Some(keep_from) =
                    rec.committed.latest_at_or_below(watermark).map(|(t, _)| *t)
                {
                    dropped += rec.committed.drop_below(keep_from);
                }
                dropped += rec.committed_reads.drop_below(watermark);
                dropped += rec.rts.drop_below(watermark);
                if dropped > 0 {
                    rec.refresh_read_watermark();
                    rec.refresh_write_watermark();
                    rec.rebuild_reader_summary();
                    rec.bump_gen();
                }
            }
            let drained: Vec<Key> = state
                .records
                .iter()
                .filter(|(_, rec)| rec.is_unused())
                .map(|(key, _)| key.clone())
                .collect();
            for key in drained {
                self.release_record(state, &key);
            }
        }
        self.log_op(|| LoggedOp::Gc { watermark });
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The decision this replica knows for `txid`, if any.
    pub fn decision(&self, txid: &TxId) -> Option<Decision> {
        self.tx.lock().expect(POISONED).decisions.get(txid).copied()
    }

    /// Whether the transaction is currently prepared (visible, uncommitted).
    pub fn is_prepared(&self, txid: &TxId) -> bool {
        self.tx
            .lock()
            .expect(POISONED)
            .prepared_txs
            .contains_key(txid)
    }

    /// Whether the transaction's vote is withheld waiting on dependencies.
    pub fn is_pending(&self, txid: &TxId) -> bool {
        self.tx.lock().expect(POISONED).pending.contains_key(txid)
    }

    /// The prepared transaction's shared metadata, if present.
    pub fn prepared_tx_shared(&self, txid: &TxId) -> Option<Arc<Transaction>> {
        self.tx
            .lock()
            .expect(POISONED)
            .prepared_txs
            .get(txid)
            .cloned()
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> usize {
        self.tx.lock().expect(POISONED).committed_txs.len()
    }

    /// Number of currently prepared transactions.
    pub fn prepared_count(&self) -> usize {
        self.tx.lock().expect(POISONED).prepared_txs.len()
    }

    /// A snapshot of every committed transaction (`Arc` bumps, not copies;
    /// the real-IO harvest path uses this where the serial store's
    /// borrowing iterator cannot cross the lock).
    pub fn committed_snapshot(&self) -> Vec<Arc<Transaction>> {
        self.tx
            .lock()
            .expect(POISONED)
            .committed_txs
            .values()
            .cloned()
            .collect()
    }

    /// A snapshot of every final decision this replica knows.
    pub fn decisions_snapshot(&self) -> Vec<(TxId, Decision)> {
        self.tx
            .lock()
            .expect(POISONED)
            .decisions
            .iter()
            .map(|(txid, d)| (*txid, *d))
            .collect()
    }

    /// The GC abort floor (highest watermark any sweep has used).
    pub fn gc_floor(&self) -> Timestamp {
        self.tx.lock().expect(POISONED).gc_watermark
    }

    /// The scan-free fast-path counters, aggregated across executors.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            prepares: self.stats.prepares.load(Ordering::Relaxed),
            fast_path_checks: self.stats.fast_path_checks.load(Ordering::Relaxed),
            slow_path_checks: self.stats.slow_path_checks.load(Ordering::Relaxed),
            reader_scan_skips: self.stats.reader_scan_skips.load(Ordering::Relaxed),
        }
    }
}

/// Default shard count when the caller does not choose one (the `TxStore`
/// constructor has no shard parameter). 16 shards keep contention low for
/// any plausible executor pool while costing ~16 empty maps when idle.
pub const DEFAULT_SHARDS: usize = 16;

/// A cloneable, `Arc`-shared handle to a [`ConcurrentMvtsoStore`].
///
/// This is the [`TxStore`] implementation the executor-pool replica uses:
/// the replica owns one handle, each pool worker another, and the store's
/// internal synchronization makes the `&mut self` trait methods safe to
/// serve from any of them.
#[derive(Clone, Debug)]
pub struct SharedStore {
    inner: Arc<ConcurrentMvtsoStore>,
}

impl SharedStore {
    /// Wraps a configured store in a shareable handle.
    pub fn new(store: ConcurrentMvtsoStore) -> Self {
        SharedStore {
            inner: Arc::new(store),
        }
    }

    /// The underlying store.
    pub fn handle(&self) -> &Arc<ConcurrentMvtsoStore> {
        &self.inner
    }
}

impl TxStore for SharedStore {
    fn with_initial_data(data: impl IntoIterator<Item = (Key, Value)>) -> Self {
        SharedStore::new(ConcurrentMvtsoStore::with_initial_data(
            DEFAULT_SHARDS,
            data,
        ))
    }

    fn read(&mut self, key: &Key, ts: Timestamp) -> ReadResult {
        self.inner.read(key, ts)
    }

    fn remove_rts(&mut self, key: &Key, ts: Timestamp) {
        self.inner.remove_rts(key, ts)
    }

    fn prepare(
        &mut self,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> CheckOutcome {
        self.inner.prepare(tx, local_clock, delta)
    }

    fn commit(&mut self, tx: &Arc<Transaction>) -> Vec<(TxId, Vote)> {
        self.inner.commit(tx)
    }

    fn abort(&mut self, txid: TxId) -> Vec<(TxId, Vote)> {
        self.inner.abort(txid)
    }

    fn gc_before(&mut self, watermark: Timestamp) {
        self.inner.gc_before(watermark)
    }

    fn prepared_tx_shared(&self, txid: &TxId) -> Option<Arc<Transaction>> {
        self.inner.prepared_tx_shared(txid)
    }

    fn store_stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvtso::MvtsoStore;
    use crate::tx::TransactionBuilder;
    use basil_common::ClientId;
    use proptest::{prop_assert_eq, proptest, ProptestConfig, TestCaseResult};
    use std::sync::atomic::AtomicBool;

    const DELTA: Duration = Duration::from_millis(100);
    // Far enough ahead that the timestamp-bound check passes for every
    // timestamp the op generator can mint (they stay below 4 µs).
    const CLOCK: SimTime = SimTime::from_secs(4);
    const KEYS: [&str; 4] = ["a", "b", "c", "d"];

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t % 4_000, ClientId(c % 8))
    }

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    fn genesis() -> impl Iterator<Item = (Key, Value)> {
        KEYS.iter().map(|s| (k(s), v(0)))
    }

    fn blind_write(t: u64, c: u64, key: &str, val: u64) -> Arc<Transaction> {
        let mut b = TransactionBuilder::new(ts(t, c));
        b.record_write(k(key), v(val));
        b.build_shared()
    }

    // ------------------------------------------------------------------
    // Single-threaded behaviour (sanity before the oracle harness)
    // ------------------------------------------------------------------

    #[test]
    fn prepare_commit_roundtrip_across_shards() {
        let store = ConcurrentMvtsoStore::with_initial_data(4, genesis());
        let mut b = TransactionBuilder::new(ts(10, 1));
        b.record_read(k("a"), Timestamp::ZERO);
        b.record_write(k("b"), v(7));
        b.record_write(k("c"), v(8));
        let tx = b.build_shared();
        assert_eq!(
            store.prepare(&tx, CLOCK, DELTA),
            CheckOutcome::Decided(Vote::Commit)
        );
        assert!(store.is_prepared(&tx.id()));
        assert!(store.commit(&tx).is_empty());
        assert_eq!(store.latest_committed(&k("b")), Some((ts(10, 1), v(7))));
        assert_eq!(store.latest_committed(&k("c")), Some((ts(10, 1), v(8))));
        assert_eq!(store.decision(&tx.id()), Some(Decision::Commit));
        // Re-delivery hits the memo.
        assert_eq!(
            store.prepare(&tx, CLOCK, DELTA),
            CheckOutcome::Decided(Vote::Commit)
        );
    }

    #[test]
    fn stale_read_conflicts_and_abort_releases_waiters() {
        let store = ConcurrentMvtsoStore::with_initial_data(2, genesis());
        let w = blind_write(20, 1, "a", 1);
        assert_eq!(
            store.prepare(&w, CLOCK, DELTA),
            CheckOutcome::Decided(Vote::Commit)
        );
        // A dependent read of the prepared version defers its vote.
        let mut b = TransactionBuilder::new(ts(30, 2));
        b.record_dependent_read(k("a"), ts(20, 1), w.id());
        b.record_write(k("d"), v(3));
        let dependent = b.build_shared();
        assert_eq!(
            store.prepare(&dependent, CLOCK, DELTA),
            CheckOutcome::Pending {
                waiting_on: vec![w.id()]
            }
        );
        // A read that missed the prepared write conflicts.
        let mut b = TransactionBuilder::new(ts(40, 3));
        b.record_read(k("a"), Timestamp::ZERO);
        b.record_write(k("b"), v(4));
        let stale = b.build_shared();
        assert_eq!(
            store.prepare(&stale, CLOCK, DELTA),
            CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict))
        );
        // Aborting the dependency releases the dependent with an abort vote.
        let released = store.abort(w.id());
        assert_eq!(
            released,
            vec![(dependent.id(), Vote::Abort(AbortReason::DependencyAborted))]
        );
        assert!(!store.is_prepared(&dependent.id()));
    }

    #[test]
    fn gc_floor_refuses_backdated_prepares() {
        let store = ConcurrentMvtsoStore::with_initial_data(2, genesis());
        store.gc_before(ts(100, 0));
        assert_eq!(store.gc_floor(), ts(100, 0));
        let tx = blind_write(50, 1, "a", 9);
        assert_eq!(
            store.prepare(&tx, CLOCK, DELTA),
            CheckOutcome::Decided(Vote::Abort(AbortReason::TimestampOutOfBounds))
        );
    }

    // ------------------------------------------------------------------
    // Loom-style smoke: the atomic watermark screen under contention
    // ------------------------------------------------------------------

    /// Hand-rolled interleaving check of the screen protocol: one thread
    /// mutates a hot key through the public API (prepare/commit/abort at
    /// rising timestamps) while another screens lock-free and, whenever a
    /// hint validates (generation unchanged under the shard lock), asserts
    /// the exact fast-path condition the hint claims. Any violation of the
    /// "watermark first, generation last" protocol shows up here as a
    /// stale-pass assertion failure.
    #[test]
    fn atomic_watermark_screen_never_validates_stale() {
        let store = ConcurrentMvtsoStore::with_initial_data(2, genesis());
        let key = k("a");
        let stop = AtomicBool::new(false);
        let validated = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 1..1_500u64 {
                    let tx = blind_write(i * 2, 1, "a", i);
                    store.prepare(&tx, CLOCK, DELTA);
                    if i % 3 == 0 {
                        store.commit(&tx);
                    } else {
                        store.abort(tx.id());
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
            s.spawn(|| {
                let shard = store.shard_of(&key);
                let mut probe_t = 1u64;
                while !stop.load(Ordering::SeqCst) {
                    let probe = Timestamp::from_nanos(probe_t, ClientId(7));
                    if let Hint::PassAtGen(g) = store.screen_read(&key, probe) {
                        let state = store.shards[shard].state.lock().expect(POISONED);
                        if let Some(rec) = state.records.get(&key) {
                            if rec.atomics.generation.load(Ordering::SeqCst) == g {
                                assert!(
                                    rec.max_write < probe,
                                    "validated screen hint contradicts the exact watermark"
                                );
                                validated.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    probe_t = probe_t % 3_996 + 7;
                }
            });
        });
        // The smoke is only meaningful if some hints actually validated.
        assert!(validated.load(Ordering::Relaxed) > 0);
    }

    // ------------------------------------------------------------------
    // Multi-threaded oracle equivalence (the tentpole safety net)
    // ------------------------------------------------------------------

    /// A pre-generated operation: built before the threads start (op
    /// construction must not depend on racing store state).
    enum MtOp {
        Prepare(Arc<Transaction>),
        Commit(Arc<Transaction>),
        Abort(TxId),
        /// Read, then (if the flag is set) remove the RTS again — two
        /// separately logged operations, racing everything else.
        ReadRts(Key, Timestamp, bool),
        Gc(Timestamp),
    }

    type RawOp = (u8, u64, u64, u64, u64, u64);

    /// Deterministically expands raw tuples into executable ops. Prepares
    /// draw reads from genesis, arbitrary versions, and dependencies on
    /// earlier-issued transactions (valid and invalid alike); commits and
    /// aborts target earlier-issued transactions, racing their prepares.
    fn build_ops(raw: &[RawOp]) -> (Vec<MtOp>, Vec<Arc<Transaction>>) {
        let mut issued: Vec<Arc<Transaction>> = Vec::new();
        let mut ops = Vec::new();
        for &(kind, a, b, c, d, e) in raw {
            match kind % 8 {
                0..=2 => {
                    let mut builder = TransactionBuilder::new(ts(a, b));
                    for i in 0..(c % 3) as usize {
                        let key = k(KEYS[((c >> (8 + 8 * i)) as usize) % KEYS.len()]);
                        match (e >> (4 * i)) % 4 {
                            0 => {
                                builder.record_read(key, Timestamp::ZERO);
                            }
                            1 => {
                                builder.record_read(key, ts(e.wrapping_add(a + i as u64), b + 1));
                            }
                            _ if !issued.is_empty() => {
                                let dep = &issued[((e >> 8) as usize + i) % issued.len()];
                                builder.record_dependent_read(key, dep.timestamp(), dep.id());
                            }
                            _ => {
                                builder.record_read(key, Timestamp::ZERO);
                            }
                        }
                    }
                    for i in 0..(d % 3) as usize {
                        let key = k(KEYS[((d >> (8 + 8 * i)) as usize) % KEYS.len()]);
                        builder.record_write(key, v(e ^ i as u64));
                    }
                    let tx = builder.build_shared();
                    issued.push(Arc::clone(&tx));
                    ops.push(MtOp::Prepare(tx));
                }
                3 | 4 => {
                    if !issued.is_empty() {
                        ops.push(MtOp::Commit(Arc::clone(
                            &issued[(a as usize) % issued.len()],
                        )));
                    }
                }
                5 => {
                    if !issued.is_empty() {
                        ops.push(MtOp::Abort(issued[(a as usize) % issued.len()].id()));
                    }
                }
                6 => {
                    ops.push(MtOp::ReadRts(
                        k(KEYS[(a as usize) % KEYS.len()]),
                        ts(b, c),
                        d % 2 == 0,
                    ));
                }
                _ => {
                    // Keep some sweeps below most activity so the abort
                    // floor races real prepares, not just dead air.
                    ops.push(MtOp::Gc(ts(a % 2_000, 0)));
                }
            }
        }
        (ops, issued)
    }

    fn sort_outcome(o: CheckOutcome) -> CheckOutcome {
        match o {
            CheckOutcome::Pending { mut waiting_on } => {
                waiting_on.sort_unstable();
                CheckOutcome::Pending { waiting_on }
            }
            decided => decided,
        }
    }

    fn sort_released(mut v: Vec<(TxId, Vote)>) -> Vec<(TxId, Vote)> {
        v.sort_unstable_by_key(|(txid, _)| *txid);
        v
    }

    /// Runs the ops across `threads` OS threads (round-robin partition,
    /// seeded yields perturbing the interleaving), then replays the
    /// observed linearization on a serial [`MvtsoStore`] and demands
    /// identical per-op outcomes, released votes, decisions, floors, and
    /// final committed state.
    fn run_mt_case(raw: &[RawOp], threads: usize, seed: u64) -> TestCaseResult {
        let (ops, issued) = build_ops(raw);
        let store = ConcurrentMvtsoStore::with_initial_data(3, genesis()).with_op_log();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let store = &store;
                let ops = &ops;
                s.spawn(move || {
                    for (i, op) in ops.iter().enumerate() {
                        if i % threads != tid {
                            continue;
                        }
                        if (seed >> (i % 31)) & 1 == 1 {
                            std::thread::yield_now();
                        }
                        match op {
                            MtOp::Prepare(tx) => {
                                store.prepare(tx, CLOCK, DELTA);
                            }
                            MtOp::Commit(tx) => {
                                store.commit(tx);
                            }
                            MtOp::Abort(txid) => {
                                store.abort(*txid);
                            }
                            MtOp::ReadRts(key, t, remove) => {
                                store.read(key, *t);
                                if *remove {
                                    store.remove_rts(key, *t);
                                }
                            }
                            MtOp::Gc(w) => {
                                store.gc_before(*w);
                            }
                        }
                    }
                });
            }
        });

        let log = store.take_op_log();
        let mut serial = MvtsoStore::with_initial_data(genesis());
        for op in &log {
            match op {
                LoggedOp::Prepare {
                    tx,
                    clock,
                    delta,
                    outcome,
                } => {
                    prop_assert_eq!(
                        sort_outcome(serial.prepare(tx, *clock, *delta)),
                        sort_outcome(outcome.clone())
                    );
                }
                LoggedOp::Commit { tx, released } => {
                    prop_assert_eq!(
                        sort_released(serial.commit(tx)),
                        sort_released(released.clone())
                    );
                }
                LoggedOp::Abort { txid, released } => {
                    prop_assert_eq!(
                        sort_released(serial.abort(*txid)),
                        sort_released(released.clone())
                    );
                }
                LoggedOp::Read { key, ts, result } => {
                    prop_assert_eq!(&serial.read(key, *ts), result);
                }
                LoggedOp::RemoveRts { key, ts } => serial.remove_rts(key, *ts),
                LoggedOp::Gc { watermark } => serial.gc_before(*watermark),
            }
        }

        for key in KEYS {
            let key = k(key);
            prop_assert_eq!(store.latest_committed(&key), serial.latest_committed(&key));
        }
        prop_assert_eq!(store.committed_count(), serial.committed_count());
        prop_assert_eq!(store.prepared_count(), serial.prepared_count());
        prop_assert_eq!(store.gc_floor(), serial.gc_floor());
        for tx in &issued {
            prop_assert_eq!(store.decision(&tx.id()), serial.decision(&tx.id()));
            prop_assert_eq!(store.is_pending(&tx.id()), serial.is_pending(&tx.id()));
            prop_assert_eq!(store.is_prepared(&tx.id()), serial.is_prepared(&tx.id()));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(600))]

        /// Randomized thread interleavings over prepare/commit/abort/read/
        /// GC agree with a serial replay of the observed linearization —
        /// outcomes, released votes, decisions, abort floor, and final
        /// committed state, bit for bit.
        #[test]
        fn concurrent_store_matches_serial_replay(
            raw in proptest::collection::vec(
                (0u8..=255, 0u64..=u64::MAX, 0u64..=u64::MAX,
                 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
                1..64,
            ),
            threads in 2usize..5,
            seed in 0u64..=u64::MAX,
        ) {
            run_mt_case(&raw, threads, seed)?;
        }
    }
}
