//! Simulated durable write-ahead log.
//!
//! Replicas log their externally visible state transitions — prepare votes,
//! logged decisions, applied decision certificates, and GC watermarks — to an
//! append-only record log so that an *amnesia* restart (the actor is rebuilt
//! from scratch, as after a real process crash) can reconstruct the store and
//! transaction records it had before the crash. The log lives in memory
//! because the whole system is simulated, but the seam is shaped like a disk:
//!
//! * Records are framed as `[u32-be payload length][4-byte checksum][payload]`
//!   where the checksum is the first four bytes of the SHA-256 digest of the
//!   payload. A crash can tear the tail of the log mid-frame; recovery
//!   truncates at the first frame whose length or checksum does not hold and
//!   never panics, exactly like a production WAL discarding a torn tail.
//! * Every append returns a configurable *fsync cost* for the caller to
//!   charge on the simulator clock, modelling the latency of a synchronous
//!   disk barrier. The default cost is zero so that fault-free golden runs
//!   keep their pinned timing.
//!
//! The record set is deliberately minimal: a [`WalRecord::Prepare`] carries
//! the full transaction (its canonical encoding is self-delimiting and
//! hash-verifiable), decisions and applies are keyed by transaction id, and
//! [`WalRecord::Applied`] optionally re-ships the transaction so commit
//! replay can re-install writes without consulting any peer.

use crate::tx::Transaction;
use basil_common::{ClientId, Duration, Timestamp, TxId};
use basil_crypto::Sha256;
use std::sync::Arc;

/// Number of framing bytes preceding every payload (length + checksum).
const FRAME_HEADER: usize = 8;

const TAG_PREPARE: u8 = 0x01;
const TAG_DECISION: u8 = 0x02;
const TAG_APPLIED: u8 = 0x03;
const TAG_GC_WATERMARK: u8 = 0x04;

/// One durable state transition of a replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// The replica voted on a prepare: the concurrency-control outcome
    /// (`commit` = true for a commit vote) together with the full
    /// transaction, so replay can re-run the prepare against the rebuilt
    /// store.
    Prepare {
        /// Whether the replica's vote was commit.
        commit: bool,
        /// The transaction that was prepared.
        tx: Arc<Transaction>,
    },
    /// The replica logged an ST2 decision for `txid` in `view`.
    Decision {
        /// The transaction the decision is for.
        txid: TxId,
        /// Whether the logged decision was commit.
        commit: bool,
        /// The fallback view the decision was logged in (0 on the common
        /// path).
        view: u64,
    },
    /// The replica validated a decision certificate and applied it to the
    /// store. Commits carry the transaction so replay can re-install the
    /// writes; aborts only need the id.
    Applied {
        /// The decided transaction.
        txid: TxId,
        /// Whether the applied decision was commit.
        commit: bool,
        /// The transaction body, present for commits when the replica had it.
        tx: Option<Arc<Transaction>>,
    },
    /// A garbage-collection sweep trimmed store bookkeeping below this
    /// watermark. Replay re-applies the highest watermark so a recovered
    /// replica refuses the same stale timestamps its pre-crash self would
    /// have.
    GcWatermark {
        /// The inclusive trim bound passed to `MvtsoStore::gc_before`.
        watermark: Timestamp,
    },
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        match self {
            WalRecord::Prepare { commit, tx } => {
                let encoded = tx.encoded();
                let mut out = Vec::with_capacity(2 + encoded.len());
                out.push(TAG_PREPARE);
                out.push(u8::from(*commit));
                out.extend_from_slice(encoded);
                out
            }
            WalRecord::Decision { txid, commit, view } => {
                let mut out = Vec::with_capacity(1 + 32 + 1 + 8);
                out.push(TAG_DECISION);
                out.extend_from_slice(txid.as_bytes());
                out.push(u8::from(*commit));
                out.extend_from_slice(&view.to_be_bytes());
                out
            }
            WalRecord::Applied { txid, commit, tx } => {
                let encoded = tx.as_ref().map(|t| t.encoded());
                let mut out = Vec::with_capacity(35 + encoded.map_or(0, <[u8]>::len));
                out.push(TAG_APPLIED);
                out.extend_from_slice(txid.as_bytes());
                out.push(u8::from(*commit));
                match encoded {
                    Some(bytes) => {
                        out.push(1);
                        out.extend_from_slice(bytes);
                    }
                    None => out.push(0),
                }
                out
            }
            WalRecord::GcWatermark { watermark } => {
                let mut out = Vec::with_capacity(1 + 16);
                out.push(TAG_GC_WATERMARK);
                out.extend_from_slice(&watermark.time.to_be_bytes());
                out.extend_from_slice(&watermark.client.0.to_be_bytes());
                out
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, body) = payload.split_first()?;
        match tag {
            TAG_PREPARE => {
                let (&commit, tx_bytes) = body.split_first()?;
                if commit > 1 {
                    return None;
                }
                let tx = Transaction::decode(tx_bytes)?;
                Some(WalRecord::Prepare {
                    commit: commit == 1,
                    tx: Arc::new(tx),
                })
            }
            TAG_DECISION => {
                if body.len() != 32 + 1 + 8 {
                    return None;
                }
                let txid = TxId::from_bytes(body[..32].try_into().ok()?);
                let commit = body[32];
                if commit > 1 {
                    return None;
                }
                let view = u64::from_be_bytes(body[33..41].try_into().ok()?);
                Some(WalRecord::Decision {
                    txid,
                    commit: commit == 1,
                    view,
                })
            }
            TAG_APPLIED => {
                if body.len() < 34 {
                    return None;
                }
                let txid = TxId::from_bytes(body[..32].try_into().ok()?);
                let commit = body[32];
                let has_tx = body[33];
                if commit > 1 || has_tx > 1 {
                    return None;
                }
                let tx = if has_tx == 1 {
                    Some(Arc::new(Transaction::decode(&body[34..])?))
                } else if body.len() == 34 {
                    None
                } else {
                    return None;
                };
                Some(WalRecord::Applied {
                    txid,
                    commit: commit == 1,
                    tx,
                })
            }
            TAG_GC_WATERMARK => {
                if body.len() != 16 {
                    return None;
                }
                let time = u64::from_be_bytes(body[..8].try_into().ok()?);
                let client = u64::from_be_bytes(body[8..16].try_into().ok()?);
                Some(WalRecord::GcWatermark {
                    watermark: Timestamp::from_nanos(time, ClientId(client)),
                })
            }
            _ => None,
        }
    }
}

fn checksum(payload: &[u8]) -> [u8; 4] {
    let digest = Sha256::digest(payload);
    digest.as_bytes()[..4].try_into().expect("4-byte prefix")
}

/// An append-only, checksum-framed record log behind a simulated
/// durable-storage seam.
///
/// The byte buffer is the "disk": it survives an amnesia restart (the
/// cluster harness hands it to the replacement actor) while everything else
/// about the actor is rebuilt from scratch. [`Wal::append`] returns the
/// configured fsync cost so the caller can charge it on the simulator clock.
#[derive(Clone, Debug)]
pub struct Wal {
    buf: Vec<u8>,
    fsync_cost: Duration,
    appends: u64,
}

impl Wal {
    /// Creates an empty log whose appends each cost `fsync_cost` of
    /// simulated time ([`Duration::ZERO`] models an always-warm write cache
    /// and keeps fault-free golden timings unchanged).
    pub fn new(fsync_cost: Duration) -> Self {
        Wal {
            buf: Vec::new(),
            fsync_cost,
            appends: 0,
        }
    }

    /// Appends a record and returns the fsync cost the caller must charge.
    pub fn append(&mut self, record: &WalRecord) -> Duration {
        let payload = record.encode_payload();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(&checksum(&payload));
        self.buf.extend_from_slice(&payload);
        self.appends += 1;
        self.fsync_cost
    }

    /// Number of records appended since creation or recovery.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Size of the log in bytes.
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The raw log bytes (the simulated disk image).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Takes the log bytes out, leaving the log empty. The cluster harness
    /// uses this to carry the "disk" from a crashed actor to its amnesia
    /// replacement.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        self.appends = 0;
        std::mem::take(&mut self.buf)
    }

    /// Replays a log image recovered from a crash. Returns the recovered log
    /// (truncated to its longest valid prefix, ready for further appends) and
    /// the decoded records in append order. A torn or corrupted tail — a
    /// frame whose length overruns the buffer, whose checksum does not match,
    /// or whose payload does not decode — ends the replay at the last good
    /// frame; this never panics.
    pub fn recover(bytes: Vec<u8>, fsync_cost: Duration) -> (Wal, Vec<WalRecord>) {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= FRAME_HEADER {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let Some(end) = (pos + FRAME_HEADER).checked_add(len) else {
                break;
            };
            if end > bytes.len() {
                break; // torn tail: the final append didn't finish
            }
            let payload = &bytes[pos + FRAME_HEADER..end];
            if checksum(payload) != bytes[pos + 4..pos + 8] {
                break; // bit rot or a torn rewrite: stop trusting the log here
            }
            let Some(record) = WalRecord::decode_payload(payload) else {
                break;
            };
            records.push(record);
            pos = end;
        }
        let mut buf = bytes;
        buf.truncate(pos);
        (
            Wal {
                buf,
                fsync_cost,
                appends: records.len() as u64,
            },
            records,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TransactionBuilder;
    use basil_common::{Key, Value};

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(c))
    }

    fn sample_tx(seed: u64) -> Arc<Transaction> {
        let mut b = TransactionBuilder::new(ts(100 + seed, 1));
        b.record_read(Key::new("x"), ts(50, 2));
        b.record_dependent_read(Key::new("y"), ts(60, 3), TxId::from_bytes([7; 32]));
        b.record_write(Key::new("z"), Value::from_u64(seed));
        b.build_shared()
    }

    fn sample_records() -> Vec<WalRecord> {
        let tx = sample_tx(1);
        vec![
            WalRecord::Prepare {
                commit: true,
                tx: tx.clone(),
            },
            WalRecord::Decision {
                txid: tx.id(),
                commit: true,
                view: 3,
            },
            WalRecord::Applied {
                txid: tx.id(),
                commit: true,
                tx: Some(tx.clone()),
            },
            WalRecord::Applied {
                txid: TxId::from_bytes([9; 32]),
                commit: false,
                tx: None,
            },
            WalRecord::GcWatermark {
                watermark: ts(42, 5),
            },
        ]
    }

    #[test]
    fn append_and_recover_round_trips_every_record_kind() {
        let mut wal = Wal::new(Duration::ZERO);
        let records = sample_records();
        for r in &records {
            wal.append(r);
        }
        assert_eq!(wal.appends(), records.len() as u64);
        let image = wal.take_bytes();
        assert_eq!(wal.len_bytes(), 0, "take_bytes drains the log");

        let (recovered, replayed) = Wal::recover(image.clone(), Duration::ZERO);
        assert_eq!(replayed, records);
        assert_eq!(recovered.bytes(), &image[..], "full image was valid");

        // Replayed transactions hash to the same id as the originals.
        if let WalRecord::Prepare { tx, .. } = &replayed[0] {
            assert_eq!(tx.id(), sample_tx(1).id());
            assert_eq!(tx.encoded(), sample_tx(1).encoded());
        } else {
            panic!("first record is the prepare");
        }
    }

    #[test]
    fn append_charges_the_configured_fsync_cost() {
        let cost = Duration::from_micros(40);
        let mut wal = Wal::new(cost);
        assert_eq!(
            wal.append(&WalRecord::GcWatermark {
                watermark: ts(1, 1)
            }),
            cost
        );
        let (recovered, _) = Wal::recover(wal.take_bytes(), cost);
        assert_eq!(recovered.fsync_cost, cost);
    }

    #[test]
    fn torn_tail_truncates_at_the_last_good_frame() {
        let mut wal = Wal::new(Duration::ZERO);
        let records = sample_records();
        for r in &records {
            wal.append(r);
        }
        let image = wal.take_bytes();

        // Chop the image at every possible torn point: recovery must never
        // panic and must replay exactly the records whose frames survived.
        for cut in 0..image.len() {
            let (recovered, replayed) = Wal::recover(image[..cut].to_vec(), Duration::ZERO);
            assert!(replayed.len() <= records.len());
            assert_eq!(replayed, records[..replayed.len()]);
            assert!(
                recovered.len_bytes() <= cut,
                "log truncated to valid prefix"
            );
        }
    }

    #[test]
    fn corrupted_frame_stops_the_replay_without_panicking() {
        let mut wal = Wal::new(Duration::ZERO);
        let records = sample_records();
        for r in &records {
            wal.append(r);
        }
        let image = wal.take_bytes();

        // Flip one byte at every offset; replay must never panic and never
        // return a record that differs from the original sequence prefix
        // (the frame containing the flip fails its checksum, except flips in
        // a length field, which instead misalign and fail framing).
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x41;
            let (_, replayed) = Wal::recover(bad, Duration::ZERO);
            for (got, want) in replayed.iter().zip(records.iter()) {
                assert_eq!(got, want, "flip at {i} produced a divergent record");
            }
            assert!(replayed.len() < records.len(), "flip at {i} went unnoticed");
        }
    }

    #[test]
    fn recovered_log_accepts_further_appends() {
        let mut wal = Wal::new(Duration::ZERO);
        wal.append(&WalRecord::GcWatermark {
            watermark: ts(5, 0),
        });
        let (mut recovered, replayed) = Wal::recover(wal.take_bytes(), Duration::ZERO);
        assert_eq!(replayed.len(), 1);
        recovered.append(&WalRecord::Decision {
            txid: TxId::from_bytes([1; 32]),
            commit: false,
            view: 0,
        });
        let (_, all) = Wal::recover(recovered.take_bytes(), Duration::ZERO);
        assert_eq!(all.len(), 2, "old and new frames both replay");
    }

    #[test]
    fn garbage_input_recovers_to_an_empty_log() {
        let (wal, replayed) = Wal::recover(vec![0xFF; 300], Duration::ZERO);
        assert!(replayed.is_empty());
        assert_eq!(wal.len_bytes(), 0);
        let (wal, replayed) = Wal::recover(Vec::new(), Duration::ZERO);
        assert!(replayed.is_empty());
        assert_eq!(wal.appends(), 0);
    }
}
