//! # basil-store
//!
//! The multiversioned storage substrate of the Basil reproduction.
//!
//! Basil modifies multiversioned timestamp ordering (MVTSO) to run under
//! Byzantine faults (Section 4). This crate implements the storage-engine
//! half of that design, independent of networking and quorums:
//!
//! * [`tx`] — the transaction representation: timestamp, read set (with the
//!   versions read), buffered write set, dependency set, and the
//!   hash-derived transaction identifier.
//! * [`mvtso`] — the per-replica storage engine: committed version chains,
//!   prepared (visible but uncommitted) writes, read timestamps (RTS),
//!   the concurrency-control check of **Algorithm 1**, and dependency
//!   tracking with deferred votes ("wait for all pending dependencies").
//! * [`varray`] — the flattened, timestamp-sorted version arrays backing the
//!   per-key records of both stores (append-mostly `Vec`s with binary-search
//!   range queries; the watermark/generation fast path of
//!   [`mvtso::MvtsoStore::prepare`] is built on their `O(1)` tails).
//! * [`concurrent`] — the sharded, internally synchronized variant of the
//!   same engine for multicore replicas: per-shard locks, lock-free atomic
//!   watermark screening, and a global vote-publication table, equivalent
//!   to [`mvtso::MvtsoStore`] under any interleaving (property-tested
//!   against a serial replay of the observed linearization).
//! * [`txstore`] — the [`txstore::TxStore`] seam `BasilReplica` is generic
//!   over, implemented by both engines.
//! * [`occ`] — a classic backward-validation OCC check used by the baseline
//!   systems (TxHotstuff / TxBFT-SMaRt / TAPIR-style) in the evaluation.
//! * [`audit`] — a serialization-graph auditor used by tests to verify that
//!   every committed history is acyclic (Byz-serializability, Lemma 1).
//! * [`wal`] — a simulated durable write-ahead log: checksum-framed records
//!   of prepares, decisions, applies, and GC watermarks, with torn-tail
//!   tolerant recovery. Replicas replay it after an *amnesia* restart.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod concurrent;
pub mod mvtso;
pub mod occ;
#[cfg(test)]
mod reference;
pub mod tx;
pub mod txstore;
pub mod varray;
pub mod wal;

pub use audit::{audit_serializability, AuditError};
pub use concurrent::{ConcurrentMvtsoStore, SharedStore};
pub use mvtso::{CheckOutcome, MvtsoStore, ReadResult, StoreStats, Vote};
pub use tx::{Dependency, ReadOp, Transaction, TransactionBuilder, WriteOp};
pub use txstore::TxStore;
pub use varray::{ReaderSummary, VersionArray};
pub use wal::{Wal, WalRecord};
