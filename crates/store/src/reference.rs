//! Test-only reference implementation of the MVTSO store, kept as the
//! pre-flattening nested-`BTreeMap` code, plus a property test asserting
//! that the flattened [`MvtsoStore`](crate::MvtsoStore) makes bit-identical
//! prepare/commit/abort decisions under random interleavings.
//!
//! The flattened store's correctness argument has two halves: the slow scans
//! are a mechanical translation of the `BTreeMap` range queries, and the
//! watermark fast path only *skips* scans whose verdict is provably
//! no-conflict. This module checks both halves empirically: every operation
//! is applied to both stores and every observable — check outcomes, released
//! deferred votes, read results, final decisions, latest committed values —
//! must match exactly, including across GC sweeps.

use crate::mvtso::{CheckOutcome, CommittedVersion, Decision, PreparedVersion, ReadResult, Vote};
use crate::tx::Transaction;
use basil_common::error::AbortReason;
use basil_common::{Duration, FastHashMap, FastHashSet, Key, SimTime, Timestamp, TxId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The original nested-`BTreeMap` MVTSO store (pre-PR-4 layout), preserved
/// verbatim as a behavioural oracle.
#[derive(Debug, Default)]
pub struct ReferenceStore {
    committed_versions: FastHashMap<Key, BTreeMap<Timestamp, (TxId, Value)>>,
    committed_txs: FastHashMap<TxId, Arc<Transaction>>,
    committed_reads: FastHashMap<Key, BTreeMap<Timestamp, Timestamp>>,
    prepared_txs: FastHashMap<TxId, Arc<Transaction>>,
    prepared_writes: FastHashMap<Key, BTreeMap<Timestamp, TxId>>,
    prepared_reads: FastHashMap<Key, BTreeMap<Timestamp, Timestamp>>,
    rts: FastHashMap<Key, BTreeSet<Timestamp>>,
    decisions: FastHashMap<TxId, Decision>,
    aborted: FastHashSet<TxId>,
    pending: FastHashMap<TxId, FastHashSet<TxId>>,
    waiters: FastHashMap<TxId, Vec<TxId>>,
    /// Mirrors the flattened store's GC floor (adopted in both
    /// implementations: prepares at or below the highest GC watermark are
    /// refused because their conflict evidence is gone).
    gc_watermark: Timestamp,
}

impl ReferenceStore {
    pub fn with_initial_data(data: impl IntoIterator<Item = (Key, Value)>) -> Self {
        let mut store = Self::default();
        for (key, value) in data {
            store
                .committed_versions
                .entry(key)
                .or_default()
                .insert(Timestamp::ZERO, (TxId::default(), value));
        }
        store
    }

    pub fn read(&mut self, key: &Key, ts: Timestamp) -> ReadResult {
        self.rts.entry(key.clone()).or_default().insert(ts);
        self.read_without_rts(key, ts)
    }

    pub fn read_without_rts(&self, key: &Key, ts: Timestamp) -> ReadResult {
        let committed = self.committed_versions.get(key).and_then(|versions| {
            versions
                .range(..ts)
                .next_back()
                .map(|(version, (txid, value))| CommittedVersion {
                    version: *version,
                    value: value.clone(),
                    txid: *txid,
                })
        });
        let prepared = self.prepared_writes.get(key).and_then(|versions| {
            versions
                .range(..ts)
                .next_back()
                .and_then(|(version, txid)| {
                    self.prepared_txs.get(txid).map(|tx| PreparedVersion {
                        version: *version,
                        value: tx.written_value(key).cloned().unwrap_or_else(Value::empty),
                        txid: *txid,
                        deps: tx.deps().to_vec(),
                    })
                })
        });
        ReadResult {
            committed,
            prepared,
        }
    }

    pub fn remove_rts(&mut self, key: &Key, ts: Timestamp) {
        if let Some(set) = self.rts.get_mut(key) {
            set.remove(&ts);
            if set.is_empty() {
                self.rts.remove(key);
            }
        }
    }

    pub fn latest_committed(&self, key: &Key) -> Option<(Timestamp, Value)> {
        self.committed_versions.get(key).and_then(|versions| {
            versions
                .iter()
                .next_back()
                .map(|(ts, (_, value))| (*ts, value.clone()))
        })
    }

    pub fn prepare(
        &mut self,
        tx: &Arc<Transaction>,
        local_clock: SimTime,
        delta: Duration,
    ) -> CheckOutcome {
        let txid = tx.id();

        if let Some(decision) = self.decisions.get(&txid) {
            return CheckOutcome::Decided(match decision {
                Decision::Commit => Vote::Commit,
                Decision::Abort => Vote::Abort(AbortReason::Conflict),
            });
        }
        if let Some(missing) = self.pending.get(&txid) {
            return CheckOutcome::Pending {
                waiting_on: missing.iter().copied().collect(),
            };
        }
        if self.prepared_txs.contains_key(&txid) {
            return CheckOutcome::Decided(Vote::Commit);
        }

        if tx.timestamp().exceeds_bound(local_clock, delta) {
            return CheckOutcome::Decided(Vote::Abort(AbortReason::TimestampOutOfBounds));
        }
        if self.gc_watermark > Timestamp::ZERO && tx.timestamp() <= self.gc_watermark {
            return CheckOutcome::Decided(Vote::Abort(AbortReason::TimestampOutOfBounds));
        }

        for dep in tx.deps() {
            let known = self
                .prepared_txs
                .get(&dep.txid)
                .or_else(|| self.committed_txs.get(&dep.txid));
            if let Some(dep_tx) = known {
                let produced = dep_tx.writes(&dep.key) && dep_tx.timestamp() == dep.version;
                if !produced {
                    return CheckOutcome::Decided(Vote::Abort(AbortReason::InvalidDependency));
                }
            } else if self.aborted.contains(&dep.txid) {
                return CheckOutcome::Decided(Vote::Abort(AbortReason::DependencyAborted));
            }
        }

        for read in tx.read_set() {
            if read.version > tx.timestamp() {
                return CheckOutcome::Decided(Vote::Abort(AbortReason::Misbehavior));
            }
        }

        for read in tx.read_set() {
            if self.has_write_in_range(&read.key, read.version, tx.timestamp()) {
                return CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict));
            }
        }

        for write in tx.write_set() {
            if self.write_invalidates_reader(&write.key, tx.timestamp()) {
                return CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict));
            }
        }

        for write in tx.write_set() {
            if let Some(set) = self.rts.get(&write.key) {
                if set
                    .range((
                        std::ops::Bound::Excluded(tx.timestamp()),
                        std::ops::Bound::Unbounded,
                    ))
                    .next()
                    .is_some()
                {
                    return CheckOutcome::Decided(Vote::Abort(AbortReason::Conflict));
                }
            }
        }

        self.index_prepared(txid, tx);

        let mut missing: FastHashSet<TxId> = FastHashSet::default();
        for dep in tx.deps() {
            match self.decisions.get(&dep.txid) {
                Some(Decision::Commit) => {}
                Some(Decision::Abort) => {
                    self.unindex_prepared(&txid);
                    return CheckOutcome::Decided(Vote::Abort(AbortReason::DependencyAborted));
                }
                None => {
                    missing.insert(dep.txid);
                }
            }
        }
        if missing.is_empty() {
            return CheckOutcome::Decided(Vote::Commit);
        }
        for dep in &missing {
            self.waiters.entry(*dep).or_default().push(txid);
        }
        let waiting_on: Vec<TxId> = missing.iter().copied().collect();
        self.pending.insert(txid, missing);
        CheckOutcome::Pending { waiting_on }
    }

    fn has_write_in_range(&self, key: &Key, lower: Timestamp, upper: Timestamp) -> bool {
        let in_committed = self
            .committed_versions
            .get(key)
            .map(|versions| {
                versions
                    .range((
                        std::ops::Bound::Excluded(lower),
                        std::ops::Bound::Excluded(upper),
                    ))
                    .next()
                    .is_some()
            })
            .unwrap_or(false);
        if in_committed {
            return true;
        }
        self.prepared_writes
            .get(key)
            .map(|versions| {
                versions
                    .range((
                        std::ops::Bound::Excluded(lower),
                        std::ops::Bound::Excluded(upper),
                    ))
                    .next()
                    .is_some()
            })
            .unwrap_or(false)
    }

    fn write_invalidates_reader(&self, key: &Key, write_ts: Timestamp) -> bool {
        let check = |reads: &BTreeMap<Timestamp, Timestamp>| {
            reads
                .range((
                    std::ops::Bound::Excluded(write_ts),
                    std::ops::Bound::Unbounded,
                ))
                .any(|(_, version_read)| *version_read < write_ts)
        };
        let committed_hit = self.committed_reads.get(key).map(&check).unwrap_or(false);
        if committed_hit {
            return true;
        }
        self.prepared_reads.get(key).map(&check).unwrap_or(false)
    }

    fn index_prepared(&mut self, txid: TxId, tx: &Arc<Transaction>) {
        for write in tx.write_set() {
            self.prepared_writes
                .entry(write.key.clone())
                .or_default()
                .insert(tx.timestamp(), txid);
        }
        for read in tx.read_set() {
            self.prepared_reads
                .entry(read.key.clone())
                .or_default()
                .insert(tx.timestamp(), read.version);
        }
        self.prepared_txs.insert(txid, Arc::clone(tx));
    }

    fn unindex_prepared(&mut self, txid: &TxId) -> Option<Arc<Transaction>> {
        if let Some(tx) = self.prepared_txs.remove(txid) {
            for write in tx.write_set() {
                if let Some(map) = self.prepared_writes.get_mut(&write.key) {
                    map.remove(&tx.timestamp());
                    if map.is_empty() {
                        self.prepared_writes.remove(&write.key);
                    }
                }
            }
            for read in tx.read_set() {
                if let Some(map) = self.prepared_reads.get_mut(&read.key) {
                    map.remove(&tx.timestamp());
                    if map.is_empty() {
                        self.prepared_reads.remove(&read.key);
                    }
                }
            }
            Some(tx)
        } else {
            None
        }
    }

    pub fn commit(&mut self, tx: &Arc<Transaction>) -> Vec<(TxId, Vote)> {
        let txid = tx.id();
        if matches!(self.decisions.get(&txid), Some(Decision::Commit)) {
            return Vec::new();
        }
        let shared = self
            .unindex_prepared(&txid)
            .unwrap_or_else(|| Arc::clone(tx));
        self.pending.remove(&txid);
        self.decisions.insert(txid, Decision::Commit);

        for write in tx.write_set() {
            self.committed_versions
                .entry(write.key.clone())
                .or_default()
                .insert(tx.timestamp(), (txid, write.value.clone()));
        }
        for read in tx.read_set() {
            self.committed_reads
                .entry(read.key.clone())
                .or_default()
                .insert(tx.timestamp(), read.version);
        }
        self.committed_txs.insert(txid, shared);

        self.wake_waiters(txid, Decision::Commit)
    }

    pub fn abort(&mut self, txid: TxId) -> Vec<(TxId, Vote)> {
        if matches!(self.decisions.get(&txid), Some(Decision::Abort)) {
            return Vec::new();
        }
        self.unindex_prepared(&txid);
        self.pending.remove(&txid);
        self.decisions.insert(txid, Decision::Abort);
        self.aborted.insert(txid);
        self.wake_waiters(txid, Decision::Abort)
    }

    fn wake_waiters(&mut self, resolved: TxId, decision: Decision) -> Vec<(TxId, Vote)> {
        let mut released = Vec::new();
        let Some(waiters) = self.waiters.remove(&resolved) else {
            return released;
        };
        for waiter in waiters {
            let Some(missing) = self.pending.get_mut(&waiter) else {
                continue;
            };
            match decision {
                Decision::Abort => {
                    self.pending.remove(&waiter);
                    self.unindex_prepared(&waiter);
                    released.push((waiter, Vote::Abort(AbortReason::DependencyAborted)));
                }
                Decision::Commit => {
                    missing.remove(&resolved);
                    if missing.is_empty() {
                        self.pending.remove(&waiter);
                        released.push((waiter, Vote::Commit));
                    }
                }
            }
        }
        released
    }

    pub fn decision(&self, txid: &TxId) -> Option<Decision> {
        self.decisions.get(txid).copied()
    }

    pub fn gc_before(&mut self, watermark: Timestamp) {
        self.gc_watermark = self.gc_watermark.max(watermark);
        for versions in self.committed_versions.values_mut() {
            if let Some(keep_from) = versions.range(..=watermark).next_back().map(|(ts, _)| *ts) {
                *versions = versions.split_off(&keep_from);
            }
        }
        for reads in self.committed_reads.values_mut() {
            *reads = reads.split_off(&watermark);
        }
        for set in self.rts.values_mut() {
            *set = set.split_off(&watermark);
        }
        self.rts.retain(|_, set| !set.is_empty());
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use crate::tx::TransactionBuilder;
    use crate::MvtsoStore;
    use basil_common::ClientId;
    use proptest::prelude::*;

    const DELTA: Duration = Duration::from_millis(100);
    const CLOCK: SimTime = SimTime::from_secs(4);
    const KEYS: [&str; 4] = ["a", "b", "c", "d"];

    fn key(i: u64) -> Key {
        Key::new(KEYS[(i as usize) % KEYS.len()])
    }

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t % 4_000, ClientId(c % 8))
    }

    /// One raw op descriptor: interpreted against the running history so
    /// commits/aborts/dependencies target previously issued transactions.
    type RawOp = (u8, u64, u64, u64, u64, u64);

    fn sorted_outcome(outcome: CheckOutcome) -> CheckOutcome {
        match outcome {
            CheckOutcome::Pending { mut waiting_on } => {
                waiting_on.sort_unstable();
                CheckOutcome::Pending { waiting_on }
            }
            decided => decided,
        }
    }

    /// Interprets a raw op against both stores and asserts every observable
    /// matches. Returns `Err` (via prop_assert) on divergence.
    fn run_history(ops: Vec<RawOp>) -> Result<(), TestCaseError> {
        let initial: Vec<(Key, Value)> = KEYS
            .iter()
            .map(|k| (Key::new(*k), Value::from_u64(0)))
            .collect();
        let mut flat = MvtsoStore::with_initial_data(initial.clone());
        let mut reference = ReferenceStore::with_initial_data(initial);
        let mut issued: Vec<Arc<Transaction>> = Vec::new();

        for (kind, a, b, c, d, e) in ops {
            match kind % 8 {
                // Prepare a fresh transaction: 0-2 reads, 0-2 writes, with
                // read versions drawn from {what is visible, ZERO, arbitrary}
                // and occasionally a declared dependency on an issued tx.
                0..=3 => {
                    let t = ts(a, b);
                    let mut builder = TransactionBuilder::new(t);
                    let reads = (c % 3) as usize;
                    let writes = (d % 3) as usize;
                    for i in 0..reads {
                        let k = key(c.wrapping_add(i as u64));
                        match e.wrapping_add(i as u64) % 4 {
                            // Read what is actually visible; if it is a
                            // prepared version, declare the dependency.
                            0 | 1 => {
                                let visible = flat.read_without_rts(&k, t);
                                let newest_prepared = visible
                                    .prepared
                                    .as_ref()
                                    .map(|p| p.version)
                                    .unwrap_or(Timestamp::ZERO);
                                match visible.prepared {
                                    Some(p)
                                        if newest_prepared
                                            >= visible
                                                .committed
                                                .as_ref()
                                                .map(|cv| cv.version)
                                                .unwrap_or(Timestamp::ZERO) =>
                                    {
                                        builder.record_dependent_read(k, p.version, p.txid);
                                    }
                                    _ => {
                                        let version = visible
                                            .committed
                                            .map(|cv| cv.version)
                                            .unwrap_or(Timestamp::ZERO);
                                        builder.record_read(k, version);
                                    }
                                }
                            }
                            // Stale read of the genesis version.
                            2 => {
                                builder.record_read(k, Timestamp::ZERO);
                            }
                            // Arbitrary (possibly future / missing) version.
                            _ => {
                                builder.record_read(k, ts(e, c));
                            }
                        }
                    }
                    for i in 0..writes {
                        builder.record_write(
                            key(d.wrapping_add(i as u64)),
                            Value::from_u64(e.wrapping_add(i as u64)),
                        );
                    }
                    let tx = builder.build_shared();
                    let got = flat.prepare(&tx, CLOCK, DELTA);
                    let want = reference.prepare(&tx, CLOCK, DELTA);
                    prop_assert_eq!(sorted_outcome(got), sorted_outcome(want));
                    issued.push(tx);
                }
                // Commit an issued transaction.
                4 => {
                    if issued.is_empty() {
                        continue;
                    }
                    let tx = &issued[(a as usize) % issued.len()];
                    let got = flat.commit(tx);
                    let want = reference.commit(tx);
                    prop_assert_eq!(got, want);
                }
                // Abort an issued transaction.
                5 => {
                    if issued.is_empty() {
                        continue;
                    }
                    let txid = issued[(a as usize) % issued.len()].id();
                    let got = flat.abort(txid);
                    let want = reference.abort(txid);
                    prop_assert_eq!(got, want);
                }
                // Execution-phase read (registers an RTS) and RTS removal.
                6 => {
                    let k = key(a);
                    let t = ts(b, c);
                    let got = flat.read(&k, t);
                    let want = reference.read(&k, t);
                    prop_assert_eq!(got, want);
                    if d % 2 == 0 {
                        flat.remove_rts(&k, t);
                        reference.remove_rts(&k, t);
                    }
                }
                // GC sweep at an arbitrary watermark.
                _ => {
                    let watermark = ts(a, 0);
                    flat.gc_before(watermark);
                    reference.gc_before(watermark);
                }
            }
        }

        // Final-state agreement: decisions, committed values, visibility.
        for tx in &issued {
            prop_assert_eq!(flat.decision(&tx.id()), reference.decision(&tx.id()));
        }
        for k in KEYS {
            let k = Key::new(k);
            prop_assert_eq!(flat.latest_committed(&k), reference.latest_committed(&k));
            let probe = Timestamp::from_nanos(u64::MAX, ClientId(0));
            prop_assert_eq!(
                flat.read_without_rts(&k, probe),
                reference.read_without_rts(&k, probe)
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1_200))]

        /// Random interleavings of prepare/commit/abort/read/GC make
        /// bit-identical decisions on the flattened store and the
        /// nested-`BTreeMap` reference.
        #[test]
        fn flattened_store_matches_btreemap_reference(
            ops in proptest::collection::vec(
                (0u8..=255, 0u64..=u64::MAX, 0u64..=u64::MAX,
                 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
                1..48,
            )
        ) {
            run_history(ops)?;
        }
    }
}
