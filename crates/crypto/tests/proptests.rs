//! Property-based tests for the cryptographic substrate.

use basil_common::{ClientId, NodeId, ReplicaId, ShardId};
use basil_crypto::{BatchProof, BatchSigner, KeyRegistry, MerkleTree, Sha256, SignatureCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental hashing over arbitrary chunkings equals one-shot hashing.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                         chunk in 1usize..512) {
        let mut hasher = Sha256::new();
        for part in data.chunks(chunk) {
            hasher.update(part);
        }
        prop_assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }

    /// Distinct inputs produce distinct digests (no accidental collisions in
    /// the generated sample).
    #[test]
    fn sha256_distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..256),
                                               b in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
    }

    /// Every leaf of an arbitrary batch yields a valid inclusion proof, and
    /// proofs do not validate against other payloads in the batch.
    #[test]
    fn merkle_proofs_round_trip(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..40),
                                probe in any::<proptest::sample::Index>()) {
        let tree = MerkleTree::build(&leaves);
        let index = probe.index(leaves.len());
        let proof = tree.prove(index);
        prop_assert!(proof.verify(&leaves[index], &tree.root()));
        // A proof transplanted onto a different payload fails unless the
        // payloads are identical.
        let other = (index + 1) % leaves.len();
        if leaves[other] != leaves[index] {
            prop_assert!(!proof.verify(&leaves[other], &tree.root()));
        }
    }

    /// Signatures verify only for the signing node and the exact payload.
    #[test]
    fn signatures_bind_signer_and_payload(seed in any::<u64>(),
                                          payload in proptest::collection::vec(any::<u8>(), 0..128),
                                          tamper in proptest::collection::vec(any::<u8>(), 0..128)) {
        let registry = KeyRegistry::from_seed(seed);
        let signer = NodeId::Replica(ReplicaId::new(ShardId(0), 3));
        let proof = BatchProof::sign_single(&registry.keypair(signer), &payload);
        let mut cache = SignatureCache::new();
        prop_assert!(proof.verify(&payload, &registry, &mut cache).valid);
        if tamper != payload {
            let mut cache = SignatureCache::new();
            prop_assert!(!proof.verify(&tamper, &registry, &mut cache).valid);
        }
        // A different deployment (different master seed) rejects it.
        let other_registry = KeyRegistry::from_seed(seed.wrapping_add(1));
        let mut cache = SignatureCache::new();
        prop_assert!(!proof.verify(&payload, &other_registry, &mut cache).valid);
    }

    /// Batch signing: every reply in an arbitrary batch verifies, and the
    /// signature count equals the number of flushes.
    #[test]
    fn batch_signer_covers_every_reply(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..48), 1..32),
                                       batch_size in 1usize..8) {
        let registry = KeyRegistry::from_seed(9);
        let node = NodeId::Client(ClientId(1));
        let mut signer = BatchSigner::new(registry.keypair(node), batch_size);
        let mut signed: Vec<(Vec<u8>, BatchProof)> = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            if let Some(batch) = signer.push(NodeId::Client(ClientId(i as u64)), payload) {
                // Pair the returned proofs with the payloads of that batch.
                let start = signed.len();
                for (j, (_, proof)) in batch.into_iter().enumerate() {
                    signed.push((payloads[start + j].clone(), proof));
                }
            }
        }
        for (_, proof) in signer.flush().into_iter().enumerate().map(|(j, p)| (j, p.1)).collect::<Vec<_>>() {
            let idx = signed.len();
            signed.push((payloads[idx].clone(), proof));
        }
        prop_assert_eq!(signed.len(), payloads.len());
        let mut cache = SignatureCache::new();
        for (payload, proof) in &signed {
            prop_assert!(proof.verify(payload, &registry, &mut cache).valid);
        }
    }
}
