//! # basil-crypto
//!
//! From-scratch cryptographic substrate for the Basil reproduction.
//!
//! The paper's prototype uses ed25519 signatures (ed25519-donna) and SHA-256
//! hashing, and amortizes signature costs with Merkle-tree reply batching and
//! a signature cache (Section 4.4). This crate provides:
//!
//! * [`sha256`] — a from-scratch SHA-256 implementation (FIPS 180-4), tested
//!   against the NIST vectors. Used for transaction identifiers, Merkle trees,
//!   and message digests.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), the MAC underlying the signature
//!   scheme below.
//! * [`sig`] — a keyed signature scheme with a key registry. Inside a
//!   single-process simulation, asymmetric cryptography provides no additional
//!   trust (all participants share an address space), so signatures are
//!   HMAC tags under per-node keys, verified through a registry that only the
//!   verification routine consults. Unforgeability within the model holds
//!   because Byzantine actors in the simulation can only produce signatures
//!   through their own [`sig::KeyPair`]. The *CPU cost* of real ed25519
//!   signing/verification is modelled separately by [`cost::CostModel`].
//! * [`merkle`] — Merkle trees and inclusion proofs used for reply batching.
//! * [`batch`] — the reply-batching construction of Figure 2: a replica signs
//!   only the root of a batch of replies and ships each client its reply, the
//!   root signature, and the sibling path; verifiers cache root signatures.
//! * [`cost`] — the crypto cost model (sign / verify / hash latencies) charged
//!   by the cluster simulator so that throughput reflects cryptographic load,
//!   reproducing Figures 5a, 5c and 6b.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cost;
pub mod digest;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod sig;

pub use batch::{BatchProof, BatchSigner, SignatureCache};
pub use cost::CostModel;
pub use digest::Digest;
pub use merkle::{MerkleFrontier, MerkleProof, MerkleTree, SealedFrontier};
pub use sha256::Sha256;
pub use sig::{KeyPair, KeyRegistry, Signature};
