//! 32-byte digests produced by [`crate::sha256::Sha256`].

use std::fmt;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the hash of an empty Merkle tree.
    pub const ZERO: Digest = Digest([0; 32]);

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Full lowercase hexadecimal rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses a digest from a 64-character hexadecimal string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Digest(out))
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "digest:{}",
            self.0[..4]
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        )
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let d = Digest(bytes);
        let parsed = Digest::from_hex(&d.to_hex()).expect("valid hex");
        assert_eq!(parsed, d);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Digest::from_hex("abcd").is_none());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn debug_is_short_display_is_full() {
        let d = Digest([0xab; 32]);
        assert_eq!(format!("{d:?}"), "digest:abababab");
        assert_eq!(format!("{d}").len(), 64);
    }
}
