//! Cryptographic CPU cost model.
//!
//! The evaluation's central overhead (Section 6.2) is the CPU time replicas
//! and clients spend generating and verifying ed25519 signatures and hashing
//! batches. The cluster simulator charges these costs to the node's CPU so
//! that throughput saturates where the paper's does. The defaults below are
//! calibrated to ed25519-donna on a ~2 GHz core (the CloudLab m510 machines
//! used in the paper): roughly 55 µs per signature generation, 130 µs per
//! verification, and a few µs per KiB of hashing.

use basil_common::Duration;

/// CPU cost of cryptographic operations, charged in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of generating one signature.
    pub sign: Duration,
    /// Cost of verifying one signature.
    pub verify: Duration,
    /// Cost of hashing, per 256 bytes of input (SHA-256 block granularity is
    /// finer, but per-256-byte accounting keeps the arithmetic simple).
    pub hash_per_256b: Duration,
    /// Cost of computing or checking a MAC. Client requests are MAC
    /// authenticated (they do not need to be transferable), so they are far
    /// cheaper than the replica replies that end up inside certificates.
    pub mac: Duration,
    /// Fixed per-message serialization/deserialization overhead, charged for
    /// every message sent or received. This models the protobuf + networking
    /// CPU cost the paper observes as the residual bottleneck once signature
    /// batching is enabled.
    pub message_overhead: Duration,
    /// Whether signature costs are charged at all. `false` models the
    /// `Basil-NoProofs` configuration (Figure 5a/5c), where cores otherwise
    /// used for crypto become available for request processing.
    pub enabled: bool,
}

impl CostModel {
    /// Cost model calibrated to the paper's testbed.
    pub fn ed25519_default() -> Self {
        CostModel {
            sign: Duration::from_micros(55),
            verify: Duration::from_micros(130),
            hash_per_256b: Duration::from_micros(1),
            mac: Duration::from_micros(2),
            message_overhead: Duration::from_micros(6),
            enabled: true,
        }
    }

    /// The `NoProofs` configuration: signatures and their verification are
    /// free (not performed), only message overhead remains.
    pub fn no_proofs() -> Self {
        CostModel {
            enabled: false,
            ..Self::ed25519_default()
        }
    }

    /// Cost of computing or verifying a request MAC.
    pub fn mac_cost(&self) -> Duration {
        if self.enabled {
            self.mac
        } else {
            Duration::ZERO
        }
    }

    /// Cost of signing one message.
    pub fn sign_cost(&self) -> Duration {
        if self.enabled {
            self.sign
        } else {
            Duration::ZERO
        }
    }

    /// Cost of verifying one signature.
    pub fn verify_cost(&self) -> Duration {
        if self.enabled {
            self.verify
        } else {
            Duration::ZERO
        }
    }

    /// Cost of verifying `count` signatures.
    pub fn verify_many(&self, count: u64) -> Duration {
        if self.enabled {
            Duration::from_nanos(self.verify.as_nanos() * count)
        } else {
            Duration::ZERO
        }
    }

    /// Cost of hashing `bytes` bytes.
    pub fn hash_cost(&self, bytes: usize) -> Duration {
        if !self.enabled {
            return Duration::ZERO;
        }
        let blocks = (bytes as u64).div_ceil(256).max(1);
        Duration::from_nanos(self.hash_per_256b.as_nanos() * blocks)
    }

    /// Cost of building a Merkle tree over a batch of `batch_size` replies of
    /// roughly `reply_bytes` bytes each, plus signing the root. This is the
    /// replica-side cost of one reply batch (Section 4.4): batching divides
    /// the signature cost by `b` but adds `O(b)` hashing.
    pub fn batch_sign_cost(&self, batch_size: usize, reply_bytes: usize) -> Duration {
        if !self.enabled {
            return Duration::ZERO;
        }
        // One leaf hash per reply plus ~one interior hash per reply.
        let hashing =
            Duration::from_nanos(self.hash_cost(reply_bytes).as_nanos() * 2 * batch_size as u64);
        self.sign + hashing
    }

    /// The Merkle-path recomputation cost of one batched reply: the leaf
    /// hash plus the log2(b) sibling hashes up to the root.
    fn reply_path_cost(&self, batch_size: usize, reply_bytes: usize) -> Duration {
        let depth = (batch_size.max(1) as f64).log2().ceil() as u64 + 1;
        Duration::from_nanos(self.hash_cost(reply_bytes).as_nanos() * depth)
    }

    /// Client-side cost of validating one batched reply: recompute the leaf
    /// and the log2(b) path hashes, plus a signature verification unless the
    /// root signature was already cached.
    pub fn batch_verify_cost(
        &self,
        batch_size: usize,
        reply_bytes: usize,
        signature_cached: bool,
    ) -> Duration {
        if !self.enabled {
            return Duration::ZERO;
        }
        let hashing = self.reply_path_cost(batch_size, reply_bytes);
        if signature_cached {
            hashing
        } else {
            hashing + self.verify
        }
    }

    /// Client-side cost of validating a batched reply whose root signature
    /// is co-verified with other roots from the same signer collected within
    /// one flush window. The Merkle path is still recomputed per reply, but
    /// ed25519 batch verification amortizes the shared scalar multiplication
    /// across the group, cutting the per-signature term to roughly half a
    /// standalone verification.
    pub fn grouped_batch_verify_cost(&self, batch_size: usize, reply_bytes: usize) -> Duration {
        if !self.enabled {
            return Duration::ZERO;
        }
        self.reply_path_cost(batch_size, reply_bytes) + self.verify / 2
    }

    /// Per-message serialization overhead (always charged, even in NoProofs
    /// mode, because it is not a cryptographic cost).
    pub fn message_cost(&self) -> Duration {
        self.message_overhead
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ed25519_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = CostModel::ed25519_default();
        assert!(
            c.verify > c.sign,
            "verification is costlier than signing for ed25519"
        );
        assert!(c.sign > Duration::from_micros(10));
        assert!(c.enabled);
    }

    #[test]
    fn no_proofs_zeroes_crypto_but_not_messages() {
        let c = CostModel::no_proofs();
        assert_eq!(c.sign_cost(), Duration::ZERO);
        assert_eq!(c.verify_cost(), Duration::ZERO);
        assert_eq!(c.hash_cost(1024), Duration::ZERO);
        assert_eq!(c.batch_sign_cost(16, 100), Duration::ZERO);
        assert!(c.message_cost() > Duration::ZERO);
    }

    #[test]
    fn hash_cost_scales_with_size() {
        let c = CostModel::ed25519_default();
        assert!(c.hash_cost(10_000) > c.hash_cost(1_000));
        assert_eq!(c.hash_cost(0), c.hash_cost(1));
        assert_eq!(c.hash_cost(256), c.hash_cost(200));
    }

    #[test]
    fn batching_amortizes_signatures() {
        let c = CostModel::ed25519_default();
        // Per-reply cost with batching should be below per-reply cost without.
        let unbatched_per_reply = c.batch_sign_cost(1, 128);
        let batched_16 = c.batch_sign_cost(16, 128);
        let batched_per_reply = Duration::from_nanos(batched_16.as_nanos() / 16);
        assert!(batched_per_reply < unbatched_per_reply);
        // But total batch cost grows with batch size (hashing overhead).
        assert!(batched_16 > unbatched_per_reply);
    }

    #[test]
    fn amortization_keeps_improving_through_batch_64() {
        // ROADMAP flagged batching > 16 as untested: per-reply signing cost
        // must keep strictly improving through batches of 32 and 64, and the
        // amortization ratio (unbatched / per-reply) must keep growing.
        let c = CostModel::ed25519_default();
        let per_reply = |b: usize| c.batch_sign_cost(b, 128).as_nanos() as f64 / b as f64;
        let unbatched = per_reply(1);
        let mut prev_ratio = 1.0;
        for b in [2usize, 4, 8, 16, 32, 64] {
            let ratio = unbatched / per_reply(b);
            assert!(
                ratio > prev_ratio,
                "batch {b}: ratio {ratio:.2} did not improve on {prev_ratio:.2}"
            );
            prev_ratio = ratio;
        }
        // At 64 the signature is almost fully amortized: the residual cost is
        // dominated by the two hashes per reply.
        assert!(prev_ratio > 10.0, "ratio at 64 only {prev_ratio:.2}");
    }

    #[test]
    fn cached_verification_is_cheaper() {
        let c = CostModel::ed25519_default();
        let cold = c.batch_verify_cost(16, 128, false);
        let warm = c.batch_verify_cost(16, 128, true);
        assert!(warm < cold);
        assert!(cold - warm >= c.verify - Duration::from_nanos(1));
    }

    #[test]
    fn grouped_verification_sits_between_cached_and_cold() {
        let c = CostModel::ed25519_default();
        let cold = c.batch_verify_cost(16, 128, false);
        let grouped = c.grouped_batch_verify_cost(16, 128);
        let warm = c.batch_verify_cost(16, 128, true);
        assert!(grouped < cold, "batch co-verification must beat standalone");
        assert!(
            grouped > warm,
            "co-verification still pays a signature share"
        );
        assert_eq!(c.grouped_batch_verify_cost(16, 128), grouped);
        assert_eq!(
            CostModel::no_proofs().grouped_batch_verify_cost(16, 128),
            Duration::ZERO
        );
    }

    #[test]
    fn verify_many_is_linear() {
        let c = CostModel::ed25519_default();
        assert_eq!(c.verify_many(0), Duration::ZERO);
        assert_eq!(c.verify_many(3).as_nanos(), c.verify.as_nanos() * 3);
    }
}
