//! Merkle trees and inclusion proofs.
//!
//! Basil replicas amortize signature generation by batching replies: the
//! replica builds a Merkle tree over the batch, signs only the root, and sends
//! each client its own reply together with the sibling path needed to
//! recompute the root (Section 4.4, Figure 2). This module provides the tree
//! and proof machinery; [`crate::batch`] wires it to signing.

use crate::digest::Digest;
use crate::sha256::Sha256;

/// Domain-separation prefixes so a leaf hash can never be confused with an
/// interior-node hash (second-preimage hardening).
const LEAF_PREFIX: &[u8] = &[0x00];
const NODE_PREFIX: &[u8] = &[0x01];

/// Hashes a leaf payload.
pub fn leaf_hash(data: &[u8]) -> Digest {
    Sha256::digest_parts(&[LEAF_PREFIX, data])
}

/// Hashes two child digests into a parent digest.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    Sha256::digest_parts(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// A Merkle tree over a batch of leaf payloads.
///
/// The tree keeps every level so inclusion proofs can be extracted for any
/// leaf. An odd node at the end of a level is promoted (paired with itself is
/// avoided; we copy it up unchanged), matching the common "Bitcoin-style
/// duplicate-free" construction.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` holds the leaf hashes; the last level holds the root only.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: the sibling digests from the leaf up to the root,
/// together with the leaf's index (the index encodes left/right orientation
/// at each level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf within the batch.
    pub leaf_index: usize,
    /// Number of leaves in the batch.
    pub leaf_count: usize,
    /// Sibling hashes from the leaf level upward. Levels where the node has
    /// no sibling (odd tail) contribute `None`.
    pub siblings: Vec<Option<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaf payloads. Panics if `leaves` is empty.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let leaf_level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(leaf_level)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaf_hashes(leaf_level: Vec<Digest>) -> Self {
        assert!(
            !leaf_level.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_level];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(node_hash(&prev[i], &prev[i + 1]));
                } else {
                    // Odd tail: promote unchanged.
                    next.push(prev[i]);
                }
                i += 2;
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest of the tree.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Extracts the inclusion proof for leaf `index`. Panics if out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            siblings.push(level.get(sibling_idx).copied());
            idx /= 2;
        }
        MerkleProof {
            leaf_index: index,
            leaf_count: self.leaf_count(),
            siblings,
        }
    }
}

impl MerkleProof {
    /// Recomputes the root implied by this proof for the given leaf payload.
    pub fn compute_root(&self, leaf_payload: &[u8]) -> Digest {
        self.compute_root_from_hash(leaf_hash(leaf_payload))
    }

    /// Recomputes the root starting from an already-hashed leaf.
    pub fn compute_root_from_hash(&self, leaf: Digest) -> Digest {
        let mut current = leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            current = match sibling {
                Some(s) if idx.is_multiple_of(2) => node_hash(&current, s),
                Some(s) => node_hash(s, &current),
                // Odd tail: node promoted unchanged.
                None => current,
            };
            idx /= 2;
        }
        current
    }

    /// Verifies that `leaf_payload` is included under `expected_root`.
    pub fn verify(&self, leaf_payload: &[u8], expected_root: &Digest) -> bool {
        self.compute_root(leaf_payload) == *expected_root
    }

    /// The number of sibling hashes shipped with the proof (log2 of batch size).
    pub fn len(&self) -> usize {
        self.siblings.len()
    }

    /// True when the proof is for a single-leaf batch.
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("reply-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::build(&[b"only".as_slice()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0);
        assert!(proof.verify(b"only", &tree.root()));
        assert!(proof.is_empty());
    }

    #[test]
    fn proofs_verify_for_all_leaves_and_sizes() {
        for n in 1..=33usize {
            let leaves = payloads(n);
            let tree = MerkleTree::build(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(
                    proof.verify(leaf, &tree.root()),
                    "proof failed for leaf {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_payload() {
        let leaves = payloads(8);
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(3);
        assert!(!proof.verify(b"reply-4", &tree.root()));
        assert!(!proof.verify(b"garbage", &tree.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let leaves = payloads(8);
        let tree = MerkleTree::build(&leaves);
        let other = MerkleTree::build(&payloads(7));
        let proof = tree.prove(0);
        assert!(!proof.verify(b"reply-0", &other.root()));
    }

    #[test]
    fn proof_rejects_transplanted_index() {
        let leaves = payloads(8);
        let tree = MerkleTree::build(&leaves);
        let mut proof = tree.prove(2);
        proof.leaf_index = 3;
        assert!(!proof.verify(b"reply-2", &tree.root()));
    }

    #[test]
    fn different_batches_have_different_roots() {
        let a = MerkleTree::build(&payloads(8));
        let b = MerkleTree::build(&payloads(9));
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf whose payload happens to equal two concatenated digests must
        // not hash to the same value as the interior node over those digests.
        let l = leaf_hash(b"x");
        let r = leaf_hash(b"y");
        let mut concat = Vec::new();
        concat.extend_from_slice(l.as_bytes());
        concat.extend_from_slice(r.as_bytes());
        assert_ne!(leaf_hash(&concat), node_hash(&l, &r));
    }

    #[test]
    fn proof_depth_is_logarithmic() {
        let tree = MerkleTree::build(&payloads(16));
        assert_eq!(tree.prove(0).len(), 4);
        let tree = MerkleTree::build(&payloads(32));
        assert_eq!(tree.prove(31).len(), 5);
    }
}
