//! Merkle trees and inclusion proofs.
//!
//! Basil replicas amortize signature generation by batching replies: the
//! replica builds a Merkle tree over the batch, signs only the root, and sends
//! each client its own reply together with the sibling path needed to
//! recompute the root (Section 4.4, Figure 2). This module provides the tree
//! and proof machinery — the one-shot [`MerkleTree`] and the incremental
//! [`MerkleFrontier`] used on the reply-batching hot path; [`crate::batch`]
//! wires them to signing.

use crate::digest::Digest;
use crate::sha256::Sha256;

/// Domain-separation prefixes so a leaf hash can never be confused with an
/// interior-node hash (second-preimage hardening).
const LEAF_PREFIX: &[u8] = &[0x00];
const NODE_PREFIX: &[u8] = &[0x01];

/// Hashes a leaf payload.
pub fn leaf_hash(data: &[u8]) -> Digest {
    Sha256::digest_parts(&[LEAF_PREFIX, data])
}

/// Hashes two child digests into a parent digest.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    Sha256::digest_parts(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// A Merkle tree over a batch of leaf payloads.
///
/// The tree keeps every level so inclusion proofs can be extracted for any
/// leaf. An odd node at the end of a level is promoted (paired with itself is
/// avoided; we copy it up unchanged), matching the common "Bitcoin-style
/// duplicate-free" construction.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` holds the leaf hashes; the last level holds the root only.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: the sibling digests from the leaf up to the root,
/// together with the leaf's index (the index encodes left/right orientation
/// at each level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf within the batch.
    pub leaf_index: usize,
    /// Number of leaves in the batch.
    pub leaf_count: usize,
    /// Sibling hashes from the leaf level upward. Levels where the node has
    /// no sibling (odd tail) contribute `None`.
    pub siblings: Vec<Option<Digest>>,
}

/// Extracts the inclusion proof for leaf `index` from fully materialized
/// levels (`levels[0]` = leaf hashes, last level = root). Shared by
/// [`MerkleTree::prove`] and [`SealedFrontier::prove`] so the two
/// constructions emit bit-identical proofs.
fn prove_levels(levels: &[Vec<Digest>], index: usize) -> MerkleProof {
    let leaf_count = levels[0].len();
    assert!(index < leaf_count, "leaf index out of range");
    let mut siblings = Vec::with_capacity(levels.len().saturating_sub(1));
    let mut idx = index;
    for level in &levels[..levels.len() - 1] {
        let sibling_idx = if idx.is_multiple_of(2) {
            idx + 1
        } else {
            idx - 1
        };
        siblings.push(level.get(sibling_idx).copied());
        idx /= 2;
    }
    MerkleProof {
        leaf_index: index,
        leaf_count,
        siblings,
    }
}

impl MerkleTree {
    /// Builds a tree over the given leaf payloads. Panics if `leaves` is empty.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let leaf_level: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(leaf_level)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaf_hashes(leaf_level: Vec<Digest>) -> Self {
        assert!(
            !leaf_level.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_level];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(node_hash(&prev[i], &prev[i + 1]));
                } else {
                    // Odd tail: promote unchanged.
                    next.push(prev[i]);
                }
                i += 2;
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest of the tree.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Extracts the inclusion proof for leaf `index`. Panics if out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        prove_levels(&self.levels, index)
    }
}

/// An incremental Merkle accumulator for reply batching.
///
/// [`MerkleTree::build`] re-hashes every leaf at flush time, so a batch of
/// `b` replies pays `O(b)` leaf hashes plus the full interior rebuild in one
/// burst on the flush path. The frontier instead hashes each leaf when it is
/// appended and eagerly folds completed sibling pairs upward (a binary-carry
/// walk: amortized `O(1)` interior hashes per append, `O(log b)` worst
/// case), so [`MerkleFrontier::seal`] only has to materialize the odd-tail
/// promotions along the right edge — `O(log b)` work — before handing out
/// the root and inclusion proofs.
///
/// The sealed levels are bit-identical to what [`MerkleTree::build`] produces
/// for the same payload sequence: same root, same proofs (pinned by tests
/// for every batch size 1..=257).
///
/// Lifecycle: `append` leaves, `seal` to extract root/proofs, then `reset`
/// before the next batch. `reset` keeps the per-level allocations, so a
/// long-lived signer reaches a steady state with zero allocation per batch.
#[derive(Clone, Debug, Default)]
pub struct MerkleFrontier {
    /// `levels[0]` holds leaf hashes; `levels[i + 1]` holds the hashes of
    /// completed sibling pairs of `levels[i]`. Between `seal` and `reset`
    /// the prefix `levels[..sealed_depth]` is fully materialized (equal to
    /// [`MerkleTree`]'s levels).
    levels: Vec<Vec<Digest>>,
    /// Number of levels in use by the sealed tree; 0 while accumulating.
    sealed_depth: usize,
}

/// A sealed view of a [`MerkleFrontier`]: the fully materialized tree for
/// the current batch, from which the root and inclusion proofs are read.
#[derive(Debug)]
pub struct SealedFrontier<'a> {
    levels: &'a [Vec<Digest>],
}

impl MerkleFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        MerkleFrontier {
            levels: vec![Vec::new()],
            sealed_depth: 0,
        }
    }

    /// Appends one leaf payload, hashing it and folding completed sibling
    /// pairs upward.
    pub fn append(&mut self, payload: &[u8]) {
        self.append_leaf_hash(leaf_hash(payload));
    }

    /// Appends an already-hashed leaf.
    pub fn append_leaf_hash(&mut self, leaf: Digest) {
        assert_eq!(self.sealed_depth, 0, "reset a sealed frontier first");
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(leaf);
        // Binary carry: whenever a level's length turns even, its last two
        // entries form a finished sibling pair — fold them into the level
        // above and continue there.
        let mut i = 0;
        while self.levels[i].len().is_multiple_of(2) {
            let len = self.levels[i].len();
            let parent = node_hash(&self.levels[i][len - 2], &self.levels[i][len - 1]);
            if i + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            self.levels[i + 1].push(parent);
            i += 1;
        }
    }

    /// Number of leaves appended since the last reset.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// True when no leaves have been appended since the last reset.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Completes the tree for the current batch and returns a view exposing
    /// the root and inclusion proofs. Panics on an empty frontier.
    ///
    /// Appends eagerly folded every *completed* pair, so the only missing
    /// interior nodes are along the right edge: per level, at most one
    /// odd-tail promotion or one final pair — an `O(log b)` walk.
    pub fn seal(&mut self) -> SealedFrontier<'_> {
        assert!(!self.is_empty(), "cannot seal an empty frontier");
        if self.sealed_depth == 0 {
            let mut i = 0;
            self.sealed_depth = loop {
                let len = self.levels[i].len();
                if len == 1 {
                    break i + 1;
                }
                let folded = self.levels.get(i + 1).map_or(0, Vec::len);
                let carry = match len - 2 * folded {
                    0 => None,
                    // Odd tail: promote unchanged, as `from_leaf_hashes` does.
                    1 => Some(self.levels[i][len - 1]),
                    2 => Some(node_hash(
                        &self.levels[i][len - 2],
                        &self.levels[i][len - 1],
                    )),
                    _ => unreachable!("append leaves at most one unfolded pair per level"),
                };
                if let Some(digest) = carry {
                    if i + 1 == self.levels.len() {
                        self.levels.push(Vec::new());
                    }
                    self.levels[i + 1].push(digest);
                }
                i += 1;
            };
        }
        SealedFrontier {
            levels: &self.levels[..self.sealed_depth],
        }
    }

    /// Clears the frontier for the next batch, retaining the per-level
    /// allocations.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
        self.sealed_depth = 0;
    }
}

impl SealedFrontier<'_> {
    /// The root digest of the sealed batch.
    pub fn root(&self) -> Digest {
        self.levels[self.levels.len() - 1][0]
    }

    /// Number of leaves in the sealed batch.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Extracts the inclusion proof for leaf `index`; bit-identical to
    /// [`MerkleTree::prove`] over the same payloads.
    pub fn prove(&self, index: usize) -> MerkleProof {
        prove_levels(self.levels, index)
    }
}

impl MerkleProof {
    /// Recomputes the root implied by this proof for the given leaf payload.
    pub fn compute_root(&self, leaf_payload: &[u8]) -> Digest {
        self.compute_root_from_hash(leaf_hash(leaf_payload))
    }

    /// Recomputes the root starting from an already-hashed leaf.
    pub fn compute_root_from_hash(&self, leaf: Digest) -> Digest {
        let mut current = leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            current = match sibling {
                Some(s) if idx.is_multiple_of(2) => node_hash(&current, s),
                Some(s) => node_hash(s, &current),
                // Odd tail: node promoted unchanged.
                None => current,
            };
            idx /= 2;
        }
        current
    }

    /// Verifies that `leaf_payload` is included under `expected_root`.
    pub fn verify(&self, leaf_payload: &[u8], expected_root: &Digest) -> bool {
        self.compute_root(leaf_payload) == *expected_root
    }

    /// The number of sibling hashes shipped with the proof (log2 of batch size).
    pub fn len(&self) -> usize {
        self.siblings.len()
    }

    /// True when the proof is for a single-leaf batch.
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("reply-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::build(&[b"only".as_slice()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0);
        assert!(proof.verify(b"only", &tree.root()));
        assert!(proof.is_empty());
    }

    #[test]
    fn proofs_verify_for_all_leaves_and_sizes() {
        for n in 1..=33usize {
            let leaves = payloads(n);
            let tree = MerkleTree::build(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(
                    proof.verify(leaf, &tree.root()),
                    "proof failed for leaf {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_payload() {
        let leaves = payloads(8);
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(3);
        assert!(!proof.verify(b"reply-4", &tree.root()));
        assert!(!proof.verify(b"garbage", &tree.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let leaves = payloads(8);
        let tree = MerkleTree::build(&leaves);
        let other = MerkleTree::build(&payloads(7));
        let proof = tree.prove(0);
        assert!(!proof.verify(b"reply-0", &other.root()));
    }

    #[test]
    fn proof_rejects_transplanted_index() {
        let leaves = payloads(8);
        let tree = MerkleTree::build(&leaves);
        let mut proof = tree.prove(2);
        proof.leaf_index = 3;
        assert!(!proof.verify(b"reply-2", &tree.root()));
    }

    #[test]
    fn different_batches_have_different_roots() {
        let a = MerkleTree::build(&payloads(8));
        let b = MerkleTree::build(&payloads(9));
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf whose payload happens to equal two concatenated digests must
        // not hash to the same value as the interior node over those digests.
        let l = leaf_hash(b"x");
        let r = leaf_hash(b"y");
        let mut concat = Vec::new();
        concat.extend_from_slice(l.as_bytes());
        concat.extend_from_slice(r.as_bytes());
        assert_ne!(leaf_hash(&concat), node_hash(&l, &r));
    }

    #[test]
    fn proof_depth_is_logarithmic() {
        let tree = MerkleTree::build(&payloads(16));
        assert_eq!(tree.prove(0).len(), 4);
        let tree = MerkleTree::build(&payloads(32));
        assert_eq!(tree.prove(31).len(), 5);
    }

    /// The tentpole pin: for every batch size 1..=257 (crossing every
    /// power-of-two boundary up to 256), the incremental frontier yields the
    /// same root and bit-identical inclusion proofs as the one-shot build.
    #[test]
    fn frontier_matches_build_for_sizes_1_through_257() {
        let mut frontier = MerkleFrontier::new();
        for n in 1..=257usize {
            let leaves = payloads(n);
            let tree = MerkleTree::build(&leaves);
            frontier.reset();
            for leaf in &leaves {
                frontier.append(leaf);
            }
            assert_eq!(frontier.len(), n);
            let sealed = frontier.seal();
            assert_eq!(sealed.root(), tree.root(), "root mismatch at n={n}");
            assert_eq!(sealed.leaf_count(), n);
            for i in 0..n {
                assert_eq!(
                    sealed.prove(i),
                    tree.prove(i),
                    "proof mismatch at leaf {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn frontier_seal_is_idempotent_and_reset_reuses_allocations() {
        let mut frontier = MerkleFrontier::new();
        for leaf in payloads(5) {
            frontier.append(&leaf);
        }
        let root_a = frontier.seal().root();
        let root_b = frontier.seal().root();
        assert_eq!(root_a, root_b, "sealing twice must not re-carry");
        assert_eq!(root_a, MerkleTree::build(&payloads(5)).root());

        frontier.reset();
        assert!(frontier.is_empty());
        for leaf in payloads(8) {
            frontier.append(&leaf);
        }
        assert_eq!(
            frontier.seal().root(),
            MerkleTree::build(&payloads(8)).root(),
            "a reused frontier must not leak state from the previous batch"
        );
    }

    #[test]
    #[should_panic(expected = "cannot seal an empty frontier")]
    fn sealing_an_empty_frontier_panics() {
        let _ = MerkleFrontier::new().seal();
    }

    #[test]
    #[should_panic(expected = "reset a sealed frontier first")]
    fn appending_to_a_sealed_frontier_panics() {
        let mut frontier = MerkleFrontier::new();
        frontier.append(b"x");
        let _ = frontier.seal();
        frontier.append(b"y");
    }
}
