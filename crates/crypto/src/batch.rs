//! Reply batching and the signature cache (Section 4.4, Figure 2).
//!
//! Basil has no central sequencer, so batching happens at each replica after
//! message processing: the replica collects `b` pending reply payloads, builds
//! a Merkle tree over them, signs only the root, and sends every client its
//! reply plus (root, signature, sibling path). Verifiers recompute the root
//! from the reply and the path, verify the root signature once, and cache the
//! (root, signature) pair so other replies from the same batch verify with a
//! hash-only check.

use crate::digest::Digest;
use crate::merkle::{MerkleFrontier, MerkleProof, MerkleTree};
use crate::sig::{KeyPair, KeyRegistry, Signature};
use basil_common::{BoundedFifoMap, NodeId};

/// Everything a recipient needs to authenticate one reply out of a batch.
#[derive(Clone, Debug)]
pub struct BatchProof {
    /// Root of the batch's Merkle tree.
    pub root: Digest,
    /// The replica's signature over the root.
    pub root_signature: Signature,
    /// Inclusion proof tying the recipient's reply to the root.
    pub inclusion: MerkleProof,
    /// Number of replies that shared this signature (for accounting/metrics).
    pub batch_size: usize,
}

impl BatchProof {
    /// Signs a single payload, producing a one-leaf "batch". This is how
    /// clients (which have nothing to batch) and unbatched replicas sign
    /// messages, so the whole protocol uses one proof type.
    pub fn sign_single(keypair: &KeyPair, payload: &[u8]) -> BatchProof {
        let tree = MerkleTree::build(&[payload]);
        let root = tree.root();
        BatchProof {
            root,
            root_signature: keypair.sign(root.as_bytes()),
            inclusion: tree.prove(0),
            batch_size: 1,
        }
    }

    /// The node that signed the batch root.
    pub fn signer(&self) -> NodeId {
        self.root_signature.signer
    }

    /// Verifies this proof for `reply_payload`, using (and updating) the
    /// verifier's signature cache. Returns `true` when the reply is
    /// authenticated, along with whether a signature verification was
    /// actually performed (`false` on a cache hit) so callers can charge the
    /// appropriate CPU cost.
    pub fn verify(
        &self,
        reply_payload: &[u8],
        registry: &KeyRegistry,
        cache: &mut SignatureCache,
    ) -> BatchVerifyOutcome {
        let computed_root = self.inclusion.compute_root(reply_payload);
        if computed_root != self.root {
            return BatchVerifyOutcome::invalid();
        }
        if cache.contains(&self.root, &self.root_signature) {
            return BatchVerifyOutcome {
                valid: true,
                signature_checked: false,
            };
        }
        let ok = registry.verify(self.root.as_bytes(), &self.root_signature);
        if ok {
            cache.insert(self.root, self.root_signature);
        }
        BatchVerifyOutcome {
            valid: ok,
            signature_checked: true,
        }
    }
}

/// Result of verifying a batched reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchVerifyOutcome {
    /// Whether the reply is authentic.
    pub valid: bool,
    /// Whether a full signature verification was performed (false on a
    /// signature-cache hit, where only hashing was needed).
    pub signature_checked: bool,
}

impl BatchVerifyOutcome {
    fn invalid() -> Self {
        BatchVerifyOutcome {
            valid: false,
            signature_checked: false,
        }
    }
}

/// A replica-side accumulator that turns pending replies into signed batches.
///
/// Payloads are hashed into an incremental [`MerkleFrontier`] the moment they
/// are queued, so the signer never stores reply bytes and the flush path no
/// longer rebuilds the whole tree: it seals the frontier (an `O(log b)`
/// right-edge walk), signs the root once, and extracts each recipient's
/// inclusion proof.
#[derive(Debug)]
pub struct BatchSigner {
    keypair: KeyPair,
    batch_size: usize,
    frontier: MerkleFrontier,
    recipients: Vec<NodeId>,
    /// Statistics: total replies signed and total signatures produced.
    replies_signed: u64,
    signatures_produced: u64,
}

impl BatchSigner {
    /// Creates a signer that flushes automatically once `batch_size` replies
    /// accumulate. A `batch_size` of 1 disables batching (every reply gets
    /// its own signature).
    pub fn new(keypair: KeyPair, batch_size: usize) -> Self {
        BatchSigner {
            keypair,
            batch_size: batch_size.max(1),
            frontier: MerkleFrontier::new(),
            recipients: Vec::new(),
            replies_signed: 0,
            signatures_produced: 0,
        }
    }

    /// Queues a reply for `recipient`, folding its hash into the batch
    /// frontier immediately. Returns the signed batch if this addition
    /// filled the batch, `None` otherwise.
    pub fn push(&mut self, recipient: NodeId, payload: &[u8]) -> Option<Vec<(NodeId, BatchProof)>> {
        self.frontier.append(payload);
        self.recipients.push(recipient);
        if self.recipients.len() >= self.batch_size {
            Some(self.flush())
        } else {
            None
        }
    }

    /// Number of replies currently waiting for a batch to fill.
    pub fn pending_len(&self) -> usize {
        self.recipients.len()
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Signs whatever is pending (used on batch timeout). Returns an empty
    /// vector if nothing is pending.
    pub fn flush(&mut self) -> Vec<(NodeId, BatchProof)> {
        if self.recipients.is_empty() {
            return Vec::new();
        }
        let sealed = self.frontier.seal();
        let root = sealed.root();
        let root_signature = self.keypair.sign(root.as_bytes());
        self.signatures_produced += 1;
        self.replies_signed += self.recipients.len() as u64;
        let batch_len = self.recipients.len();
        let out = self
            .recipients
            .drain(..)
            .enumerate()
            .map(|(i, recipient)| {
                (
                    recipient,
                    BatchProof {
                        root,
                        root_signature,
                        inclusion: sealed.prove(i),
                        batch_size: batch_len,
                    },
                )
            })
            .collect();
        self.frontier.reset();
        out
    }

    /// Number of replies signed so far.
    pub fn replies_signed(&self) -> u64 {
        self.replies_signed
    }

    /// Number of root signatures produced so far. The ratio
    /// `replies_signed / signatures_produced` is the achieved amortization.
    pub fn signatures_produced(&self) -> u64 {
        self.signatures_produced
    }
}

/// A verifier-side cache mapping Merkle roots to already-verified signatures.
///
/// When a replica later receives another message carrying the same root and
/// signature (i.e. another reply from the same batch), it can skip the
/// signature verification after checking the root recomputation.
///
/// The cache is **bounded**: batch roots only ever pay off while their batch
/// is in flight, so entries are evicted in insertion (FIFO) order once
/// [`SignatureCache::capacity`] is reached. Without the bound the map grows
/// by one root per batch for the lifetime of a node. Roots are SHA-256
/// digests, so the map uses `basil_common::fasthash` instead of SipHash.
#[derive(Debug)]
pub struct SignatureCache {
    /// The verified `(root, signature)` pairs, FIFO-bounded. The map
    /// structure is the shared [`BoundedFifoMap`] primitive (also behind the
    /// client-side validated-certificate cache).
    verified: BoundedFifoMap<Digest, Signature>,
    hits: u64,
    misses: u64,
}

impl Default for SignatureCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl SignatureCache {
    /// Default bound on cached roots. A batch's proofs arrive within one
    /// round trip of each other, so the working set at any moment is roughly
    /// (in-flight batches x peers); 8192 roots (~0.75 MiB) is far above that
    /// for every deployment in the evaluation while keeping a long-running
    /// node's memory flat.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache bounded to `capacity` roots (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SignatureCache {
            verified: BoundedFifoMap::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns true if `(root, sig)` was verified before. Updates hit/miss
    /// statistics.
    pub fn contains(&mut self, root: &Digest, sig: &Signature) -> bool {
        match self.verified.get(root) {
            Some(cached) if cached == sig => {
                self.hits += 1;
                true
            }
            _ => {
                self.misses += 1;
                false
            }
        }
    }

    /// Records a successfully verified root signature, evicting the oldest
    /// entry if the cache is full.
    pub fn insert(&mut self, root: Digest, sig: Signature) {
        self.verified.insert(root, sig);
    }

    /// Fused [`SignatureCache::contains`] + [`SignatureCache::insert`]:
    /// returns whether `(root, sig)` was already verified, recording it if
    /// not — identical statistics and eviction behaviour to the two-call
    /// sequence, at one hash lookup instead of two. This is the
    /// simulated-crypto hot path (one call per verification).
    pub fn check_insert(&mut self, root: Digest, sig: Signature) -> bool {
        let hit = self
            .verified
            .check_insert(root, sig, |cached| *cached == sig);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Number of cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted to keep the cache within its capacity.
    pub fn evictions(&self) -> u64 {
        self.verified.evictions()
    }

    /// The configured bound on cached roots.
    pub fn capacity(&self) -> usize {
        self.verified.capacity()
    }

    /// Number of distinct roots cached.
    pub fn len(&self) -> usize {
        self.verified.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.verified.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{ClientId, ReplicaId, ShardId};

    fn replica_node() -> NodeId {
        NodeId::Replica(ReplicaId::new(ShardId(0), 0))
    }

    fn client(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }

    fn setup(batch: usize) -> (BatchSigner, KeyRegistry) {
        let reg = KeyRegistry::from_seed(99);
        let signer = BatchSigner::new(reg.keypair(replica_node()), batch);
        (signer, reg)
    }

    #[test]
    fn batch_of_one_signs_immediately() {
        let (mut signer, reg) = setup(1);
        let out = signer.push(client(1), b"reply");
        let out = out.expect("batch of one flushes immediately");
        assert_eq!(out.len(), 1);
        let mut cache = SignatureCache::new();
        let outcome = out[0].1.verify(b"reply", &reg, &mut cache);
        assert!(outcome.valid);
        assert!(outcome.signature_checked);
        assert_eq!(signer.signatures_produced(), 1);
        assert_eq!(signer.replies_signed(), 1);
    }

    #[test]
    fn batch_flushes_when_full_and_all_replies_verify() {
        let (mut signer, reg) = setup(4);
        assert!(signer.push(client(1), b"r1").is_none());
        assert!(signer.push(client(2), b"r2").is_none());
        assert!(signer.push(client(3), b"r3").is_none());
        let out = signer.push(client(4), b"r4").expect("4th fills batch");
        assert_eq!(out.len(), 4);
        assert_eq!(signer.signatures_produced(), 1);
        assert_eq!(signer.replies_signed(), 4);

        let mut cache = SignatureCache::new();
        for (i, (recipient, proof)) in out.iter().enumerate() {
            assert_eq!(*recipient, client(i as u64 + 1));
            let payload = format!("r{}", i + 1);
            let outcome = proof.verify(payload.as_bytes(), &reg, &mut cache);
            assert!(outcome.valid, "reply {i} failed");
        }
    }

    #[test]
    fn signature_cache_skips_repeat_verification() {
        let (mut signer, reg) = setup(3);
        signer.push(client(1), b"a");
        signer.push(client(2), b"b");
        let out = signer.push(client(3), b"c").expect("flush");
        let mut cache = SignatureCache::new();
        let first = out[0].1.verify(b"a", &reg, &mut cache);
        assert!(first.valid && first.signature_checked);
        let second = out[1].1.verify(b"b", &reg, &mut cache);
        assert!(
            second.valid && !second.signature_checked,
            "should hit cache"
        );
        let third = out[2].1.verify(b"c", &reg, &mut cache);
        assert!(third.valid && !third.signature_checked);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tampered_reply_is_rejected_before_signature_check() {
        let (mut signer, reg) = setup(2);
        signer.push(client(1), b"honest");
        let out = signer.push(client(2), b"other").expect("flush");
        let mut cache = SignatureCache::new();
        let outcome = out[0].1.verify(b"forged", &reg, &mut cache);
        assert!(!outcome.valid);
        assert!(!outcome.signature_checked, "root mismatch short-circuits");
    }

    #[test]
    fn signature_from_wrong_replica_is_rejected() {
        let reg = KeyRegistry::from_seed(99);
        let other_key = reg.keypair(NodeId::Replica(ReplicaId::new(ShardId(0), 5)));
        let mut signer = BatchSigner::new(other_key, 1);
        let out = signer.push(client(1), b"reply").expect("flush");
        // Forge the claimed signer: verification must fail because the tag
        // was produced under replica 5's key.
        let mut proof = out[0].1.clone();
        proof.root_signature.signer = replica_node();
        let mut cache = SignatureCache::new();
        assert!(!proof.verify(b"reply", &reg, &mut cache).valid);
    }

    #[test]
    fn manual_flush_on_timeout_signs_partial_batch() {
        let (mut signer, reg) = setup(16);
        signer.push(client(1), b"x");
        signer.push(client(2), b"y");
        assert_eq!(signer.pending_len(), 2);
        let out = signer.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(signer.pending_len(), 0);
        let mut cache = SignatureCache::new();
        assert!(out[0].1.verify(b"x", &reg, &mut cache).valid);
        assert!(out[1].1.verify(b"y", &reg, &mut cache).valid);
        assert!(signer.flush().is_empty(), "nothing left to flush");
    }

    #[test]
    fn cache_is_bounded_with_fifo_eviction() {
        let reg = KeyRegistry::from_seed(3);
        let kp = reg.keypair(replica_node());
        let mut cache = SignatureCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let proofs: Vec<BatchProof> = (0..3u8)
            .map(|i| BatchProof::sign_single(&kp, &[i]))
            .collect();
        for p in &proofs {
            cache.insert(p.root, p.root_signature);
        }
        // Capacity 2: the oldest root (proofs[0]) was evicted.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.contains(&proofs[0].root, &proofs[0].root_signature));
        assert!(cache.contains(&proofs[1].root, &proofs[1].root_signature));
        assert!(cache.contains(&proofs[2].root, &proofs[2].root_signature));
        // Stats survived the eviction: 1 miss (evicted probe) + 2 hits.
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        // An evicted root re-verifies and re-enters the cache.
        assert!(proofs[0].verify(&[0u8], &reg, &mut cache).signature_checked);
        assert!(cache.contains(&proofs[0].root, &proofs[0].root_signature));
    }

    #[test]
    fn reinserting_a_cached_root_does_not_evict() {
        let reg = KeyRegistry::from_seed(4);
        let kp = reg.keypair(replica_node());
        let mut cache = SignatureCache::with_capacity(2);
        let a = BatchProof::sign_single(&kp, b"a");
        let b = BatchProof::sign_single(&kp, b"b");
        cache.insert(a.root, a.root_signature);
        cache.insert(b.root, b.root_signature);
        cache.insert(a.root, a.root_signature); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.contains(&b.root, &b.root_signature));
    }

    #[test]
    fn default_capacity_absorbs_a_full_run_without_evictions() {
        let mut cache = SignatureCache::new();
        assert_eq!(cache.capacity(), SignatureCache::DEFAULT_CAPACITY);
        assert!(cache.is_empty());
        // The 96-client bench run produces ~1k-2k distinct batch roots per
        // replica per window; insert double that and require zero evictions,
        // and require that an early root still hits afterwards.
        let reg = KeyRegistry::from_seed(6);
        let kp = reg.keypair(replica_node());
        let first = BatchProof::sign_single(&kp, &0u32.to_be_bytes());
        for i in 0u32..4096 {
            let p = BatchProof::sign_single(&kp, &i.to_be_bytes());
            cache.insert(p.root, p.root_signature);
        }
        assert_eq!(cache.evictions(), 0);
        assert!(cache.contains(&first.root, &first.root_signature));
    }

    #[test]
    fn sign_single_round_trip() {
        let reg = KeyRegistry::from_seed(5);
        let kp = reg.keypair(replica_node());
        let proof = BatchProof::sign_single(&kp, b"vote: commit tx 9");
        assert_eq!(proof.batch_size, 1);
        assert_eq!(proof.signer(), replica_node());
        let mut cache = SignatureCache::new();
        assert!(proof.verify(b"vote: commit tx 9", &reg, &mut cache).valid);
        assert!(!proof.verify(b"vote: abort tx 9", &reg, &mut cache).valid);
    }

    #[test]
    fn amortization_ratio_matches_batch_size() {
        let (mut signer, _reg) = setup(8);
        for round in 0..4 {
            for i in 0..8 {
                signer.push(client(i), format!("p{round}-{i}").as_bytes());
            }
        }
        assert_eq!(signer.replies_signed(), 32);
        assert_eq!(signer.signatures_produced(), 4);
    }
}
