//! HMAC-SHA-256 (RFC 2104), built on the from-scratch [`Sha256`].

use crate::digest::Digest;
use crate::sha256::Sha256;

const BLOCK_SIZE: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    hmac_sha256_parts(key, &[message])
}

/// Computes `HMAC-SHA256(key, m_0 || m_1 || ...)` without materializing the
/// concatenated message.
pub fn hmac_sha256_parts(key: &[u8], message_parts: &[&[u8]]) -> Digest {
    // Keys longer than one block are hashed first; shorter keys are padded
    // with zeros to the block size.
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let hashed = Sha256::digest(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_SIZE];
    let mut opad = [0u8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] = key_block[i] ^ IPAD;
        opad[i] = key_block[i] ^ OPAD;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    for part in message_parts {
        inner.update(part);
    }
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.to_hex()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hex(&hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_match_concatenation() {
        let key = b"secret key";
        let tag1 = hmac_sha256(key, b"hello world");
        let tag2 = hmac_sha256_parts(key, &[b"hello", b" ", b"world"]);
        assert_eq!(tag1, tag2);
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(hmac_sha256(b"key1", b"msg"), hmac_sha256(b"key2", b"msg"));
        assert_ne!(hmac_sha256(b"key", b"msg1"), hmac_sha256(b"key", b"msg2"));
    }
}
