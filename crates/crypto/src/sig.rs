//! Per-node signatures and the verification key registry.
//!
//! ## Substitution note (documented in DESIGN.md §1)
//!
//! The paper's prototype uses ed25519 digital signatures. In this
//! reproduction every participant runs inside one simulated process, so
//! asymmetric cryptography would not add trust: the adversary either is the
//! process (and can read any private key) or is modelled by our Byzantine
//! behaviour hooks (which only sign through their own [`KeyPair`]). We
//! therefore use HMAC-SHA-256 tags under per-node keys that are derived
//! deterministically from a deployment master seed, and verify them through a
//! [`KeyRegistry`]. What the evaluation actually measures — the CPU time spent
//! signing and verifying — is charged by the simulator according to
//! [`crate::cost::CostModel`], using published ed25519 latencies.

use crate::digest::Digest;
use crate::hmac::hmac_sha256_parts;
use basil_common::{FastHashMap, NodeId};
use std::fmt;
use std::sync::Arc;

/// A signature: an HMAC-SHA-256 tag over the message under the signer's key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The node that produced the signature.
    pub signer: NodeId,
    /// The MAC tag.
    pub tag: Digest,
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig[{:?}]{:?}", self.signer, self.tag)
    }
}

/// A node's signing key.
#[derive(Clone)]
pub struct KeyPair {
    node: NodeId,
    secret: [u8; 32],
}

impl KeyPair {
    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.sign_parts(&[message])
    }

    /// Signs the concatenation of several message parts.
    pub fn sign_parts(&self, parts: &[&[u8]]) -> Signature {
        Signature {
            signer: self.node,
            tag: hmac_sha256_parts(&self.secret, parts),
        }
    }

    /// The node this key belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "KeyPair({:?})", self.node)
    }
}

/// Deployment-wide key material: derives per-node keys from a master seed and
/// verifies signatures.
///
/// Cloning is cheap (`Arc` inside); every replica and client in a simulation
/// shares one registry.
#[derive(Clone)]
pub struct KeyRegistry {
    inner: Arc<RegistryInner>,
}

struct RegistryInner {
    master_seed: [u8; 32],
    /// Verification keys derived once at deployment build time. Plain
    /// immutable map after construction, so lookups are lock-free and the
    /// registry stays `Sync` for the parallel runtime. Nodes not listed
    /// here fall back to on-the-fly derivation (two extra SHA-256 passes
    /// per verification — the cost the precomputation removes).
    precomputed: FastHashMap<NodeId, [u8; 32]>,
}

impl KeyRegistry {
    /// Creates a registry from a 64-bit seed (convenient for tests and
    /// deterministic experiments).
    pub fn from_seed(seed: u64) -> Self {
        Self::from_seed_with_nodes(seed, [])
    }

    /// Creates a registry and derives the verification keys of `nodes` up
    /// front. The cluster harness lists every replica and client of the
    /// deployment here, so the per-signature key derivation (an HMAC of its
    /// own) is paid once per node instead of once per verification — the
    /// "one pass per quorum" half of batched certificate validation.
    pub fn from_seed_with_nodes(seed: u64, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut master_seed = [0u8; 32];
        master_seed[..8].copy_from_slice(&seed.to_be_bytes());
        let mut inner = RegistryInner {
            master_seed,
            precomputed: FastHashMap::default(),
        };
        let secrets: FastHashMap<NodeId, [u8; 32]> = nodes
            .into_iter()
            .map(|n| (n, inner.derive_secret(n)))
            .collect();
        inner.precomputed = secrets;
        KeyRegistry {
            inner: Arc::new(inner),
        }
    }

    /// Number of nodes whose verification keys are precomputed.
    pub fn precomputed_nodes(&self) -> usize {
        self.inner.precomputed.len()
    }

    /// Derives the signing key pair for a node.
    pub fn keypair(&self, node: NodeId) -> KeyPair {
        KeyPair {
            node,
            secret: self.node_secret(node),
        }
    }

    /// Verifies that `sig` is a valid signature by `sig.signer` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        self.verify_parts(&[message], sig)
    }

    /// Verifies a signature over the concatenation of several message parts.
    pub fn verify_parts(&self, parts: &[&[u8]], sig: &Signature) -> bool {
        let expected = hmac_sha256_parts(&self.node_secret(sig.signer), parts);
        // Constant-time comparison is unnecessary in a simulation, but cheap.
        let mut diff = 0u8;
        for (a, b) in expected.as_bytes().iter().zip(sig.tag.as_bytes()) {
            diff |= a ^ b;
        }
        diff == 0
    }

    fn node_secret(&self, node: NodeId) -> [u8; 32] {
        if let Some(secret) = self.inner.precomputed.get(&node) {
            return *secret;
        }
        self.inner.derive_secret(node)
    }
}

impl RegistryInner {
    fn derive_secret(&self, node: NodeId) -> [u8; 32] {
        let encoding = encode_node(node);
        let tag = hmac_sha256_parts(&self.master_seed, &[&encoding]);
        *tag.as_bytes()
    }
}

impl fmt::Debug for KeyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("KeyRegistry{..}")
    }
}

fn encode_node(node: NodeId) -> [u8; 13] {
    let mut out = [0u8; 13];
    match node {
        NodeId::Client(c) => {
            out[0] = 0x01;
            out[1..9].copy_from_slice(&c.0.to_be_bytes());
        }
        NodeId::Replica(r) => {
            out[0] = 0x02;
            out[1..5].copy_from_slice(&r.shard.0.to_be_bytes());
            out[5..9].copy_from_slice(&r.index.to_be_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{ClientId, ReplicaId, ShardId};

    fn client(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }

    fn replica(s: u32, i: u32) -> NodeId {
        NodeId::Replica(ReplicaId::new(ShardId(s), i))
    }

    #[test]
    fn sign_verify_round_trip() {
        let reg = KeyRegistry::from_seed(42);
        let kp = reg.keypair(replica(0, 3));
        let sig = kp.sign(b"prepare tx 17");
        assert!(reg.verify(b"prepare tx 17", &sig));
    }

    #[test]
    fn precomputed_registry_is_equivalent_to_derived() {
        let nodes = [replica(0, 0), replica(0, 1), client(7)];
        let plain = KeyRegistry::from_seed(42);
        let pre = KeyRegistry::from_seed_with_nodes(42, nodes);
        assert_eq!(pre.precomputed_nodes(), 3);
        for n in nodes {
            let sig = plain.keypair(n).sign(b"msg");
            assert_eq!(sig, pre.keypair(n).sign(b"msg"));
            assert!(pre.verify(b"msg", &sig));
        }
        // A node outside the precomputed set still verifies (fallback
        // derivation).
        let other = client(99);
        let sig = pre.keypair(other).sign(b"msg");
        assert!(pre.verify(b"msg", &sig));
    }

    #[test]
    fn verification_fails_for_tampered_message() {
        let reg = KeyRegistry::from_seed(42);
        let kp = reg.keypair(client(9));
        let sig = kp.sign(b"commit");
        assert!(!reg.verify(b"abort", &sig));
    }

    #[test]
    fn verification_fails_for_wrong_claimed_signer() {
        let reg = KeyRegistry::from_seed(42);
        let kp = reg.keypair(replica(0, 1));
        let mut sig = kp.sign(b"vote");
        // A Byzantine node claims the signature came from replica 2.
        sig.signer = replica(0, 2);
        assert!(!reg.verify(b"vote", &sig));
    }

    #[test]
    fn different_nodes_have_different_keys() {
        let reg = KeyRegistry::from_seed(1);
        let s1 = reg.keypair(replica(0, 0)).sign(b"m");
        let s2 = reg.keypair(replica(0, 1)).sign(b"m");
        let s3 = reg.keypair(client(0)).sign(b"m");
        assert_ne!(s1.tag, s2.tag);
        assert_ne!(s1.tag, s3.tag);
    }

    #[test]
    fn different_seeds_give_different_keys() {
        let a = KeyRegistry::from_seed(1).keypair(client(5)).sign(b"m");
        let b = KeyRegistry::from_seed(2).keypair(client(5)).sign(b"m");
        assert_ne!(a.tag, b.tag);
    }

    #[test]
    fn sign_parts_matches_concatenated_sign() {
        let reg = KeyRegistry::from_seed(7);
        let kp = reg.keypair(client(1));
        let a = kp.sign(b"hello world");
        let b = kp.sign_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(a, b);
        assert!(reg.verify_parts(&[b"hello world"], &b));
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let reg = KeyRegistry::from_seed(3);
        let kp = reg.keypair(client(1));
        let dbg = format!("{kp:?}");
        assert!(!dbg.contains("secret"));
        assert_eq!(dbg, "KeyPair(c1)");
    }
}
