//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The implementation supports incremental hashing (`update` / `finalize`) and
//! a one-shot convenience function, and is validated against the NIST test
//! vectors in the unit tests below.

use crate::digest::Digest;

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length suffix in padding).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Hashes `data` in one shot.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of several byte slices without materializing it.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        // Fill any partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Process full blocks directly from the input.
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("slice is 64 bytes");
            self.compress(&block);
            data = &data[64..];
        }
        // Stash the remainder.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80, then zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually place the length to avoid updating `len` again.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn rfc_vector_448_bits_longer() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "chunk={chunk}");
        }
    }

    #[test]
    fn digest_parts_equals_concatenation() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(
            Sha256::digest_parts(&[a, b]),
            Sha256::digest(b"hello world")
        );
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Sha256::digest(b"a"), Sha256::digest(b"b"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
    }
}
