//! The generic simulated-cluster runtime.
//!
//! Historically the repository carried two parallel harnesses — one for
//! Basil deployments and one for the baseline systems — duplicating the
//! whole cluster lifecycle: replica/client spawning, key-registry and
//! genesis-data setup, `run_for`/`run_measured` measurement windows,
//! fault and partition injection, and the serializability audit. This
//! module extracts that lifecycle into one engine, [`ProtocolCluster`],
//! generic over a [`ClusterProtocol`] adapter that contributes only the
//! protocol-specific pieces: how to construct a client or replica actor,
//! how to read its statistics, and how to inspect its store.
//!
//! `basil::harness::BasilCluster` and
//! `basil::baseline_harness::BaselineCluster` are thin aliases over this
//! engine; adding a new protocol to the evaluation means writing one
//! `ClusterProtocol` impl, after which every experiment control — faults,
//! partitions, measurement windows, audits — works unchanged. This is the
//! same apples-to-apples harness discipline the paper's own evaluation
//! needed to compare Basil against TAPIR-style, TxHotstuff, and
//! TxBFT-SMaRt baselines.

use crate::report::{RunReport, Snapshot};
use basil_common::{
    ClientId, Duration, Key, NodeId, ReplicaId, ShardId, SimTime, TxGenerator, TxId, Value,
};
use basil_core::byzantine::FaultProfile;
use basil_core::ReplicaBehavior;
use basil_simnet::{Actor, NetworkConfig, NodeProps, ParallelSimulation, Simulation};
use basil_store::mvtso::Decision;
use basil_store::{audit_serializability, AuditError, Transaction};
use std::collections::HashMap;

/// The protocol-specific slice of a simulated deployment.
///
/// One implementation exists per system under evaluation (Basil, the
/// baselines, and any protocol a future experiment adds). The engine calls
/// these hooks to build the cluster and to observe it; everything else —
/// scheduling, measurement, fault injection, auditing — lives in
/// [`ProtocolCluster`] and is shared.
pub trait ClusterProtocol {
    /// The wire message type exchanged by this protocol's actors. `Send` is
    /// part of the contract: the parallel runtime carries in-flight
    /// messages across worker threads.
    type Msg: Clone + Send + 'static;
    /// The client actor type (downcast target for stats collection).
    type Client: Actor<Self::Msg>;
    /// The replica actor type (downcast target for store inspection).
    type Replica: Actor<Self::Msg>;
    /// Per-client statistics exposed by the client actor.
    type Stats: Clone;

    /// Called once at the start of [`ProtocolCluster::build`], before any
    /// actor is constructed (e.g. to derive deployment-wide key material
    /// from the simulation seed). `num_clients` lets the adapter
    /// precompute per-node verification keys for the whole deployment.
    fn prepare_build(&mut self, _seed: u64, _num_clients: u32) {}

    /// The shards of this deployment.
    fn shards(&self) -> Vec<ShardId>;

    /// Placement: the shard responsible for `key`.
    fn shard_for_key(&self, key: &Key) -> ShardId;

    /// Number of replicas per shard (`5f + 1` for Basil, `2f + 1` or
    /// `3f + 1` for the baselines).
    fn replicas_per_shard(&self) -> u32;

    /// Behaviour assigned to replicas without an explicit override.
    fn default_replica_behavior(&self) -> ReplicaBehavior {
        ReplicaBehavior::Correct
    }

    /// Constructs the replica actor for `rid`, preloaded with its shard's
    /// slice of the genesis data.
    fn make_replica(
        &self,
        rid: ReplicaId,
        behavior: ReplicaBehavior,
        initial_data: Vec<(Key, Value)>,
    ) -> Self::Replica;

    /// Rebuilds a replica actor after an *amnesia* restart: the replacement
    /// starts from the shard's genesis data plus whatever durable state the
    /// protocol salvages from the crashed actor (e.g. its write-ahead log).
    /// Returning `None` — the default — declares that the protocol has no
    /// recovery path, and the engine downgrades the restart to a warm one
    /// (pre-crash memory preserved) rather than silently losing state.
    fn recover_replica(
        &self,
        _rid: ReplicaId,
        _initial_data: Vec<(Key, Value)>,
        _old: &mut Self::Replica,
    ) -> Option<Self::Replica> {
        None
    }

    /// Constructs the client actor for `cid` driving `generator`.
    /// Protocols without Byzantine-client support ignore `fault` (the
    /// engine only passes non-honest profiles when the deployment was
    /// configured with Byzantine clients).
    fn make_client(
        &self,
        cid: ClientId,
        generator: Box<dyn TxGenerator>,
        fault: FaultProfile,
        seed: u64,
    ) -> Self::Client;

    /// The client's statistics counters.
    fn client_stats(client: &Self::Client) -> &Self::Stats;

    /// Folds one client's statistics into an aggregate snapshot.
    /// `byzantine` tells the adapter whether the client was configured as
    /// faulty (the paper's methodology excludes Byzantine clients from
    /// throughput).
    fn accumulate(stats: &Self::Stats, byzantine: bool, snap: &mut Snapshot);

    /// The latest committed value of `key` on a replica (inspection).
    fn latest_value(replica: &Self::Replica, key: &Key) -> Option<Value>;

    /// The transactions committed on a replica, borrowed from its store,
    /// for the serializability audit (no clone of the history).
    fn committed_transactions(replica: &Self::Replica) -> Vec<&Transaction>;

    /// The decision a replica recorded for `txid`, if any (for the
    /// decision-agreement audit).
    fn decision(replica: &Self::Replica, txid: &TxId) -> Option<Decision>;

    /// Changes a replica's behaviour mid-run (fault injection). Protocols
    /// without replica misbehaviour support may ignore this.
    fn set_behavior(replica: &mut Self::Replica, behavior: ReplicaBehavior);
}

/// How a cluster's event loop executes.
///
/// Both modes produce **bit-for-bit identical** simulated results — same
/// event trace, same jitter draws, same commit/abort decisions — for any
/// worker count; only host wall-clock time differs. `Serial` is the
/// single-threaded oracle; `Parallel` shards actor execution across worker
/// threads in lookahead-bounded epochs (see `basil_simnet::parallel`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RuntimeMode {
    /// The single-threaded discrete-event loop (the determinism oracle).
    #[default]
    Serial,
    /// Thread-sharded epoch execution with the given number of workers.
    Parallel(usize),
}

impl RuntimeMode {
    /// Number of worker threads this mode runs with (1 for serial).
    pub fn workers(&self) -> usize {
        match self {
            RuntimeMode::Serial => 1,
            RuntimeMode::Parallel(n) => (*n).max(1),
        }
    }

    /// Short display label (`serial`, `parallel:4`).
    pub fn label(&self) -> String {
        match self {
            RuntimeMode::Serial => "serial".to_string(),
            RuntimeMode::Parallel(n) => format!("parallel:{n}"),
        }
    }
}

/// The cluster's event-loop driver: the serial engine or the thread-sharded
/// parallel runtime wrapped around it. Inspection always goes through the
/// inner [`Simulation`] (valid between runs); only `run_for` differs.
enum SimDriver<M> {
    Serial(Simulation<M>),
    Parallel(ParallelSimulation<M>),
}

impl<M: Clone + Send + 'static> SimDriver<M> {
    fn new(
        sim: Simulation<M>,
        mode: RuntimeMode,
        lookahead: Option<Duration>,
        inline_threshold: Option<usize>,
    ) -> Self {
        match mode {
            RuntimeMode::Serial => SimDriver::Serial(sim),
            RuntimeMode::Parallel(n) => {
                let mut par = ParallelSimulation::from_serial(sim, n);
                if let Some(l) = lookahead {
                    par = par.with_lookahead(l);
                }
                if let Some(t) = inline_threshold {
                    par = par.with_inline_threshold(t);
                }
                SimDriver::Parallel(par)
            }
        }
    }

    fn mode(&self) -> RuntimeMode {
        match self {
            SimDriver::Serial(_) => RuntimeMode::Serial,
            SimDriver::Parallel(p) => RuntimeMode::Parallel(p.workers()),
        }
    }

    fn sim(&self) -> &Simulation<M> {
        match self {
            SimDriver::Serial(s) => s,
            SimDriver::Parallel(p) => p.inner(),
        }
    }

    fn sim_mut(&mut self) -> &mut Simulation<M> {
        match self {
            SimDriver::Serial(s) => s,
            SimDriver::Parallel(p) => p.inner_mut(),
        }
    }

    fn run_for(&mut self, d: Duration) {
        match self {
            SimDriver::Serial(s) => s.run_for(d),
            SimDriver::Parallel(p) => p.run_for(d),
        }
    }
}

/// Build-time node-property overrides for one replica: clock skew and/or a
/// reduced core count. `None` fields keep the deployment default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaPropsOverride {
    /// Clock skew in nanoseconds (positive = the replica's clock runs
    /// ahead of global simulation time).
    pub clock_skew_ns: Option<i64>,
    /// Core count override (fewer cores than `replica_cores` models a
    /// straggler / underprovisioned replica).
    pub cores: Option<u32>,
}

impl ReplicaPropsOverride {
    /// An override that only skews the replica's clock.
    pub fn skewed_ns(skew: i64) -> Self {
        ReplicaPropsOverride {
            clock_skew_ns: Some(skew),
            cores: None,
        }
    }

    /// An override that only changes the replica's core count.
    pub fn with_cores(cores: u32) -> Self {
        ReplicaPropsOverride {
            clock_skew_ns: None,
            cores: Some(cores),
        }
    }
}

/// Configuration of a simulated deployment, generic over the protocol
/// adapter `P` supplying the protocol-specific configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig<P> {
    /// The protocol adapter (and its protocol-level configuration).
    pub protocol: P,
    /// Number of closed-loop clients.
    pub num_clients: u32,
    /// How many of the clients follow the Byzantine fault profile.
    pub num_byzantine_clients: u32,
    /// The strategy and fault fraction applied by Byzantine clients.
    pub fault: FaultProfile,
    /// Behaviour overrides for specific replicas.
    pub replica_behaviors: Vec<(ReplicaId, ReplicaBehavior)>,
    /// Node-property overrides for specific replicas: clock skew
    /// (nanoseconds, positive runs ahead) and core count (a "slow
    /// replica" gets fewer cores than `replica_cores`). Scenario specs
    /// compile their `clock-skew` and `slow-replica` faults down to these.
    pub replica_props: Vec<(ReplicaId, ReplicaPropsOverride)>,
    /// Network model.
    pub network: NetworkConfig,
    /// Simulation seed (drives all randomness).
    pub seed: u64,
    /// Initial database contents, loaded as committed genesis versions on
    /// the replicas responsible for each key.
    pub initial_data: Vec<(Key, Value)>,
    /// CPU cores per replica (the paper's m510 machines have 8).
    pub replica_cores: u32,
    /// CPU cores per client process.
    pub client_cores: u32,
    /// How the event loop executes (serial oracle or thread-sharded
    /// parallel). Simulated results are identical either way.
    pub runtime: RuntimeMode,
    /// Override for the parallel runtime's epoch lookahead (`None` derives
    /// it from the network's minimum delivery delay). Ignored in serial
    /// mode.
    pub parallel_lookahead: Option<Duration>,
    /// Override for the epoch size below which the parallel driver executes
    /// inline instead of fanning out to the workers (`None` uses the
    /// runtime default; `Some(0)` forces every epoch through the workers —
    /// what the determinism golden tests do). Ignored in serial mode.
    pub parallel_inline_threshold: Option<usize>,
}

impl<P> ClusterConfig<P> {
    /// A deployment of `protocol` with `num_clients` honest clients and
    /// the default LAN network, seed, and core counts.
    pub fn for_protocol(protocol: P, num_clients: u32) -> Self {
        ClusterConfig {
            protocol,
            num_clients,
            num_byzantine_clients: 0,
            fault: FaultProfile::honest(),
            replica_behaviors: Vec::new(),
            replica_props: Vec::new(),
            network: NetworkConfig::lan(),
            seed: 42,
            initial_data: Vec::new(),
            replica_cores: 8,
            client_cores: 8,
            runtime: RuntimeMode::Serial,
            parallel_lookahead: None,
            parallel_inline_threshold: None,
        }
    }

    /// Sets the initial database contents.
    pub fn with_initial_data(mut self, data: Vec<(Key, Value)>) -> Self {
        self.initial_data = data;
        self
    }

    /// Configures `count` of the clients to follow `fault`.
    pub fn with_byzantine_clients(mut self, count: u32, fault: FaultProfile) -> Self {
        self.num_byzantine_clients = count.min(self.num_clients);
        self.fault = fault;
        self
    }

    /// Sets the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Selects the event-loop runtime (serial by default).
    pub fn with_runtime(mut self, runtime: RuntimeMode) -> Self {
        self.runtime = runtime;
        self
    }

    /// Adds a node-property override (clock skew / cores) for one replica.
    pub fn with_replica_props(mut self, rid: ReplicaId, props: ReplicaPropsOverride) -> Self {
        self.replica_props.push((rid, props));
        self
    }

    /// Tunes the parallel runtime: an explicit epoch lookahead and/or the
    /// inline-execution threshold. No effect in serial mode; results are
    /// identical for every setting — these only trade synchronization
    /// overhead against epoch density.
    pub fn with_parallel_tuning(
        mut self,
        lookahead: Option<Duration>,
        inline_threshold: Option<usize>,
    ) -> Self {
        self.parallel_lookahead = lookahead;
        self.parallel_inline_threshold = inline_threshold;
        self
    }
}

/// A running simulated deployment of protocol `P`.
///
/// Owns the discrete-event simulation and exposes the controls every
/// experiment needs: run for a simulated duration, take
/// throughput/latency measurements over a window, inject replica faults
/// and partitions, and audit the committed history for serializability.
pub struct ProtocolCluster<P: ClusterProtocol> {
    sim: SimDriver<P::Msg>,
    config: ClusterConfig<P>,
    clients: Vec<ClientId>,
    replicas: Vec<ReplicaId>,
}

impl<P: ClusterProtocol> ProtocolCluster<P> {
    /// Builds the deployment. `make_generator` is called once per client
    /// to produce its workload.
    pub fn build(
        mut config: ClusterConfig<P>,
        mut make_generator: impl FnMut(ClientId) -> Box<dyn TxGenerator>,
    ) -> Self {
        config
            .protocol
            .prepare_build(config.seed, config.num_clients);
        let mut sim = Simulation::new(config.seed, config.network.clone());

        // Replicas, one group per shard, each holding its shard's slice of
        // the initial data.
        let mut replicas = Vec::new();
        let behavior_overrides: HashMap<ReplicaId, ReplicaBehavior> =
            config.replica_behaviors.iter().copied().collect();
        let props_overrides: HashMap<ReplicaId, ReplicaPropsOverride> =
            config.replica_props.iter().copied().collect();
        for shard in config.protocol.shards() {
            let shard_data: Vec<(Key, Value)> = config
                .initial_data
                .iter()
                .filter(|(k, _)| config.protocol.shard_for_key(k) == shard)
                .cloned()
                .collect();
            for index in 0..config.protocol.replicas_per_shard() {
                let rid = ReplicaId::new(shard, index);
                let behavior = behavior_overrides
                    .get(&rid)
                    .copied()
                    .unwrap_or_else(|| config.protocol.default_replica_behavior());
                let replica = config
                    .protocol
                    .make_replica(rid, behavior, shard_data.clone());
                let mut props = NodeProps::replica().with_cores(config.replica_cores);
                if let Some(o) = props_overrides.get(&rid) {
                    if let Some(skew) = o.clock_skew_ns {
                        props = props.with_skew_ns(skew);
                    }
                    if let Some(cores) = o.cores {
                        props = props.with_cores(cores);
                    }
                }
                sim.add_node(NodeId::Replica(rid), props, Box::new(replica));
                replicas.push(rid);
            }
        }

        // Clients: the first `num_clients - num_byzantine_clients` are
        // honest, the rest follow the configured fault profile.
        let mut clients = Vec::new();
        let honest = config.num_clients - config.num_byzantine_clients;
        for i in 0..config.num_clients {
            let cid = ClientId(i as u64);
            let fault = if i < honest {
                FaultProfile::honest()
            } else {
                config.fault
            };
            let client = config.protocol.make_client(
                cid,
                make_generator(cid),
                fault,
                config.seed.wrapping_add(i as u64),
            );
            sim.add_node(
                NodeId::Client(cid),
                NodeProps::client().with_cores(config.client_cores),
                Box::new(client),
            );
            clients.push(cid);
        }

        let sim = SimDriver::new(
            sim,
            config.runtime,
            config.parallel_lookahead,
            config.parallel_inline_threshold,
        );
        ProtocolCluster {
            sim,
            config,
            clients,
            replicas,
        }
    }

    /// Advances the simulation by `d` (on the configured runtime).
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.sim().now()
    }

    /// The event-loop runtime this cluster executes on.
    pub fn runtime_mode(&self) -> RuntimeMode {
        self.sim.mode()
    }

    /// Runs a warmup period, then a measurement window, and reports
    /// throughput and latency over the window (correct clients only, as
    /// in the paper).
    pub fn run_measured(&mut self, warmup: Duration, window: Duration) -> RunReport {
        self.run_for(warmup);
        let start = self.snapshot();
        self.run_for(window);
        let end = self.snapshot();
        RunReport::between(&start, &end, window).with_runtime(self.runtime_mode())
    }

    /// Direct access to the underlying simulator (fault injection,
    /// partitions, metrics). Regardless of the runtime mode this is the
    /// serial engine's state, valid between runs.
    pub fn sim_mut(&mut self) -> &mut Simulation<P::Msg> {
        self.sim.sim_mut()
    }

    /// The simulator's metrics and actors.
    pub fn sim(&self) -> &Simulation<P::Msg> {
        self.sim.sim()
    }

    /// Identifiers of all clients.
    pub fn client_ids(&self) -> &[ClientId] {
        &self.clients
    }

    /// Identifiers of all replicas.
    pub fn replica_ids(&self) -> &[ReplicaId] {
        &self.replicas
    }

    /// Whether client `id` was configured as Byzantine.
    pub fn is_byzantine_client(&self, id: ClientId) -> bool {
        let honest = (self.config.num_clients - self.config.num_byzantine_clients) as u64;
        id.0 >= honest
    }

    /// Per-client statistics.
    pub fn client_stats(&self) -> Vec<(ClientId, P::Stats)> {
        self.clients
            .iter()
            .filter_map(|cid| {
                self.sim
                    .sim()
                    .actor::<P::Client>(NodeId::Client(*cid))
                    .map(|c| (*cid, P::client_stats(c).clone()))
            })
            .collect()
    }

    /// Changes a replica's behaviour mid-run (fault injection).
    pub fn set_replica_behavior(&mut self, rid: ReplicaId, behavior: ReplicaBehavior) {
        if let Some(replica) = self
            .sim
            .sim_mut()
            .actor_mut::<P::Replica>(NodeId::Replica(rid))
        {
            P::set_behavior(replica, behavior);
        }
    }

    /// Crashes a replica (all messages to it are dropped).
    pub fn crash_replica(&mut self, rid: ReplicaId) {
        self.sim.sim_mut().crash(NodeId::Replica(rid));
    }

    /// *Warm*-restarts a crashed replica: deliveries resume and the actor
    /// keeps its full pre-crash memory (a pause, not a real crash).
    pub fn restart_replica_warm(&mut self, rid: ReplicaId) {
        self.sim.sim_mut().restart(NodeId::Replica(rid));
    }

    /// *Amnesia*-restarts a crashed replica: the actor is rebuilt through
    /// [`ClusterProtocol::recover_replica`] — its shard's genesis data plus
    /// whatever durable state the protocol salvages from the crashed actor —
    /// and re-enters the simulation via `Simulation::restart_amnesia`, so
    /// its recovery traffic (WAL-replay catch-up requests, deadlines) joins
    /// the timeline deterministically. Protocols without a recovery path
    /// fall back to a warm restart.
    pub fn restart_replica_amnesia(&mut self, rid: ReplicaId) {
        let id = NodeId::Replica(rid);
        let shard_data: Vec<(Key, Value)> = self
            .config
            .initial_data
            .iter()
            .filter(|(k, _)| self.config.protocol.shard_for_key(k) == rid.shard)
            .cloned()
            .collect();
        let fresh = match self.sim.sim_mut().actor_mut::<P::Replica>(id) {
            Some(old) => self.config.protocol.recover_replica(rid, shard_data, old),
            None => None,
        };
        match fresh {
            Some(replica) => {
                drop(self.sim.sim_mut().restart_amnesia(id, Box::new(replica)));
            }
            None => self.sim.sim_mut().restart(id),
        }
    }

    /// Aggregates client counters into a snapshot (correct clients only
    /// for the throughput-bearing counters, per the paper's methodology).
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for cid in &self.clients {
            if let Some(client) = self.sim.sim().actor::<P::Client>(NodeId::Client(*cid)) {
                P::accumulate(
                    P::client_stats(client),
                    self.is_byzantine_client(*cid),
                    &mut snap,
                );
            }
        }
        snap
    }

    /// The union of transactions committed on any replica, deduplicated by
    /// transaction id and borrowed from the replica stores.
    fn committed_dedup(&self) -> Vec<&Transaction> {
        let mut seen: HashMap<TxId, &Transaction> = HashMap::new();
        for rid in &self.replicas {
            if let Some(replica) = self.sim.sim().actor::<P::Replica>(NodeId::Replica(*rid)) {
                for tx in P::committed_transactions(replica) {
                    seen.entry(tx.id()).or_insert(tx);
                }
            }
        }
        seen.into_values().collect()
    }

    /// The union of transactions committed on any replica, deduplicated
    /// by transaction id (owned copies, for inspection).
    pub fn committed_transactions(&self) -> Vec<Transaction> {
        self.committed_dedup().into_iter().cloned().collect()
    }

    /// SHA-256 hex digest over the sorted committed transaction ids: pins
    /// the exact set of transactions that committed (and therefore every
    /// decision), independent of replica iteration order. The golden
    /// determinism tests compare this digest across runtimes and against
    /// captured values.
    pub fn committed_history_digest(&self) -> String {
        let mut ids: Vec<[u8; 32]> = self
            .committed_dedup()
            .iter()
            .map(|tx| *tx.id().as_bytes())
            .collect();
        ids.sort_unstable();
        let mut hasher = basil_crypto::Sha256::new();
        for id in &ids {
            hasher.update(id);
        }
        hasher
            .finalize()
            .as_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Audits the committed history: serializability of the union of
    /// committed transactions, and agreement of per-transaction decisions
    /// across replicas (no transaction may be committed on one correct
    /// replica and aborted on another — Lemma 2: no C-CERT and A-CERT
    /// can coexist).
    pub fn audit(&self) -> Result<(), ClusterAuditError> {
        let committed = self.committed_dedup();
        let mut aborted: Vec<TxId> = Vec::new();
        for rid in &self.replicas {
            let Some(replica) = self.sim.sim().actor::<P::Replica>(NodeId::Replica(*rid)) else {
                continue;
            };
            for tx in &committed {
                if P::decision(replica, &tx.id()) == Some(Decision::Abort) {
                    aborted.push(tx.id());
                }
            }
        }
        audit_history(&committed, aborted)
    }

    /// Sum of committed transactions over correct clients.
    pub fn total_committed(&self) -> u64 {
        self.snapshot().committed
    }

    /// The latest committed value of `key` as seen by the first replica
    /// of the key's shard (inspection helper for examples and tests).
    pub fn latest_value(&self, key: &Key) -> Option<Value> {
        let shard = self.config.protocol.shard_for_key(key);
        let rid = ReplicaId::new(shard, 0);
        self.sim
            .sim()
            .actor::<P::Replica>(NodeId::Replica(rid))
            .and_then(|r| P::latest_value(r, key))
    }

    /// The shard responsible for `key` under this deployment's placement.
    pub fn shard_for_key(&self, key: &Key) -> ShardId {
        self.config.protocol.shard_for_key(key)
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig<P> {
        &self.config
    }
}

/// Failures the cluster-level audit can detect.
#[derive(Clone, Debug)]
pub enum ClusterAuditError {
    /// The committed history is not serializable.
    NotSerializable(AuditError),
    /// Correct replicas disagree about a transaction's outcome.
    DivergentDecision {
        /// The transaction with conflicting outcomes.
        txid: TxId,
    },
}

impl std::fmt::Display for ClusterAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterAuditError::NotSerializable(e) => write!(f, "history not serializable: {e}"),
            ClusterAuditError::DivergentDecision { txid } => {
                write!(f, "replicas disagree on the outcome of {txid}")
            }
        }
    }
}

impl std::error::Error for ClusterAuditError {}

/// Audits a collected history: no transaction may appear both committed and
/// aborted anywhere in the deployment (Lemma 2: no C-CERT and A-CERT can
/// coexist), and the union of committed transactions must be serializable.
///
/// This is the same check [`ProtocolCluster::audit`] runs over live actors,
/// factored out so runtimes that *collect* results instead of holding actors
/// in memory — the real-IO supervisor reads per-process result files — apply
/// the identical judgement. `aborted` is the set of transaction ids any
/// replica finalized as [`Decision::Abort`].
pub fn audit_history<T: std::borrow::Borrow<Transaction>>(
    committed: &[T],
    aborted: impl IntoIterator<Item = TxId>,
) -> Result<(), ClusterAuditError> {
    let aborted: std::collections::HashSet<TxId> = aborted.into_iter().collect();
    for tx in committed {
        let txid = tx.borrow().id();
        if aborted.contains(&txid) {
            return Err(ClusterAuditError::DivergentDecision { txid });
        }
    }
    audit_serializability(committed).map_err(ClusterAuditError::NotSerializable)
}
