//! The baseline-systems adapter (TAPIR-style, TxHotstuff, TxBFT-SMaRt) for
//! the generic cluster runtime.
//!
//! [`BaselineCluster`] is the same [`ProtocolCluster`] engine that runs
//! Basil, instantiated with [`BaselineProtocol`]; the whole cluster
//! lifecycle — spawning, genesis data, measurement windows, the
//! serializability audit — is shared code, which is what makes the
//! harness's Basil-vs-baseline comparisons apples-to-apples.

use crate::cluster::{self, ClusterProtocol, ProtocolCluster};
use crate::report::Snapshot;
use basil_baselines::{
    BaselineClient, BaselineClientStats, BaselineConfig, BaselineMsg, BaselineReplica,
};
use basil_common::{ClientId, Key, ReplicaId, ShardId, TxGenerator, TxId, Value};
use basil_core::byzantine::FaultProfile;
use basil_core::ReplicaBehavior;
use basil_store::mvtso::Decision;
use basil_store::Transaction;

/// The [`ClusterProtocol`] adapter for the baseline systems.
///
/// The paper evaluates the baselines only in fault-free executions, so this
/// adapter ignores Byzantine fault profiles and replica behaviour
/// overrides; everything else rides the shared engine.
#[derive(Clone, Debug)]
pub struct BaselineProtocol {
    /// The baseline system and its parameters.
    pub baseline: BaselineConfig,
}

impl BaselineProtocol {
    /// Wraps a baseline configuration in the adapter.
    pub fn new(baseline: BaselineConfig) -> Self {
        BaselineProtocol { baseline }
    }
}

impl ClusterProtocol for BaselineProtocol {
    type Msg = BaselineMsg;
    type Client = BaselineClient;
    type Replica = BaselineReplica;
    type Stats = BaselineClientStats;

    fn shards(&self) -> Vec<ShardId> {
        self.baseline.shards().collect()
    }

    fn shard_for_key(&self, key: &Key) -> ShardId {
        self.baseline.shard_for_key(key)
    }

    fn replicas_per_shard(&self) -> u32 {
        self.baseline.n()
    }

    fn make_replica(
        &self,
        rid: ReplicaId,
        behavior: ReplicaBehavior,
        initial_data: Vec<(Key, Value)>,
    ) -> BaselineReplica {
        assert!(
            behavior.is_correct(),
            "the baseline systems are evaluated fault-free; replica behaviour \
             overrides are not supported by the baseline adapter"
        );
        BaselineReplica::new(rid, self.baseline.clone(), initial_data)
    }

    fn make_client(
        &self,
        cid: ClientId,
        generator: Box<dyn TxGenerator>,
        fault: FaultProfile,
        seed: u64,
    ) -> BaselineClient {
        assert!(
            fault.strategy.is_correct(),
            "the baseline systems are evaluated fault-free; Byzantine client \
             profiles are not supported by the baseline adapter"
        );
        BaselineClient::new(cid, self.baseline.clone(), generator, seed)
    }

    fn client_stats(client: &BaselineClient) -> &BaselineClientStats {
        client.stats()
    }

    fn accumulate(stats: &BaselineClientStats, _byzantine: bool, snap: &mut Snapshot) {
        snap.correct_clients += 1;
        snap.committed += stats.committed;
        snap.aborted_attempts += stats.aborted_attempts;
        for (label, count) in &stats.per_label {
            *snap.per_label.entry(label).or_insert(0) += count;
        }
        snap.latency.merge(&stats.latency);
    }

    fn latest_value(replica: &BaselineReplica, key: &Key) -> Option<Value> {
        replica.store().committed_value(key)
    }

    fn committed_transactions(replica: &BaselineReplica) -> Vec<&Transaction> {
        replica.store().committed_iter().collect()
    }

    fn decision(replica: &BaselineReplica, txid: &TxId) -> Option<Decision> {
        replica.store().decision(txid)
    }

    fn set_behavior(_replica: &mut BaselineReplica, behavior: ReplicaBehavior) {
        // The baselines are evaluated fault-free (see the crate docs of
        // `basil-baselines`); reject misbehaviour injection loudly rather
        // than silently measuring an honest run.
        assert!(
            behavior.is_correct(),
            "the baseline systems are evaluated fault-free; replica behaviour \
             injection is not supported by the baseline adapter"
        );
    }
}

/// Configuration of a simulated baseline deployment.
pub type BaselineClusterConfig = cluster::ClusterConfig<BaselineProtocol>;

/// A running simulated baseline deployment — the generic engine
/// instantiated with the baseline adapter.
pub type BaselineCluster = ProtocolCluster<BaselineProtocol>;

impl BaselineClusterConfig {
    /// A default deployment of the given baseline with `num_clients`
    /// clients.
    pub fn new(baseline: BaselineConfig, num_clients: u32) -> Self {
        cluster::ClusterConfig::for_protocol(BaselineProtocol::new(baseline), num_clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_baselines::SystemKind;
    use basil_common::{Duration, Op, ScriptedGenerator, TxProfile};

    fn one_write_profile() -> TxProfile {
        TxProfile::new("set-x", vec![Op::Write(Key::new("x"), Value::from_u64(7))])
    }

    #[test]
    #[should_panic(expected = "evaluated fault-free")]
    fn byzantine_clients_are_rejected_loudly() {
        use basil_core::byzantine::{ClientStrategy, FaultProfile};
        let config = BaselineClusterConfig::new(BaselineConfig::new(SystemKind::Tapir), 2)
            .with_byzantine_clients(1, FaultProfile::always(ClientStrategy::StallEarly));
        let _ = BaselineCluster::build(config, |_| Box::new(ScriptedGenerator::new([])));
    }

    #[test]
    fn tapir_cluster_commits_a_transaction() {
        let config = BaselineClusterConfig::new(BaselineConfig::new(SystemKind::Tapir), 1)
            .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let mut cluster = BaselineCluster::build(config, |_| {
            Box::new(ScriptedGenerator::new([one_write_profile()]))
        });
        cluster.run_for(Duration::from_millis(50));
        assert_eq!(cluster.total_committed(), 1);
        assert_eq!(
            cluster.latest_value(&Key::new("x")),
            Some(Value::from_u64(7))
        );
        cluster.audit().expect("baseline history serializable");
    }

    #[test]
    fn hotstuff_cluster_commits_a_transaction() {
        let config = BaselineClusterConfig::new(
            BaselineConfig::new(SystemKind::TxHotstuff).with_batch_size(1),
            1,
        )
        .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let mut cluster = BaselineCluster::build(config, |_| {
            Box::new(ScriptedGenerator::new([one_write_profile()]))
        });
        cluster.run_for(Duration::from_millis(100));
        assert_eq!(cluster.total_committed(), 1);
        assert_eq!(
            cluster.latest_value(&Key::new("x")),
            Some(Value::from_u64(7))
        );
        cluster.audit().expect("baseline history serializable");
    }

    #[test]
    fn bftsmart_cluster_commits_rmw_chain() {
        let config = BaselineClusterConfig::new(
            BaselineConfig::new(SystemKind::TxBftSmart).with_batch_size(1),
            1,
        )
        .with_initial_data(vec![(Key::new("counter"), Value::from_u64(10))]);
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("counter"),
                    delta: 5,
                }],
            );
            2
        ];
        let mut cluster = BaselineCluster::build(config, move |_| {
            Box::new(ScriptedGenerator::new(profiles.clone()))
        });
        cluster.run_for(Duration::from_millis(300));
        assert_eq!(cluster.total_committed(), 2);
        assert_eq!(
            cluster.latest_value(&Key::new("counter")),
            Some(Value::from_u64(20))
        );
        cluster.audit().expect("baseline history serializable");
    }
}
