//! Simulated-cluster harness for the baseline systems (TAPIR-style,
//! TxHotstuff, TxBFT-SMaRt), mirroring [`crate::harness::BasilCluster`].

use crate::report::{RunReport, Snapshot};
use basil_baselines::{BaselineClient, BaselineClientStats, BaselineConfig, BaselineMsg, BaselineReplica};
use basil_common::{ClientId, Duration, Key, NodeId, ReplicaId, SimTime, TxGenerator, Value};
use basil_simnet::{NetworkConfig, NodeProps, Simulation};

/// Configuration of a simulated baseline deployment.
#[derive(Clone, Debug)]
pub struct BaselineClusterConfig {
    /// The baseline system and its parameters.
    pub baseline: BaselineConfig,
    /// Number of closed-loop clients.
    pub num_clients: u32,
    /// Network model.
    pub network: NetworkConfig,
    /// Simulation seed.
    pub seed: u64,
    /// Initial database contents.
    pub initial_data: Vec<(Key, Value)>,
    /// CPU cores per replica.
    pub replica_cores: u32,
    /// CPU cores per client.
    pub client_cores: u32,
}

impl BaselineClusterConfig {
    /// A default deployment of the given baseline with `num_clients` clients.
    pub fn new(baseline: BaselineConfig, num_clients: u32) -> Self {
        BaselineClusterConfig {
            baseline,
            num_clients,
            network: NetworkConfig::lan(),
            seed: 42,
            initial_data: Vec::new(),
            replica_cores: 8,
            client_cores: 8,
        }
    }

    /// Sets the initial database contents.
    pub fn with_initial_data(mut self, data: Vec<(Key, Value)>) -> Self {
        self.initial_data = data;
        self
    }

    /// Sets the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A running simulated baseline deployment.
pub struct BaselineCluster {
    sim: Simulation<BaselineMsg>,
    config: BaselineClusterConfig,
    clients: Vec<ClientId>,
    replicas: Vec<ReplicaId>,
}

impl BaselineCluster {
    /// Builds the deployment; `make_generator` supplies each client's
    /// workload.
    pub fn build(
        config: BaselineClusterConfig,
        mut make_generator: impl FnMut(ClientId) -> Box<dyn TxGenerator>,
    ) -> Self {
        let mut sim = Simulation::new(config.seed, config.network.clone());
        let mut replicas = Vec::new();
        for shard in config.baseline.shards() {
            let shard_data: Vec<(Key, Value)> = config
                .initial_data
                .iter()
                .filter(|(k, _)| config.baseline.shard_for_key(k) == shard)
                .cloned()
                .collect();
            for index in 0..config.baseline.n() {
                let rid = ReplicaId::new(shard, index);
                let replica = BaselineReplica::new(rid, config.baseline.clone(), shard_data.clone());
                sim.add_node(
                    NodeId::Replica(rid),
                    NodeProps::replica().with_cores(config.replica_cores),
                    Box::new(replica),
                );
                replicas.push(rid);
            }
        }
        let mut clients = Vec::new();
        for i in 0..config.num_clients {
            let cid = ClientId(i as u64);
            let client = BaselineClient::new(
                cid,
                config.baseline.clone(),
                make_generator(cid),
                config.seed.wrapping_add(i as u64),
            );
            sim.add_node(
                NodeId::Client(cid),
                NodeProps::client().with_cores(config.client_cores),
                Box::new(client),
            );
            clients.push(cid);
        }
        BaselineCluster {
            sim,
            config,
            clients,
            replicas,
        }
    }

    /// Advances the simulation by `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs a warmup period then a measurement window and reports
    /// throughput/latency over the window.
    pub fn run_measured(&mut self, warmup: Duration, window: Duration) -> RunReport {
        self.run_for(warmup);
        let start = self.snapshot();
        self.run_for(window);
        let end = self.snapshot();
        RunReport::between(&start, &end, window)
    }

    /// Per-client statistics.
    pub fn client_stats(&self) -> Vec<(ClientId, BaselineClientStats)> {
        self.clients
            .iter()
            .filter_map(|cid| {
                self.sim
                    .actor::<BaselineClient>(NodeId::Client(*cid))
                    .map(|c| (*cid, c.stats().clone()))
            })
            .collect()
    }

    /// Aggregates client counters into a snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (_, stats) in self.client_stats() {
            snap.correct_clients += 1;
            snap.committed += stats.committed;
            snap.aborted_attempts += stats.aborted_attempts;
            for (label, count) in &stats.per_label {
                *snap.per_label.entry(label).or_insert(0) += count;
            }
            snap.latencies_ns.extend(&stats.latencies_ns);
        }
        snap
    }

    /// Sum of committed transactions across clients.
    pub fn total_committed(&self) -> u64 {
        self.client_stats().iter().map(|(_, s)| s.committed).sum()
    }

    /// The committed value of `key` on the first replica of its shard.
    pub fn latest_value(&self, key: &Key) -> Option<Value> {
        let shard = self.config.baseline.shard_for_key(key);
        let rid = ReplicaId::new(shard, 0);
        self.sim
            .actor::<BaselineReplica>(NodeId::Replica(rid))
            .and_then(|r| r.store().committed_value(key))
    }

    /// Identifiers of all replicas.
    pub fn replica_ids(&self) -> &[ReplicaId] {
        &self.replicas
    }

    /// Direct access to the underlying simulator.
    pub fn sim_mut(&mut self) -> &mut Simulation<BaselineMsg> {
        &mut self.sim
    }

    /// The cluster configuration.
    pub fn config(&self) -> &BaselineClusterConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_baselines::SystemKind;
    use basil_common::{Op, ScriptedGenerator, TxProfile};

    fn one_write_profile() -> TxProfile {
        TxProfile::new("set-x", vec![Op::Write(Key::new("x"), Value::from_u64(7))])
    }

    #[test]
    fn tapir_cluster_commits_a_transaction() {
        let config = BaselineClusterConfig::new(BaselineConfig::new(SystemKind::Tapir), 1)
            .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let mut cluster = BaselineCluster::build(config, |_| {
            Box::new(ScriptedGenerator::new([one_write_profile()]))
        });
        cluster.run_for(Duration::from_millis(50));
        assert_eq!(cluster.total_committed(), 1);
        assert_eq!(cluster.latest_value(&Key::new("x")), Some(Value::from_u64(7)));
    }

    #[test]
    fn hotstuff_cluster_commits_a_transaction() {
        let config = BaselineClusterConfig::new(
            BaselineConfig::new(SystemKind::TxHotstuff).with_batch_size(1),
            1,
        )
        .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let mut cluster = BaselineCluster::build(config, |_| {
            Box::new(ScriptedGenerator::new([one_write_profile()]))
        });
        cluster.run_for(Duration::from_millis(100));
        assert_eq!(cluster.total_committed(), 1);
        assert_eq!(cluster.latest_value(&Key::new("x")), Some(Value::from_u64(7)));
    }

    #[test]
    fn bftsmart_cluster_commits_rmw_chain() {
        let config = BaselineClusterConfig::new(
            BaselineConfig::new(SystemKind::TxBftSmart).with_batch_size(1),
            1,
        )
        .with_initial_data(vec![(Key::new("counter"), Value::from_u64(10))]);
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("counter"),
                    delta: 5,
                }],
            );
            2
        ];
        let mut cluster = BaselineCluster::build(config, move |_| {
            Box::new(ScriptedGenerator::new(profiles.clone()))
        });
        cluster.run_for(Duration::from_millis(300));
        assert_eq!(cluster.total_committed(), 2);
        assert_eq!(
            cluster.latest_value(&Key::new("counter")),
            Some(Value::from_u64(20))
        );
    }
}
