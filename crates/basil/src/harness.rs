//! The simulated-cluster harness.
//!
//! [`BasilCluster`] stands up a full Basil deployment inside the
//! discrete-event simulator: `num_shards * (5f + 1)` replicas, a set of
//! closed-loop clients (some of which may follow a Byzantine strategy), the
//! key registry, and the network. It exposes the controls the experiments
//! need: run for a simulated duration, take throughput/latency measurements
//! over a window, inject replica faults and partitions, and audit the
//! committed history for serializability.

use crate::report::{RunReport, Snapshot};
use basil_common::{
    ClientId, Duration, Key, NodeId, ReplicaId, ShardId, SimTime, TxGenerator, TxId, Value,
};
use basil_core::byzantine::FaultProfile;
use basil_core::{BasilClient, BasilConfig, BasilMsg, BasilReplica, ClientStats, ReplicaBehavior};
use basil_crypto::KeyRegistry;
use basil_simnet::{NetworkConfig, NodeProps, Simulation};
use basil_store::{audit_serializability, AuditError, Transaction};
use std::collections::HashMap;

/// Configuration of a simulated Basil deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Protocol configuration (shards, quorums, crypto, timeouts).
    pub basil: BasilConfig,
    /// Number of closed-loop clients.
    pub num_clients: u32,
    /// How many of the clients follow the Byzantine fault profile.
    pub num_byzantine_clients: u32,
    /// The strategy and fault fraction applied by Byzantine clients.
    pub fault: FaultProfile,
    /// Behaviour overrides for specific replicas.
    pub replica_behaviors: Vec<(ReplicaId, ReplicaBehavior)>,
    /// Network model.
    pub network: NetworkConfig,
    /// Simulation seed (drives all randomness).
    pub seed: u64,
    /// Initial database contents, loaded as committed genesis versions on
    /// the replicas responsible for each key.
    pub initial_data: Vec<(Key, Value)>,
    /// CPU cores per replica (the paper's m510 machines have 8).
    pub replica_cores: u32,
    /// CPU cores per client process.
    pub client_cores: u32,
}

impl ClusterConfig {
    /// A single-shard, `f = 1` deployment with `num_clients` honest clients —
    /// the starting point of most tests and experiments.
    pub fn basil_default(num_clients: u32) -> Self {
        ClusterConfig {
            basil: BasilConfig::test_single_shard(),
            num_clients,
            num_byzantine_clients: 0,
            fault: FaultProfile::honest(),
            replica_behaviors: Vec::new(),
            network: NetworkConfig::lan(),
            seed: 42,
            initial_data: Vec::new(),
            replica_cores: 8,
            client_cores: 8,
        }
    }

    /// Same as [`ClusterConfig::basil_default`] but with the given protocol
    /// configuration (sharding, batching, ...).
    pub fn with_basil(mut self, basil: BasilConfig) -> Self {
        self.basil = basil;
        self
    }

    /// Sets the initial database contents.
    pub fn with_initial_data(mut self, data: Vec<(Key, Value)>) -> Self {
        self.initial_data = data;
        self
    }

    /// Configures `count` of the clients to follow `fault`.
    pub fn with_byzantine_clients(mut self, count: u32, fault: FaultProfile) -> Self {
        self.num_byzantine_clients = count.min(self.num_clients);
        self.fault = fault;
        self
    }

    /// Sets the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A running simulated Basil deployment.
pub struct BasilCluster {
    sim: Simulation<BasilMsg>,
    config: ClusterConfig,
    clients: Vec<ClientId>,
    replicas: Vec<ReplicaId>,
}

impl BasilCluster {
    /// Builds the deployment. `make_generator` is called once per client to
    /// produce its workload.
    pub fn build(
        config: ClusterConfig,
        mut make_generator: impl FnMut(ClientId) -> Box<dyn TxGenerator>,
    ) -> Self {
        let registry = KeyRegistry::from_seed(config.seed);
        let mut sim = Simulation::new(config.seed, config.network.clone());
        let system = &config.basil.system;

        // Replicas, one group of n per shard, each holding its shard's slice
        // of the initial data.
        let mut replicas = Vec::new();
        let behavior_overrides: HashMap<ReplicaId, ReplicaBehavior> =
            config.replica_behaviors.iter().copied().collect();
        for shard in system.shards() {
            let shard_data: Vec<(Key, Value)> = config
                .initial_data
                .iter()
                .filter(|(k, _)| system.shard_for_key(k) == shard)
                .cloned()
                .collect();
            for index in 0..system.shard.n() {
                let rid = ReplicaId::new(shard, index);
                let behavior = behavior_overrides
                    .get(&rid)
                    .copied()
                    .unwrap_or(config.basil.replica_behavior);
                let replica = BasilReplica::new(
                    rid,
                    config.basil.clone(),
                    registry.clone(),
                    behavior,
                    shard_data.clone(),
                );
                sim.add_node(
                    NodeId::Replica(rid),
                    NodeProps::replica().with_cores(config.replica_cores),
                    Box::new(replica),
                );
                replicas.push(rid);
            }
        }

        // Clients: the first `num_clients - num_byzantine_clients` are
        // honest, the rest follow the configured fault profile.
        let mut clients = Vec::new();
        let honest = config.num_clients - config.num_byzantine_clients;
        for i in 0..config.num_clients {
            let cid = ClientId(i as u64);
            let fault = if i < honest {
                FaultProfile::honest()
            } else {
                config.fault
            };
            let client = BasilClient::new(
                cid,
                config.basil.clone(),
                registry.clone(),
                make_generator(cid),
                fault,
                config.seed.wrapping_add(i as u64),
            );
            sim.add_node(
                NodeId::Client(cid),
                NodeProps::client().with_cores(config.client_cores),
                Box::new(client),
            );
            clients.push(cid);
        }

        BasilCluster {
            sim,
            config,
            clients,
            replicas,
        }
    }

    /// Advances the simulation by `d`.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs a warmup period, then a measurement window, and reports
    /// throughput and latency over the window (correct clients only, as in
    /// the paper).
    pub fn run_measured(&mut self, warmup: Duration, window: Duration) -> RunReport {
        self.run_for(warmup);
        let start = self.snapshot();
        self.run_for(window);
        let end = self.snapshot();
        RunReport::between(&start, &end, window)
    }

    /// Direct access to the underlying simulator (fault injection,
    /// partitions, metrics).
    pub fn sim_mut(&mut self) -> &mut Simulation<BasilMsg> {
        &mut self.sim
    }

    /// The simulator's metrics.
    pub fn sim(&self) -> &Simulation<BasilMsg> {
        &self.sim
    }

    /// Identifiers of all clients.
    pub fn client_ids(&self) -> &[ClientId] {
        &self.clients
    }

    /// Identifiers of all replicas.
    pub fn replica_ids(&self) -> &[ReplicaId] {
        &self.replicas
    }

    /// Whether client `id` was configured as Byzantine.
    pub fn is_byzantine_client(&self, id: ClientId) -> bool {
        let honest = (self.config.num_clients - self.config.num_byzantine_clients) as u64;
        id.0 >= honest
    }

    /// Per-client statistics.
    pub fn client_stats(&self) -> Vec<(ClientId, ClientStats)> {
        self.clients
            .iter()
            .filter_map(|cid| {
                self.sim
                    .actor::<BasilClient>(NodeId::Client(*cid))
                    .map(|c| (*cid, c.stats().clone()))
            })
            .collect()
    }

    /// Changes a replica's behaviour mid-run (fault injection).
    pub fn set_replica_behavior(&mut self, rid: ReplicaId, behavior: ReplicaBehavior) {
        if let Some(replica) = self.sim.actor_mut::<BasilReplica>(NodeId::Replica(rid)) {
            replica.set_behavior(behavior);
        }
    }

    /// Crashes a replica (all messages to it are dropped).
    pub fn crash_replica(&mut self, rid: ReplicaId) {
        self.sim.crash(NodeId::Replica(rid));
    }

    /// Aggregates client counters into a snapshot (correct clients only for
    /// the throughput-bearing counters, per the paper's methodology).
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (cid, stats) in self.client_stats() {
            if self.is_byzantine_client(cid) {
                snap.byz_committed += stats.committed;
                snap.faulty_issued += stats.faulty_issued;
                continue;
            }
            snap.correct_clients += 1;
            snap.committed += stats.committed;
            snap.aborted_attempts += stats.aborted_attempts;
            snap.fast_path += stats.fast_path_decisions;
            snap.slow_path += stats.slow_path_decisions;
            snap.fallbacks += stats.fallback_invocations;
            snap.faulty_issued += stats.faulty_issued;
            for (label, count) in &stats.per_label {
                *snap.per_label.entry(label).or_insert(0) += count;
            }
            snap.latencies_ns.extend(&stats.latencies_ns);
        }
        snap.latency_samples = 0; // full history; windows diff by count below
        snap
    }

    /// The union of transactions committed on any replica, deduplicated by
    /// transaction id.
    pub fn committed_transactions(&self) -> Vec<Transaction> {
        let mut seen: HashMap<TxId, Transaction> = HashMap::new();
        for rid in &self.replicas {
            if let Some(replica) = self.sim.actor::<BasilReplica>(NodeId::Replica(*rid)) {
                for tx in replica.store().committed_snapshot() {
                    seen.entry(tx.id()).or_insert(tx);
                }
            }
        }
        seen.into_values().collect()
    }

    /// Audits the committed history: serializability of the union of
    /// committed transactions, and agreement of per-transaction decisions
    /// across replicas (no transaction may be committed on one correct
    /// replica and aborted on another).
    pub fn audit(&self) -> Result<(), ClusterAuditError> {
        let committed = self.committed_transactions();
        // Decision agreement: a transaction committed anywhere must not be
        // recorded as aborted on any other replica (Lemma 2: no C-CERT and
        // A-CERT can coexist).
        for tx in &committed {
            let txid = tx.id();
            for rid in &self.replicas {
                let Some(replica) = self.sim.actor::<BasilReplica>(NodeId::Replica(*rid)) else {
                    continue;
                };
                if replica.store().decision(&txid) == Some(basil_store::mvtso::Decision::Abort) {
                    return Err(ClusterAuditError::DivergentDecision { txid });
                }
            }
        }
        // Serializability of the committed history.
        audit_serializability(&committed).map_err(ClusterAuditError::NotSerializable)?;
        Ok(())
    }

    /// Sum of committed transactions over correct clients (helper for tests).
    pub fn total_committed(&self) -> u64 {
        self.client_stats()
            .iter()
            .filter(|(cid, _)| !self.is_byzantine_client(*cid))
            .map(|(_, s)| s.committed)
            .sum()
    }

    /// The latest committed value of `key` as seen by the first replica of
    /// the key's shard (inspection helper for examples).
    pub fn latest_value(&self, key: &Key) -> Option<Value> {
        let shard = self.config.basil.system.shard_for_key(key);
        let rid = ReplicaId::new(shard, 0);
        self.sim
            .actor::<BasilReplica>(NodeId::Replica(rid))
            .and_then(|r| r.store().latest_committed(key))
            .map(|(_, v)| v)
    }

    /// The shard responsible for `key` under this deployment's placement.
    pub fn shard_for_key(&self, key: &Key) -> ShardId {
        self.config.basil.system.shard_for_key(key)
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

/// Failures the cluster-level audit can detect.
#[derive(Clone, Debug)]
pub enum ClusterAuditError {
    /// The committed history is not serializable.
    NotSerializable(AuditError),
    /// Correct replicas disagree about a transaction's outcome.
    DivergentDecision {
        /// The transaction with conflicting outcomes.
        txid: TxId,
    },
}

impl std::fmt::Display for ClusterAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterAuditError::NotSerializable(e) => write!(f, "history not serializable: {e}"),
            ClusterAuditError::DivergentDecision { txid } => {
                write!(f, "replicas disagree on the outcome of {txid}")
            }
        }
    }
}

impl std::error::Error for ClusterAuditError {}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{Op, ScriptedGenerator, TxProfile};

    #[test]
    fn build_creates_all_nodes() {
        let config = ClusterConfig::basil_default(3);
        let cluster = BasilCluster::build(config, |_| Box::new(ScriptedGenerator::new([])));
        assert_eq!(cluster.replica_ids().len(), 6);
        assert_eq!(cluster.client_ids().len(), 3);
        assert!(!cluster.is_byzantine_client(ClientId(0)));
    }

    #[test]
    fn single_client_single_write_commits_end_to_end() {
        let config = ClusterConfig::basil_default(1)
            .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let profile = TxProfile::new("set-x", vec![Op::Write(Key::new("x"), Value::from_u64(7))]);
        let mut cluster =
            BasilCluster::build(config, move |_| Box::new(ScriptedGenerator::new([profile.clone()])));
        cluster.run_for(Duration::from_millis(50));
        assert_eq!(cluster.total_committed(), 1);
        assert_eq!(cluster.latest_value(&Key::new("x")), Some(Value::from_u64(7)));
        cluster.audit().expect("history serializable");
    }

    #[test]
    fn read_modify_write_chain_is_applied() {
        let config = ClusterConfig::basil_default(1)
            .with_initial_data(vec![(Key::new("counter"), Value::from_u64(100))]);
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("counter"),
                    delta: 5,
                }],
            );
            3
        ];
        let mut cluster =
            BasilCluster::build(config, move |_| Box::new(ScriptedGenerator::new(profiles.clone())));
        cluster.run_for(Duration::from_millis(200));
        assert_eq!(cluster.total_committed(), 3);
        assert_eq!(
            cluster.latest_value(&Key::new("counter")),
            Some(Value::from_u64(115))
        );
        cluster.audit().expect("serializable");
    }
}
