//! The Basil protocol adapter for the generic cluster runtime.
//!
//! [`BasilCluster`] stands up a full Basil deployment inside the
//! discrete-event simulator: `num_shards * (5f + 1)` replicas, a set of
//! closed-loop clients (some of which may follow a Byzantine strategy), the
//! key registry, and the network. All of the cluster lifecycle — spawning,
//! measurement windows, fault injection, the serializability audit — is the
//! shared [`ProtocolCluster`] engine;
//! this module contributes only [`BasilProtocol`], the adapter describing
//! how Basil clients and replicas are constructed and observed.

use crate::cluster::{self, ClusterProtocol, ProtocolCluster};
use crate::report::Snapshot;
use basil_common::{ClientId, Key, NodeId, ReplicaId, ShardId, TxGenerator, TxId, Value};
use basil_core::byzantine::FaultProfile;
use basil_core::{BasilClient, BasilConfig, BasilMsg, BasilReplica, ClientStats, ReplicaBehavior};
use basil_crypto::KeyRegistry;
use basil_store::mvtso::Decision;
use basil_store::{StoreStats, Transaction};

pub use crate::cluster::ClusterAuditError;

/// The [`ClusterProtocol`] adapter for Basil deployments.
#[derive(Clone)]
pub struct BasilProtocol {
    /// Protocol configuration (shards, quorums, crypto, timeouts).
    pub basil: BasilConfig,
    /// Deployment-wide key material, derived from the simulation seed in
    /// [`ClusterProtocol::prepare_build`].
    registry: Option<KeyRegistry>,
}

impl BasilProtocol {
    /// Wraps a protocol configuration in the adapter.
    pub fn new(basil: BasilConfig) -> Self {
        BasilProtocol {
            basil,
            registry: None,
        }
    }

    fn registry(&self) -> &KeyRegistry {
        self.registry
            .as_ref()
            .expect("prepare_build derives the key registry before actors are constructed")
    }
}

impl std::fmt::Debug for BasilProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BasilProtocol")
            .field("basil", &self.basil)
            .finish_non_exhaustive()
    }
}

impl ClusterProtocol for BasilProtocol {
    type Msg = BasilMsg;
    type Client = BasilClient;
    type Replica = BasilReplica;
    type Stats = ClientStats;

    fn prepare_build(&mut self, seed: u64, num_clients: u32) {
        // Precompute every participant's verification key: certificate
        // validation then derives no per-vote HMAC keys (the expensive half
        // of a cold signature check), only the tag itself.
        let replicas = self.shards().into_iter().flat_map(|shard| {
            (0..self.basil.system.shard.n()).map(move |i| NodeId::Replica(ReplicaId::new(shard, i)))
        });
        let clients = (0..num_clients).map(|i| NodeId::Client(ClientId(i as u64)));
        self.registry = Some(KeyRegistry::from_seed_with_nodes(
            seed,
            replicas.chain(clients),
        ));
    }

    fn shards(&self) -> Vec<ShardId> {
        self.basil.system.shards().collect()
    }

    fn shard_for_key(&self, key: &Key) -> ShardId {
        self.basil.system.shard_for_key(key)
    }

    fn replicas_per_shard(&self) -> u32 {
        self.basil.system.shard.n()
    }

    fn default_replica_behavior(&self) -> ReplicaBehavior {
        self.basil.replica_behavior
    }

    fn make_replica(
        &self,
        rid: ReplicaId,
        behavior: ReplicaBehavior,
        initial_data: Vec<(Key, Value)>,
    ) -> BasilReplica {
        BasilReplica::new(
            rid,
            self.basil.clone(),
            self.registry().clone(),
            behavior,
            initial_data,
        )
    }

    fn recover_replica(
        &self,
        rid: ReplicaId,
        initial_data: Vec<(Key, Value)>,
        old: &mut BasilReplica,
    ) -> Option<BasilReplica> {
        // The WAL image is the only state that survives an amnesia crash;
        // behaviour is configuration, not memory, so it survives too (a
        // Byzantine replica does not become honest by crashing).
        let wal_bytes = old.take_wal_bytes();
        Some(BasilReplica::recover(
            rid,
            self.basil.clone(),
            self.registry().clone(),
            old.behavior(),
            initial_data,
            wal_bytes,
        ))
    }

    fn make_client(
        &self,
        cid: ClientId,
        generator: Box<dyn TxGenerator>,
        fault: FaultProfile,
        seed: u64,
    ) -> BasilClient {
        BasilClient::new(
            cid,
            self.basil.clone(),
            self.registry().clone(),
            generator,
            fault,
            seed,
        )
    }

    fn client_stats(client: &BasilClient) -> &ClientStats {
        client.stats()
    }

    fn accumulate(stats: &ClientStats, byzantine: bool, snap: &mut Snapshot) {
        if byzantine {
            snap.byz_committed += stats.committed;
            snap.faulty_issued += stats.faulty_issued;
            return;
        }
        snap.correct_clients += 1;
        snap.committed += stats.committed;
        snap.aborted_attempts += stats.aborted_attempts;
        snap.fast_path += stats.fast_path_decisions;
        snap.slow_path += stats.slow_path_decisions;
        snap.fallbacks += stats.fallback_invocations;
        snap.faulty_issued += stats.faulty_issued;
        snap.offered += stats.offered;
        snap.shed += stats.shed;
        for (label, count) in &stats.per_label {
            *snap.per_label.entry(label).or_insert(0) += count;
        }
        snap.latency.merge(&stats.latency);
    }

    fn latest_value(replica: &BasilReplica, key: &Key) -> Option<Value> {
        replica.store().latest_committed(key).map(|(_, v)| v)
    }

    fn committed_transactions(replica: &BasilReplica) -> Vec<&Transaction> {
        replica.store().committed_iter().collect()
    }

    fn decision(replica: &BasilReplica, txid: &TxId) -> Option<Decision> {
        replica.store().decision(txid)
    }

    fn set_behavior(replica: &mut BasilReplica, behavior: ReplicaBehavior) {
        replica.set_behavior(behavior);
    }
}

/// Configuration of a simulated Basil deployment.
pub type ClusterConfig = cluster::ClusterConfig<BasilProtocol>;

/// A running simulated Basil deployment — the generic engine instantiated
/// with the Basil adapter.
pub type BasilCluster = ProtocolCluster<BasilProtocol>;

impl BasilCluster {
    /// Store-level counters summed over every replica: how often the MVTSO
    /// prepare answered a per-key conflict check from the generation-stamped
    /// watermarks (fast path) versus falling through to the ordered scan.
    pub fn store_stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for rid in self.replica_ids() {
            if let Some(replica) = self.sim().actor::<BasilReplica>(NodeId::Replica(*rid)) {
                total.merge(&replica.store().stats());
            }
        }
        total
    }

    /// Sum of periodic GC sweeps run across replicas (0 unless
    /// `BasilConfig::with_gc` enabled them).
    pub fn gc_sweeps(&self) -> u64 {
        self.replica_ids()
            .iter()
            .filter_map(|rid| self.sim().actor::<BasilReplica>(NodeId::Replica(*rid)))
            .map(|r| r.stats().gc_sweeps)
            .sum()
    }
}

impl ClusterConfig {
    /// A single-shard, `f = 1` deployment with `num_clients` honest
    /// clients — the starting point of most tests and experiments.
    pub fn basil_default(num_clients: u32) -> Self {
        cluster::ClusterConfig::for_protocol(
            BasilProtocol::new(BasilConfig::test_single_shard()),
            num_clients,
        )
    }

    /// Same as [`ClusterConfig::basil_default`] but with the given
    /// protocol configuration (sharding, batching, ...).
    pub fn with_basil(mut self, basil: BasilConfig) -> Self {
        self.protocol.basil = basil;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{Duration, Op, ScriptedGenerator, TxProfile};

    #[test]
    fn build_creates_all_nodes() {
        let config = ClusterConfig::basil_default(3);
        let cluster = BasilCluster::build(config, |_| Box::new(ScriptedGenerator::new([])));
        assert_eq!(cluster.replica_ids().len(), 6);
        assert_eq!(cluster.client_ids().len(), 3);
        assert!(!cluster.is_byzantine_client(ClientId(0)));
    }

    #[test]
    fn single_client_single_write_commits_end_to_end() {
        let config = ClusterConfig::basil_default(1)
            .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let profile = TxProfile::new("set-x", vec![Op::Write(Key::new("x"), Value::from_u64(7))]);
        let mut cluster = BasilCluster::build(config, move |_| {
            Box::new(ScriptedGenerator::new([profile.clone()]))
        });
        cluster.run_for(Duration::from_millis(50));
        assert_eq!(cluster.total_committed(), 1);
        assert_eq!(
            cluster.latest_value(&Key::new("x")),
            Some(Value::from_u64(7))
        );
        cluster.audit().expect("history serializable");
    }

    #[test]
    fn store_fast_path_stats_are_exposed() {
        let config = ClusterConfig::basil_default(4)
            .with_initial_data(vec![(Key::new("x"), Value::from_u64(0))]);
        let profile = TxProfile::new(
            "bump",
            vec![Op::RmwAdd {
                key: Key::new("x"),
                delta: 1,
            }],
        );
        let mut cluster = BasilCluster::build(config, move |_| {
            Box::new(ScriptedGenerator::new(vec![profile.clone(); 4]))
        });
        cluster.run_for(Duration::from_millis(300));
        let stats = cluster.store_stats();
        assert!(stats.prepares > 0, "prepares ran: {stats:?}");
        assert!(
            stats.fast_path_checks + stats.slow_path_checks > 0,
            "per-key checks counted: {stats:?}"
        );
        let rate = stats.fast_path_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert_eq!(cluster.gc_sweeps(), 0, "GC is off by default");
    }

    #[test]
    fn periodic_gc_preserves_results_and_serializability() {
        let basil = BasilConfig::test_single_shard()
            .with_gc(Duration::from_millis(10), Duration::from_millis(40));
        let config = ClusterConfig::basil_default(3)
            .with_basil(basil)
            .with_initial_data(vec![(Key::new("counter"), Value::from_u64(0))]);
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("counter"),
                    delta: 1,
                }],
            );
            5
        ];
        let mut cluster = BasilCluster::build(config, move |_| {
            Box::new(ScriptedGenerator::new(profiles.clone()))
        });
        cluster.run_for(Duration::from_millis(400));
        assert!(cluster.gc_sweeps() > 0, "sweeps ran");
        assert_eq!(cluster.total_committed(), 15);
        assert_eq!(
            cluster.latest_value(&Key::new("counter")),
            Some(Value::from_u64(15))
        );
        cluster.audit().expect("GC'd history still serializable");
    }

    #[test]
    fn read_modify_write_chain_is_applied() {
        let config = ClusterConfig::basil_default(1)
            .with_initial_data(vec![(Key::new("counter"), Value::from_u64(100))]);
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("counter"),
                    delta: 5,
                }],
            );
            3
        ];
        let mut cluster = BasilCluster::build(config, move |_| {
            Box::new(ScriptedGenerator::new(profiles.clone()))
        });
        cluster.run_for(Duration::from_millis(200));
        assert_eq!(cluster.total_committed(), 3);
        assert_eq!(
            cluster.latest_value(&Key::new("counter")),
            Some(Value::from_u64(115))
        );
        cluster.audit().expect("serializable");
    }
}
