//! # basil
//!
//! Facade crate of the Basil reproduction: re-exports the public API of the
//! underlying crates and provides the [`harness`] used by the examples, the
//! integration tests, and the benchmark suite to stand up whole simulated
//! deployments (Basil or one of the baselines), drive workloads against
//! them, and collect throughput/latency reports.
//!
//! ```no_run
//! use basil::harness::{BasilCluster, ClusterConfig};
//! use basil::workloads; // re-export of basil-workloads
//! # fn main() {
//! let config = ClusterConfig::basil_default(4 /* clients */);
//! let mut cluster = BasilCluster::build(config, |client| {
//!     Box::new(workloads::ycsb::YcsbGenerator::rw_uniform(client.0, 1000, 2, 2))
//! });
//! let report = cluster.run_measured(
//!     basil::Duration::from_millis(100),
//!     basil::Duration::from_millis(500),
//! );
//! println!("throughput: {:.0} tx/s", report.throughput_tps);
//! # }
//! ```
//!
//! ## Key types
//!
//! * [`cluster::ProtocolCluster`] — the one generic cluster runtime;
//!   [`cluster::ClusterProtocol`] is the seam a protocol implements to run
//!   on it (see `docs/ARCHITECTURE.md` at the repository root).
//! * [`harness::BasilCluster`] / [`baseline_harness::BaselineCluster`] —
//!   the two shipped adapters.
//! * [`report::Snapshot`] / [`report::RunReport`] — measurement: snapshots
//!   merge per-client streaming latency histograms
//!   ([`basil_common::LatencyHistogram`]); a window report is the
//!   difference of two snapshots, so its cost is independent of how many
//!   samples a long run has accumulated.
//!
//! ## Determinism
//!
//! A cluster's entire behaviour is a function of its
//! [`cluster::ClusterConfig`] (including the seed) and the workload
//! generators: the underlying simulator delivers events in a reproducible
//! order for a fixed seed, so every experiment, test, and figure in this
//! repository can be re-run exactly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline_harness;
pub mod cluster;
pub mod harness;
pub mod report;

pub use baseline_harness::{BaselineCluster, BaselineClusterConfig, BaselineProtocol};
pub use basil_common::{
    ClientId, Duration, Key, NodeId, Op, ReadQuorum, ReplicaId, ScriptedGenerator, ShardConfig,
    ShardId, SimTime, SystemConfig, Timestamp, TxGenerator, TxId, TxProfile, Value,
};
pub use basil_core::{
    BasilClient, BasilConfig, BasilReplica, ClientStats, ClientStrategy, ReplicaBehavior,
};
pub use basil_crypto::{CostModel, KeyRegistry};
pub use basil_simnet::{NetworkConfig, Partition, Simulation};
pub use basil_store::{audit_serializability, AuditError, StoreStats, Transaction};
pub use cluster::{
    audit_history, ClusterAuditError, ClusterProtocol, ProtocolCluster, ReplicaPropsOverride,
    RuntimeMode,
};
pub use harness::{BasilCluster, BasilProtocol, ClusterConfig};
pub use report::{LatencySlo, RunReport, SloOutcome};

/// Re-export of the workload generators.
pub use basil_workloads as workloads;

/// Re-export of the baseline systems (TAPIR-style, TxHotstuff, TxBFT-SMaRt).
pub use basil_baselines as baselines;
