//! Aggregated run reports: throughput, latency, commit rate.

use basil_common::Duration;
use std::collections::HashMap;

/// A snapshot of aggregate client counters at one point in simulated time.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Committed transactions across correct clients.
    pub committed: u64,
    /// Aborted (retried) attempts across correct clients.
    pub aborted_attempts: u64,
    /// Fast-path decisions.
    pub fast_path: u64,
    /// Slow-path (ST2) decisions.
    pub slow_path: u64,
    /// Fallback recoveries started.
    pub fallbacks: u64,
    /// Number of latency samples recorded so far (informational; window
    /// reports diff the latency multisets directly).
    pub latency_samples: usize,
    /// All latencies recorded so far, in nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Committed per workload label.
    pub per_label: HashMap<&'static str, u64>,
    /// Number of correct (non-Byzantine) clients contributing.
    pub correct_clients: u32,
    /// Committed transactions by Byzantine clients (their successful,
    /// protocol-following commits).
    pub byz_committed: u64,
    /// Transactions issued under a Byzantine strategy.
    pub faulty_issued: u64,
}

/// Throughput/latency report over a measurement window.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Length of the measurement window.
    pub window: Duration,
    /// Transactions committed by correct clients in the window.
    pub committed: u64,
    /// Aborted attempts by correct clients in the window.
    pub aborted_attempts: u64,
    /// Correct-client throughput in transactions per second.
    pub throughput_tps: f64,
    /// Throughput per correct client (the metric of Figure 7).
    pub throughput_per_correct_client: f64,
    /// Mean commit latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median commit latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th percentile commit latency in milliseconds.
    pub p99_latency_ms: f64,
    /// committed / (committed + aborted attempts).
    pub commit_rate: f64,
    /// Fraction of decisions that used the single-round-trip fast path.
    pub fast_path_fraction: f64,
    /// Fallback recoveries started during the window.
    pub fallbacks: u64,
    /// Fraction of processed transactions that were faulty (Byzantine).
    pub faulty_fraction: f64,
    /// Committed count per workload label.
    pub per_label: HashMap<&'static str, u64>,
}

impl RunReport {
    /// Computes the report for the window between two snapshots.
    pub fn between(start: &Snapshot, end: &Snapshot, window: Duration) -> RunReport {
        let committed = end.committed.saturating_sub(start.committed);
        let aborted = end.aborted_attempts.saturating_sub(start.aborted_attempts);
        let secs = window.as_secs_f64().max(1e-9);
        // Window latencies = multiset difference end − start. The snapshots
        // concatenate per-client latency vectors, so the warmup samples are
        // not a prefix of the end vector when there is more than one client;
        // a sorted two-pointer sweep removes exactly one instance of every
        // warmup sample wherever it sits.
        let mut start_sorted = start.latencies_ns.clone();
        start_sorted.sort_unstable();
        let mut end_sorted = end.latencies_ns.clone();
        end_sorted.sort_unstable();
        let mut latencies = Vec::with_capacity(end_sorted.len().saturating_sub(start_sorted.len()));
        let mut consumed = 0;
        for v in end_sorted {
            if consumed < start_sorted.len() && start_sorted[consumed] == v {
                consumed += 1;
            } else {
                latencies.push(v);
            }
        }
        let pct = |p: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
            latencies[idx] as f64 / 1e6
        };
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().map(|l| *l as f64).sum::<f64>() / latencies.len() as f64 / 1e6
        };
        let fast = end.fast_path.saturating_sub(start.fast_path);
        let slow = end.slow_path.saturating_sub(start.slow_path);
        let decisions = fast + slow;
        let mut per_label = HashMap::new();
        for (label, count) in &end.per_label {
            let before = start.per_label.get(label).copied().unwrap_or(0);
            per_label.insert(*label, count.saturating_sub(before));
        }
        let correct_total = committed + aborted;
        let byz = end.faulty_issued.saturating_sub(start.faulty_issued);
        let processed = correct_total + byz;
        RunReport {
            window,
            committed,
            aborted_attempts: aborted,
            throughput_tps: committed as f64 / secs,
            throughput_per_correct_client: if end.correct_clients == 0 {
                0.0
            } else {
                committed as f64 / secs / end.correct_clients as f64
            },
            mean_latency_ms: mean,
            p50_latency_ms: pct(0.50),
            p99_latency_ms: pct(0.99),
            commit_rate: if correct_total == 0 {
                1.0
            } else {
                committed as f64 / correct_total as f64
            },
            fast_path_fraction: if decisions == 0 {
                1.0
            } else {
                fast as f64 / decisions as f64
            },
            fallbacks: end.fallbacks.saturating_sub(start.fallbacks),
            faulty_fraction: if processed == 0 {
                0.0
            } else {
                byz as f64 / processed as f64
            },
            per_label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_between_snapshots() {
        let start = Snapshot {
            committed: 100,
            aborted_attempts: 10,
            fast_path: 90,
            slow_path: 20,
            latency_samples: 2,
            latencies_ns: vec![1_000_000, 2_000_000],
            correct_clients: 4,
            ..Default::default()
        };
        let end = Snapshot {
            committed: 300,
            aborted_attempts: 30,
            fast_path: 270,
            slow_path: 40,
            latency_samples: 6,
            latencies_ns: vec![
                1_000_000, 2_000_000, 3_000_000, 5_000_000, 7_000_000, 9_000_000,
            ],
            correct_clients: 4,
            ..Default::default()
        };
        let r = RunReport::between(&start, &end, Duration::from_secs(2));
        assert_eq!(r.committed, 200);
        assert_eq!(r.aborted_attempts, 20);
        assert!((r.throughput_tps - 100.0).abs() < 1e-9);
        assert!((r.throughput_per_correct_client - 25.0).abs() < 1e-9);
        // Window latencies are the last four samples: 3, 5, 7, 9 ms.
        assert!((r.mean_latency_ms - 6.0).abs() < 1e-9);
        assert!(r.p50_latency_ms >= 3.0 && r.p50_latency_ms <= 7.0);
        assert!((r.p99_latency_ms - 9.0).abs() < 1e-9);
        assert!((r.commit_rate - 200.0 / 220.0).abs() < 1e-9);
        // 180 fast vs 20 slow decisions in the window.
        assert!((r.fast_path_fraction - 0.9).abs() < 1e-9);
    }

    #[test]
    fn window_latencies_diff_correctly_across_interleaved_clients() {
        // Snapshots concatenate per-client latency vectors, so with two
        // clients the end vector interleaves each client's warmup and
        // window samples; the report must keep exactly the window samples.
        let start = Snapshot {
            latency_samples: 2,
            // c0 warmup = 1 ms, c1 warmup = 2 ms.
            latencies_ns: vec![1_000_000, 2_000_000],
            correct_clients: 2,
            ..Default::default()
        };
        let end = Snapshot {
            latency_samples: 4,
            // [c0 warmup, c0 window, c1 warmup, c1 window].
            latencies_ns: vec![1_000_000, 3_000_000, 2_000_000, 5_000_000],
            correct_clients: 2,
            ..Default::default()
        };
        let r = RunReport::between(&start, &end, Duration::from_secs(1));
        // Window samples are 3 ms and 5 ms: mean 4 ms, p99 5 ms. A prefix
        // slice would instead report [2 ms, 5 ms] (c1's warmup kept, c0's
        // window sample dropped).
        assert!(
            (r.mean_latency_ms - 4.0).abs() < 1e-9,
            "mean {}",
            r.mean_latency_ms
        );
        assert!((r.p99_latency_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_well_defined() {
        let s = Snapshot::default();
        let r = RunReport::between(&s, &s, Duration::from_secs(1));
        assert_eq!(r.committed, 0);
        assert_eq!(r.throughput_tps, 0.0);
        assert_eq!(r.mean_latency_ms, 0.0);
        assert_eq!(r.commit_rate, 1.0);
        assert_eq!(r.faulty_fraction, 0.0);
    }
}
