//! Aggregated run reports: throughput, latency, commit rate.
//!
//! A [`Snapshot`] is cheap: it folds each client's counters and its
//! streaming latency histogram (`basil_common::LatencyHistogram`) into one
//! aggregate — no latency vector is ever cloned. A measurement window is
//! the difference of two snapshots; window latencies are the bucket-wise
//! histogram difference (valid because per-client histograms only grow), so
//! warmup exclusion costs O(buckets) instead of the multiset diff over all
//! samples the harness used to perform.

use crate::cluster::RuntimeMode;
use basil_common::{Duration, LatencyHistogram};
use std::collections::HashMap;

/// A snapshot of aggregate client counters at one point in simulated time.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Committed transactions across correct clients.
    pub committed: u64,
    /// Aborted (retried) attempts across correct clients.
    pub aborted_attempts: u64,
    /// Fast-path decisions.
    pub fast_path: u64,
    /// Slow-path (ST2) decisions.
    pub slow_path: u64,
    /// Fallback recoveries started.
    pub fallbacks: u64,
    /// Merged streaming histogram of correct clients' commit latencies.
    pub latency: LatencyHistogram,
    /// Committed per workload label.
    pub per_label: HashMap<&'static str, u64>,
    /// Number of correct (non-Byzantine) clients contributing.
    pub correct_clients: u32,
    /// Committed transactions by Byzantine clients (their successful,
    /// protocol-following commits).
    pub byz_committed: u64,
    /// Transactions issued under a Byzantine strategy.
    pub faulty_issued: u64,
    /// Transactions the workload offered (correct clients). Equals starts
    /// under closed-loop driving; counts every Poisson arrival — admitted or
    /// shed — under open-loop driving.
    pub offered: u64,
    /// Open-loop arrivals dropped at the admission bound.
    pub shed: u64,
}

impl Snapshot {
    /// Number of latency samples recorded so far.
    pub fn latency_samples(&self) -> usize {
        self.latency.count() as usize
    }
}

/// Throughput/latency report over a measurement window.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Length of the measurement window.
    pub window: Duration,
    /// Transactions committed by correct clients in the window.
    pub committed: u64,
    /// Aborted attempts by correct clients in the window.
    pub aborted_attempts: u64,
    /// Correct-client throughput in transactions per second.
    pub throughput_tps: f64,
    /// Offered load in transactions per second (see [`Snapshot::offered`]).
    /// Under open-loop driving, `throughput_tps` tracking this line is the
    /// pre-knee regime; the gap between them opens past saturation.
    pub offered_tps: f64,
    /// Open-loop arrivals shed at the admission bound during the window.
    pub shed: u64,
    /// Shed arrivals as a fraction of offered arrivals (0 when nothing was
    /// offered, and always 0 under closed-loop driving).
    pub shed_fraction: f64,
    /// Throughput per correct client (the metric of Figure 7).
    pub throughput_per_correct_client: f64,
    /// Mean commit latency in milliseconds (exact: computed from the
    /// histograms' exact sums).
    pub mean_latency_ms: f64,
    /// Median commit latency in milliseconds (histogram estimate, within
    /// one log₂ sub-bucket — ≤3.1% — of the exact order statistic).
    pub p50_latency_ms: f64,
    /// 99th percentile commit latency in milliseconds (same resolution as
    /// the median).
    pub p99_latency_ms: f64,
    /// committed / (committed + aborted attempts).
    pub commit_rate: f64,
    /// Fraction of decisions that used the single-round-trip fast path.
    pub fast_path_fraction: f64,
    /// Fallback recoveries started during the window.
    pub fallbacks: u64,
    /// Fraction of processed transactions that were faulty (Byzantine).
    pub faulty_fraction: f64,
    /// Committed count per workload label.
    pub per_label: HashMap<&'static str, u64>,
    /// The event-loop runtime the measurement ran on. Simulated results
    /// are runtime-independent; this records how the wall-clock was spent.
    pub runtime: RuntimeMode,
}

impl RunReport {
    /// Computes the report for the window between two snapshots.
    pub fn between(start: &Snapshot, end: &Snapshot, window: Duration) -> RunReport {
        let committed = end.committed.saturating_sub(start.committed);
        let aborted = end.aborted_attempts.saturating_sub(start.aborted_attempts);
        let secs = window.as_secs_f64().max(1e-9);
        // Window latencies: each client's histogram only ever grows, so the
        // merged end histogram minus the merged start histogram is exactly
        // the multiset of samples recorded inside the window.
        let latencies = end.latency.diff(&start.latency);
        let fast = end.fast_path.saturating_sub(start.fast_path);
        let slow = end.slow_path.saturating_sub(start.slow_path);
        let decisions = fast + slow;
        let mut per_label = HashMap::new();
        for (label, count) in &end.per_label {
            let before = start.per_label.get(label).copied().unwrap_or(0);
            per_label.insert(*label, count.saturating_sub(before));
        }
        let correct_total = committed + aborted;
        let byz = end.faulty_issued.saturating_sub(start.faulty_issued);
        let processed = correct_total + byz;
        let offered = end.offered.saturating_sub(start.offered);
        let shed = end.shed.saturating_sub(start.shed);
        RunReport {
            window,
            committed,
            aborted_attempts: aborted,
            throughput_tps: committed as f64 / secs,
            offered_tps: offered as f64 / secs,
            shed,
            shed_fraction: if offered == 0 {
                0.0
            } else {
                shed as f64 / offered as f64
            },
            throughput_per_correct_client: if end.correct_clients == 0 {
                0.0
            } else {
                committed as f64 / secs / end.correct_clients as f64
            },
            mean_latency_ms: latencies.mean_ms(),
            p50_latency_ms: latencies.percentile_ms(0.50),
            p99_latency_ms: latencies.percentile_ms(0.99),
            commit_rate: if correct_total == 0 {
                1.0
            } else {
                committed as f64 / correct_total as f64
            },
            fast_path_fraction: if decisions == 0 {
                1.0
            } else {
                fast as f64 / decisions as f64
            },
            fallbacks: end.fallbacks.saturating_sub(start.fallbacks),
            faulty_fraction: if processed == 0 {
                0.0
            } else {
                byz as f64 / processed as f64
            },
            per_label,
            runtime: RuntimeMode::Serial,
        }
    }

    /// Tags the report with the runtime it was measured on.
    pub fn with_runtime(mut self, runtime: RuntimeMode) -> Self {
        self.runtime = runtime;
        self
    }

    /// Checks the window's latency percentiles against a service-level
    /// objective. The knee sweeps use this to mark the highest offered rate
    /// whose latency still meets the target ("goodput under SLO").
    pub fn check_slo(&self, slo: &LatencySlo) -> SloOutcome {
        SloOutcome {
            p50_target_ms: slo.p50_ms,
            p99_target_ms: slo.p99_ms,
            p50_actual_ms: self.p50_latency_ms,
            p99_actual_ms: self.p99_latency_ms,
            p50_met: self.p50_latency_ms <= slo.p50_ms,
            p99_met: self.p99_latency_ms <= slo.p99_ms,
        }
    }
}

/// A latency service-level objective: targets for the median and tail.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySlo {
    /// Median (p50) commit-latency target in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile commit-latency target in milliseconds.
    pub p99_ms: f64,
}

impl LatencySlo {
    /// An SLO with the given median and tail targets.
    pub fn new(p50_ms: f64, p99_ms: f64) -> Self {
        LatencySlo { p50_ms, p99_ms }
    }
}

/// The verdict of checking one measurement window against a [`LatencySlo`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloOutcome {
    /// The median target checked against.
    pub p50_target_ms: f64,
    /// The tail target checked against.
    pub p99_target_ms: f64,
    /// Measured median latency.
    pub p50_actual_ms: f64,
    /// Measured p99 latency.
    pub p99_actual_ms: f64,
    /// Whether the median met its target.
    pub p50_met: bool,
    /// Whether the tail met its target.
    pub p99_met: bool,
}

impl SloOutcome {
    /// Whether both percentile targets were met.
    pub fn met(&self) -> bool {
        self.p50_met && self.p99_met
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(samples: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in samples {
            h.record(*s);
        }
        h
    }

    /// Tolerance of a percentile estimate near `value_ns`, in ms.
    fn tol_ms(value_ns: u64) -> f64 {
        LatencyHistogram::bucket_width_at(value_ns) as f64 / 1e6
    }

    #[test]
    fn report_between_snapshots() {
        let start = Snapshot {
            committed: 100,
            aborted_attempts: 10,
            fast_path: 90,
            slow_path: 20,
            latency: hist(&[1_000_000, 2_000_000]),
            correct_clients: 4,
            ..Default::default()
        };
        let end = Snapshot {
            committed: 300,
            aborted_attempts: 30,
            fast_path: 270,
            slow_path: 40,
            latency: hist(&[
                1_000_000, 2_000_000, 3_000_000, 5_000_000, 7_000_000, 9_000_000,
            ]),
            correct_clients: 4,
            ..Default::default()
        };
        let r = RunReport::between(&start, &end, Duration::from_secs(2));
        assert_eq!(r.committed, 200);
        assert_eq!(r.aborted_attempts, 20);
        assert!((r.throughput_tps - 100.0).abs() < 1e-9);
        assert!((r.throughput_per_correct_client - 25.0).abs() < 1e-9);
        // Window latencies are the last four samples: 3, 5, 7, 9 ms. The
        // mean is exact (histograms carry exact sums); the percentiles are
        // histogram estimates, exact to within one bucket width.
        assert!((r.mean_latency_ms - 6.0).abs() < 1e-9);
        assert!(r.p50_latency_ms >= 3.0 - tol_ms(3_000_000));
        assert!(r.p50_latency_ms <= 7.0 + tol_ms(7_000_000));
        assert!((r.p99_latency_ms - 9.0).abs() <= tol_ms(9_000_000));
        assert!((r.commit_rate - 200.0 / 220.0).abs() < 1e-9);
        // 180 fast vs 20 slow decisions in the window.
        assert!((r.fast_path_fraction - 0.9).abs() < 1e-9);
    }

    #[test]
    fn window_latencies_diff_correctly_across_interleaved_clients() {
        // With two clients the warmup samples are not a prefix of any
        // per-client vector ordering; histogram subtraction removes exactly
        // one instance of every warmup sample regardless of interleaving.
        let start = Snapshot {
            // c0 warmup = 1 ms, c1 warmup = 2 ms.
            latency: hist(&[1_000_000, 2_000_000]),
            correct_clients: 2,
            ..Default::default()
        };
        let end = Snapshot {
            // [c0 warmup, c0 window, c1 warmup, c1 window].
            latency: hist(&[1_000_000, 3_000_000, 2_000_000, 5_000_000]),
            correct_clients: 2,
            ..Default::default()
        };
        let r = RunReport::between(&start, &end, Duration::from_secs(1));
        // Window samples are 3 ms and 5 ms: mean 4 ms (exact), p99 ~5 ms.
        assert!(
            (r.mean_latency_ms - 4.0).abs() < 1e-9,
            "mean {}",
            r.mean_latency_ms
        );
        assert!((r.p99_latency_ms - 5.0).abs() <= tol_ms(5_000_000));
    }

    #[test]
    fn offered_shed_and_slo_accounting() {
        let start = Snapshot {
            offered: 50,
            shed: 0,
            ..Default::default()
        };
        let end = Snapshot {
            committed: 80,
            offered: 150,
            shed: 20,
            latency: hist(&[2_000_000, 4_000_000, 40_000_000]),
            correct_clients: 2,
            ..Default::default()
        };
        let r = RunReport::between(&start, &end, Duration::from_secs(1));
        assert!((r.offered_tps - 100.0).abs() < 1e-9);
        assert_eq!(r.shed, 20);
        assert!((r.shed_fraction - 0.2).abs() < 1e-9);
        // p50 ≈ 4 ms, p99 ≈ 40 ms: a 10/50 SLO passes, a 10/20 SLO fails
        // on the tail only.
        let pass = r.check_slo(&LatencySlo::new(10.0, 50.0));
        assert!(pass.met(), "{pass:?}");
        let fail = r.check_slo(&LatencySlo::new(10.0, 20.0));
        assert!(fail.p50_met && !fail.p99_met && !fail.met(), "{fail:?}");
    }

    #[test]
    fn empty_window_is_well_defined() {
        let s = Snapshot::default();
        let r = RunReport::between(&s, &s, Duration::from_secs(1));
        assert_eq!(r.committed, 0);
        assert_eq!(r.throughput_tps, 0.0);
        assert_eq!(r.mean_latency_ms, 0.0);
        assert_eq!(r.commit_rate, 1.0);
        assert_eq!(r.faulty_fraction, 0.0);
    }
}
