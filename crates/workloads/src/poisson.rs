//! Open-loop Poisson arrivals.
//!
//! The paper's throughput-vs-latency curves are produced by *open-loop*
//! load: transactions arrive according to a Poisson process at a configured
//! rate, independently of how fast the system completes them. This module
//! wraps any closed-loop [`TxGenerator`] with seeded exponential
//! inter-arrival times; the driving client schedules arrivals on the
//! simulated clock, so runs are bit-deterministic under both the serial and
//! the parallel cluster runtimes.

use basil_common::{Duration, TxGenerator, TxProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Wraps a transaction generator with Poisson (exponential inter-arrival)
/// pacing at a fixed per-client arrival rate.
#[derive(Debug)]
pub struct PoissonTxGenerator<G> {
    inner: G,
    rng: SmallRng,
    /// Mean inter-arrival gap in nanoseconds (`1e9 / rate_tps`).
    mean_gap_ns: f64,
}

impl<G: TxGenerator> PoissonTxGenerator<G> {
    /// Paces `inner` at `rate_tps` transaction arrivals per second (per
    /// client). The arrival process is seeded independently of the inner
    /// generator's key/value sampling, so the same workload can be replayed
    /// at different rates with identical transaction contents.
    pub fn new(inner: G, seed: u64, rate_tps: f64) -> Self {
        assert!(
            rate_tps.is_finite() && rate_tps > 0.0,
            "arrival rate must be positive"
        );
        PoissonTxGenerator {
            inner,
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xA551)),
            mean_gap_ns: 1e9 / rate_tps,
        }
    }

    /// The configured per-client arrival rate in transactions per second.
    pub fn rate_tps(&self) -> f64 {
        1e9 / self.mean_gap_ns
    }
}

impl<G: TxGenerator> TxGenerator for PoissonTxGenerator<G> {
    fn next_tx(&mut self) -> Option<TxProfile> {
        self.inner.next_tx()
    }

    fn next_arrival_delay(&mut self) -> Option<Duration> {
        // Inverse-CDF sampling of the exponential distribution. `gen`
        // returns a value in [0, 1), so `1 - u` is in (0, 1] and the log is
        // finite; the gap is floored at 1 ns to keep simulated arrivals
        // strictly ordered even at absurd rates.
        let u: f64 = self.rng.gen();
        let gap_ns = (-(1.0 - u).ln() * self.mean_gap_ns).max(1.0);
        Some(Duration::from_nanos(gap_ns as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YcsbGenerator;

    fn gaps(seed: u64, rate: f64, n: usize) -> Vec<Duration> {
        let inner = YcsbGenerator::rw_uniform(1, 1000, 2, 2);
        let mut g = PoissonTxGenerator::new(inner, seed, rate);
        (0..n)
            .map(|_| g.next_arrival_delay().expect("open-loop"))
            .collect()
    }

    #[test]
    fn arrival_stream_is_deterministic_under_seed() {
        assert_eq!(gaps(7, 1000.0, 64), gaps(7, 1000.0, 64));
        assert_ne!(gaps(7, 1000.0, 64), gaps(8, 1000.0, 64));
    }

    #[test]
    fn mean_gap_matches_rate() {
        // 2000 tx/s → mean gap 500 µs; the sample mean of 10k draws should
        // land within a few percent.
        let sample = gaps(3, 2000.0, 10_000);
        let mean_ns = sample.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / 10_000.0;
        assert!(
            (mean_ns - 500_000.0).abs() < 25_000.0,
            "mean gap {mean_ns}ns, expected ~500000ns"
        );
    }

    #[test]
    fn pacing_does_not_perturb_transaction_contents() {
        let mut closed = YcsbGenerator::rw_uniform(1, 1000, 2, 2);
        let mut open = PoissonTxGenerator::new(YcsbGenerator::rw_uniform(1, 1000, 2, 2), 9, 500.0);
        for _ in 0..32 {
            assert_eq!(closed.next_tx(), open.next_tx());
        }
    }

    #[test]
    fn closed_loop_generators_report_no_pacing() {
        let mut g = YcsbGenerator::rw_uniform(1, 1000, 2, 2);
        assert!(g.next_arrival_delay().is_none());
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonTxGenerator::new(YcsbGenerator::rw_uniform(1, 10, 1, 1), 1, 0.0);
    }
}
