//! Smallbank: a simple banking benchmark (Figure 4).
//!
//! The paper configures Smallbank with one million accounts, of which 1,000
//! "hot" accounts receive 90% of the accesses. Each account has a checking
//! and a savings balance. The transaction mix follows the OLTPBench
//! implementation: balance inquiry, deposit-checking, transact-savings,
//! amalgamate, write-check, and send-payment.

use basil_common::{Key, Op, TxGenerator, TxProfile, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Smallbank generator.
#[derive(Debug)]
pub struct SmallbankGenerator {
    rng: SmallRng,
    num_accounts: u64,
    hot_accounts: u64,
    hot_probability: f64,
}

impl SmallbankGenerator {
    /// The paper's configuration: one million accounts, 1,000 hot accounts
    /// accessed 90% of the time.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(seed, 1_000_000, 1_000, 0.9)
    }

    /// A custom configuration.
    pub fn new(seed: u64, num_accounts: u64, hot_accounts: u64, hot_probability: f64) -> Self {
        SmallbankGenerator {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(17)),
            num_accounts: num_accounts.max(2),
            hot_accounts: hot_accounts.clamp(1, num_accounts.max(2)),
            hot_probability,
        }
    }

    /// The checking-balance key of an account.
    pub fn checking_key(account: u64) -> Key {
        Key::new(format!("checking:{account}"))
    }

    /// The savings-balance key of an account.
    pub fn savings_key(account: u64) -> Key {
        Key::new(format!("savings:{account}"))
    }

    /// Initial data for a (small) deployment: every account starts with the
    /// given balances. Examples use this; benchmark runs rely on implicit
    /// zero balances to avoid materializing millions of keys.
    pub fn initial_data(num_accounts: u64, balance: u64) -> Vec<(Key, Value)> {
        (0..num_accounts)
            .flat_map(|a| {
                [
                    (Self::checking_key(a), Value::from_u64(balance)),
                    (Self::savings_key(a), Value::from_u64(balance)),
                ]
            })
            .collect()
    }

    fn sample_account(&mut self) -> u64 {
        if self.rng.gen::<f64>() < self.hot_probability {
            self.rng.gen_range(0..self.hot_accounts)
        } else {
            self.rng.gen_range(0..self.num_accounts)
        }
    }

    fn two_distinct_accounts(&mut self) -> (u64, u64) {
        let a = self.sample_account();
        let mut b = self.sample_account();
        let mut tries = 0;
        while b == a && tries < 16 {
            b = self.sample_account();
            tries += 1;
        }
        if b == a {
            b = (a + 1) % self.num_accounts;
        }
        (a, b)
    }
}

impl TxGenerator for SmallbankGenerator {
    fn next_tx(&mut self) -> Option<TxProfile> {
        let kind = self.rng.gen_range(0..6u32);
        let profile = match kind {
            // Balance: read both balances of one account.
            0 => {
                let a = self.sample_account();
                TxProfile::new(
                    "balance",
                    vec![
                        Op::Read(Self::checking_key(a)),
                        Op::Read(Self::savings_key(a)),
                    ],
                )
            }
            // DepositChecking: add to the checking balance.
            1 => {
                let a = self.sample_account();
                let amount = self.rng.gen_range(1..100i64);
                TxProfile::new(
                    "deposit_checking",
                    vec![Op::RmwAdd {
                        key: Self::checking_key(a),
                        delta: amount,
                    }],
                )
            }
            // TransactSavings: add to (or subtract from) the savings balance.
            2 => {
                let a = self.sample_account();
                let amount = self.rng.gen_range(-50..100i64);
                TxProfile::new(
                    "transact_savings",
                    vec![Op::RmwAdd {
                        key: Self::savings_key(a),
                        delta: amount,
                    }],
                )
            }
            // Amalgamate: move everything from account a to account b's
            // checking balance.
            3 => {
                let (a, b) = self.two_distinct_accounts();
                TxProfile::new(
                    "amalgamate",
                    vec![
                        Op::Read(Self::checking_key(a)),
                        Op::Read(Self::savings_key(a)),
                        Op::Write(Self::checking_key(a), Value::from_u64(0)),
                        Op::Write(Self::savings_key(a), Value::from_u64(0)),
                        Op::RmwAdd {
                            key: Self::checking_key(b),
                            delta: 50,
                        },
                    ],
                )
            }
            // WriteCheck: check both balances, then deduct from checking.
            4 => {
                let a = self.sample_account();
                let amount = self.rng.gen_range(1..50i64);
                TxProfile::new(
                    "write_check",
                    vec![
                        Op::Read(Self::savings_key(a)),
                        Op::RmwAdd {
                            key: Self::checking_key(a),
                            delta: -amount,
                        },
                    ],
                )
            }
            // SendPayment: move money between two checking accounts.
            _ => {
                let (a, b) = self.two_distinct_accounts();
                let amount = self.rng.gen_range(1..50i64);
                TxProfile::new(
                    "send_payment",
                    vec![
                        Op::RmwAdd {
                            key: Self::checking_key(a),
                            delta: -amount,
                        },
                        Op::RmwAdd {
                            key: Self::checking_key(b),
                            delta: amount,
                        },
                    ],
                )
            }
        };
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generates_all_transaction_types() {
        let mut g = SmallbankGenerator::new(1, 10_000, 100, 0.9);
        let mut labels = HashSet::new();
        for _ in 0..500 {
            labels.insert(g.next_tx().expect("tx").label);
        }
        for expected in [
            "balance",
            "deposit_checking",
            "transact_savings",
            "amalgamate",
            "write_check",
            "send_payment",
        ] {
            assert!(labels.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn hotspot_dominates_accesses() {
        let mut g = SmallbankGenerator::new(2, 1_000_000, 1_000, 0.9);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..2_000 {
            let tx = g.next_tx().expect("tx");
            for op in &tx.ops {
                let account: u64 = op
                    .key()
                    .as_str()
                    .split(':')
                    .nth(1)
                    .expect("account id")
                    .parse()
                    .expect("numeric");
                if account < 1_000 {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            frac > 0.8,
            "hot accounts should receive ~90% of accesses, got {frac}"
        );
    }

    #[test]
    fn initial_data_has_two_keys_per_account() {
        let data = SmallbankGenerator::initial_data(10, 1_000);
        assert_eq!(data.len(), 20);
        assert!(data.iter().all(|(_, v)| v.as_u64() == Some(1_000)));
    }

    #[test]
    fn amalgamate_touches_two_accounts() {
        let mut g = SmallbankGenerator::new(3, 100, 10, 0.5);
        let amalgamate = (0..500)
            .filter_map(|_| {
                let tx = g.next_tx().expect("tx");
                (tx.label == "amalgamate").then_some(tx)
            })
            .next()
            .expect("an amalgamate transaction in 500 draws");
        let accounts: HashSet<String> = amalgamate
            .ops
            .iter()
            .map(|o| o.key().as_str().split(':').nth(1).expect("id").to_string())
            .collect();
        assert_eq!(accounts.len(), 2);
    }

    #[test]
    fn transactions_are_small() {
        // Smallbank transactions are "relatively small" (Section 6.1); the
        // generator should never emit more than a handful of operations.
        let mut g = SmallbankGenerator::paper_config(5);
        for _ in 0..200 {
            assert!(g.next_tx().expect("tx").ops.len() <= 5);
        }
    }
}
