//! Zipfian sampling.
//!
//! Implements the rejection-inversion-free approximation of Gray et al.
//! ("Quickly generating billion-record synthetic databases", SIGMOD '94),
//! the same construction YCSB uses: the zeta normalization constant is
//! computed once in `O(n)`, after which every sample is `O(1)`.

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` with skew `theta` (larger theta =
/// more skew). Rank 0 is the most popular item.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with skew `theta` (0 < theta < 1 for
    /// the classical YCSB range; the paper uses 0.9 for RW-Z and 0.75 for
    /// Retwis).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0f64 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        ZipfSampler {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0..n`; smaller ranks are more likely.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Unused accessor kept for completeness (the two-element zeta used by
    /// the approximation).
    pub fn zeta_theta(&self) -> f64 {
        self.zeta_theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = ZipfSampler::new(1000, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = ZipfSampler::new(10_000, 0.9);
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..50_000).map(|_| z.sample(&mut rng)).collect();
        let top10 = samples.iter().filter(|&&s| s < 10).count() as f64 / samples.len() as f64;
        let tail = samples.iter().filter(|&&s| s >= 5_000).count() as f64 / samples.len() as f64;
        assert!(
            top10 > 0.15,
            "top-10 ranks should absorb a large share, got {top10}"
        );
        assert!(tail < 0.2, "the tail should be rare, got {tail}");
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let skewed = ZipfSampler::new(10_000, 0.95);
        let flat = ZipfSampler::new(10_000, 0.5);
        let frac_top = |z: &ZipfSampler, rng: &mut SmallRng| {
            let hits = (0..20_000).filter(|_| z.sample(rng) < 10).count();
            hits as f64 / 20_000.0
        };
        let s = frac_top(&skewed, &mut rng);
        let f = frac_top(&flat, &mut rng);
        assert!(
            s > f,
            "theta=0.95 ({s}) should be more skewed than 0.5 ({f})"
        );
    }

    #[test]
    fn single_item_always_returns_zero() {
        let z = ZipfSampler::new(1, 0.9);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!((0..100).all(|_| z.sample(&mut rng) == 0));
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1)")]
    fn invalid_theta_panics() {
        let _ = ZipfSampler::new(10, 1.5);
    }
}
