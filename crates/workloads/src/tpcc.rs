//! TPC-C: the order-processing benchmark (Figure 4).
//!
//! The paper runs TPC-C with 20 warehouses and notes two adaptations for a
//! key-value API without secondary indices: a separate table mapping a
//! customer to their latest order (used by order-status) and a separate table
//! for looking customers up by last name (used by order-status and payment).
//! Both auxiliary tables are modelled here as dedicated key spaces.
//!
//! The generator emits the standard transaction mix: new-order (45%), payment
//! (43%), order-status (4%), delivery (4%), and stock-level (4%). As in the
//! paper, contention concentrates on the read-write conflict between payment
//! (which updates warehouse and district year-to-date counters) and new-order
//! (which reads them and bumps the district's next-order id).

use basil_common::{Key, Op, TxGenerator, TxProfile, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Number of districts per warehouse (TPC-C standard).
pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
/// Number of customers per district (TPC-C standard).
pub const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
/// Number of items in the catalogue (TPC-C standard).
pub const NUM_ITEMS: u64 = 100_000;
/// Number of distinct last names used by the non-uniform customer selection.
pub const NUM_LAST_NAMES: u64 = 1_000;

/// The TPC-C generator.
#[derive(Debug)]
pub struct TpccGenerator {
    rng: SmallRng,
    warehouses: u64,
    /// Next order id per (warehouse, district), tracked client-side so order
    /// keys are unique per generator.
    next_order_id: HashMap<(u64, u64), u64>,
    client_tag: u64,
}

impl TpccGenerator {
    /// The paper's configuration: 20 warehouses.
    pub fn paper_config(seed: u64) -> Self {
        Self::new(seed, 20)
    }

    /// A custom warehouse count.
    pub fn new(seed: u64, warehouses: u64) -> Self {
        TpccGenerator {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(2_654_435_761).wrapping_add(3)),
            warehouses: warehouses.max(1),
            next_order_id: HashMap::new(),
            client_tag: seed,
        }
    }

    // Key builders ------------------------------------------------------

    /// Warehouse row (year-to-date counter).
    pub fn warehouse_key(w: u64) -> Key {
        Key::new(format!("warehouse:{w}"))
    }

    /// District row (year-to-date counter and next order id).
    pub fn district_key(w: u64, d: u64) -> Key {
        Key::new(format!("district:{w}:{d}"))
    }

    /// Customer row (balance).
    pub fn customer_key(w: u64, d: u64, c: u64) -> Key {
        Key::new(format!("customer:{w}:{d}:{c}"))
    }

    /// Auxiliary table: customer lookup by last name (the paper's secondary
    /// index substitute).
    pub fn customer_by_name_key(w: u64, d: u64, name: u64) -> Key {
        Key::new(format!("cust_name_idx:{w}:{d}:{name}"))
    }

    /// Auxiliary table: a customer's latest order (the paper's secondary
    /// index substitute for order-status).
    pub fn latest_order_key(w: u64, d: u64, c: u64) -> Key {
        Key::new(format!("cust_last_order:{w}:{d}:{c}"))
    }

    /// Stock row.
    pub fn stock_key(w: u64, i: u64) -> Key {
        Key::new(format!("stock:{w}:{i}"))
    }

    /// Item row (read-only catalogue).
    pub fn item_key(i: u64) -> Key {
        Key::new(format!("item:{i}"))
    }

    /// Order row.
    pub fn order_key(w: u64, d: u64, o: u64) -> Key {
        Key::new(format!("order:{w}:{d}:{o}"))
    }

    /// Order-line row.
    pub fn order_line_key(w: u64, d: u64, o: u64, line: u64) -> Key {
        Key::new(format!("order_line:{w}:{d}:{o}:{line}"))
    }

    /// New-order queue row.
    pub fn new_order_key(w: u64, d: u64, o: u64) -> Key {
        Key::new(format!("new_order:{w}:{d}:{o}"))
    }

    // Sampling helpers ---------------------------------------------------

    fn pick_warehouse(&mut self) -> u64 {
        self.rng.gen_range(0..self.warehouses)
    }

    fn pick_district(&mut self) -> u64 {
        self.rng.gen_range(0..DISTRICTS_PER_WAREHOUSE)
    }

    fn pick_customer(&mut self) -> u64 {
        // TPC-C uses a non-uniform random distribution; approximate it by
        // favouring a hot subset.
        if self.rng.gen_bool(0.6) {
            self.rng.gen_range(0..CUSTOMERS_PER_DISTRICT / 10)
        } else {
            self.rng.gen_range(0..CUSTOMERS_PER_DISTRICT)
        }
    }

    fn pick_item(&mut self) -> u64 {
        self.rng.gen_range(0..NUM_ITEMS)
    }

    fn alloc_order_id(&mut self, w: u64, d: u64) -> u64 {
        let next = self.next_order_id.entry((w, d)).or_insert(0);
        *next += 1;
        // Make order ids globally unique across generators by tagging with
        // the client seed.
        *next * 10_000 + self.client_tag % 10_000
    }

    // Transactions -------------------------------------------------------

    fn new_order(&mut self) -> TxProfile {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let o = self.alloc_order_id(w, d);
        let item_count = self.rng.gen_range(5..=15u64);

        let mut ops = vec![
            // Reads the warehouse tax rate; conflicts with payment's ytd
            // update on the same key.
            Op::Read(Self::warehouse_key(w)),
            // Bumps the district's next-order-id.
            Op::RmwAdd {
                key: Self::district_key(w, d),
                delta: 1,
            },
            Op::Read(Self::customer_key(w, d, c)),
        ];
        for line in 0..item_count {
            let item = self.pick_item();
            ops.push(Op::Read(Self::item_key(item)));
            ops.push(Op::RmwAdd {
                key: Self::stock_key(w, item),
                delta: -(self.rng.gen_range(1..=10i64)),
            });
            ops.push(Op::Write(
                Self::order_line_key(w, d, o, line),
                Value::from_u64(item),
            ));
        }
        ops.push(Op::Write(Self::order_key(w, d, o), Value::from_u64(c)));
        ops.push(Op::Write(Self::new_order_key(w, d, o), Value::from_u64(1)));
        ops.push(Op::Write(
            Self::latest_order_key(w, d, c),
            Value::from_u64(o),
        ));
        TxProfile::new("new_order", ops)
    }

    fn payment(&mut self) -> TxProfile {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let amount = self.rng.gen_range(1..5_000i64);
        let mut ops = vec![
            Op::RmwAdd {
                key: Self::warehouse_key(w),
                delta: amount,
            },
            Op::RmwAdd {
                key: Self::district_key(w, d),
                delta: amount,
            },
        ];
        // 60% of payments select the customer by last name through the
        // auxiliary index table (as in the TPC-C specification and the
        // paper's adaptation).
        if self.rng.gen_bool(0.6) {
            let name = self.rng.gen_range(0..NUM_LAST_NAMES);
            ops.push(Op::Read(Self::customer_by_name_key(w, d, name)));
        }
        let c = self.pick_customer();
        ops.push(Op::RmwAdd {
            key: Self::customer_key(w, d, c),
            delta: -amount,
        });
        TxProfile::new("payment", ops)
    }

    fn order_status(&mut self) -> TxProfile {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let mut ops = Vec::new();
        if self.rng.gen_bool(0.6) {
            let name = self.rng.gen_range(0..NUM_LAST_NAMES);
            ops.push(Op::Read(Self::customer_by_name_key(w, d, name)));
        }
        ops.push(Op::Read(Self::customer_key(w, d, c)));
        // Locate the customer's latest order through the auxiliary table.
        ops.push(Op::Read(Self::latest_order_key(w, d, c)));
        let o = self.next_order_id.get(&(w, d)).copied().unwrap_or(1).max(1);
        ops.push(Op::Read(Self::order_key(w, d, o)));
        for line in 0..5 {
            ops.push(Op::Read(Self::order_line_key(w, d, o, line)));
        }
        TxProfile::new("order_status", ops)
    }

    fn delivery(&mut self) -> TxProfile {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let o = self.next_order_id.get(&(w, d)).copied().unwrap_or(1).max(1);
        TxProfile::new(
            "delivery",
            vec![
                Op::Read(Self::new_order_key(w, d, o)),
                Op::Write(Self::new_order_key(w, d, o), Value::from_u64(0)),
                Op::Write(Self::order_key(w, d, o), Value::from_u64(99)),
                Op::RmwAdd {
                    key: Self::customer_key(w, d, c),
                    delta: 100,
                },
            ],
        )
    }

    fn stock_level(&mut self) -> TxProfile {
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let mut ops = vec![Op::Read(Self::district_key(w, d))];
        for _ in 0..20 {
            let item = self.pick_item();
            ops.push(Op::Read(Self::stock_key(w, item)));
        }
        TxProfile::new("stock_level", ops)
    }
}

impl TxGenerator for TpccGenerator {
    fn next_tx(&mut self) -> Option<TxProfile> {
        let dice = self.rng.gen_range(0..100u32);
        let profile = if dice < 45 {
            self.new_order()
        } else if dice < 88 {
            self.payment()
        } else if dice < 92 {
            self.order_status()
        } else if dice < 96 {
            self.delivery()
        } else {
            self.stock_level()
        };
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn mix_matches_tpcc_proportions() {
        let mut g = TpccGenerator::paper_config(1);
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        let total = 10_000;
        for _ in 0..total {
            *counts.entry(g.next_tx().expect("tx").label).or_insert(0) += 1;
        }
        let frac = |l: &str| counts.get(l).copied().unwrap_or(0) as f64 / total as f64;
        assert!((frac("new_order") - 0.45).abs() < 0.03);
        assert!((frac("payment") - 0.43).abs() < 0.03);
        assert!((frac("order_status") - 0.04).abs() < 0.02);
        assert!((frac("delivery") - 0.04).abs() < 0.02);
        assert!((frac("stock_level") - 0.04).abs() < 0.02);
    }

    #[test]
    fn new_order_touches_district_and_stock() {
        let mut g = TpccGenerator::paper_config(2);
        let tx = (0..100)
            .filter_map(|_| {
                let t = g.next_tx().expect("tx");
                (t.label == "new_order").then_some(t)
            })
            .next()
            .expect("a new_order in 100 draws");
        assert!(tx
            .ops
            .iter()
            .any(|o| o.key().as_str().starts_with("district:")));
        assert!(tx
            .ops
            .iter()
            .any(|o| o.key().as_str().starts_with("stock:")));
        assert!(tx
            .ops
            .iter()
            .any(|o| o.key().as_str().starts_with("order_line:")));
        // 5-15 items => between ~13 and ~36 operations.
        assert!(tx.ops.len() >= 13);
    }

    #[test]
    fn payment_and_new_order_conflict_on_warehouse_and_district() {
        // The contention the paper highlights: payment writes the warehouse
        // row that new-order reads.
        let mut g = TpccGenerator::new(3, 1); // single warehouse maximizes conflict
        let mut payment_writes_warehouse = false;
        let mut new_order_reads_warehouse = false;
        for _ in 0..200 {
            let tx = g.next_tx().expect("tx");
            match tx.label {
                "payment" => {
                    payment_writes_warehouse |= tx
                        .ops
                        .iter()
                        .any(|o| o.is_write() && o.key().as_str().starts_with("warehouse:"));
                }
                "new_order" => {
                    new_order_reads_warehouse |= tx
                        .ops
                        .iter()
                        .any(|o| o.is_read() && o.key().as_str().starts_with("warehouse:"));
                }
                _ => {}
            }
        }
        assert!(payment_writes_warehouse);
        assert!(new_order_reads_warehouse);
    }

    #[test]
    fn order_ids_are_unique_per_generator() {
        let mut g = TpccGenerator::new(4, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let tx = g.next_tx().expect("tx");
            if tx.label == "new_order" {
                for op in &tx.ops {
                    if op.key().as_str().starts_with("order:") && op.is_write() {
                        assert!(seen.insert(op.key().clone()), "duplicate order key");
                    }
                }
            }
        }
    }

    #[test]
    fn warehouses_are_bounded() {
        let mut g = TpccGenerator::paper_config(5);
        for _ in 0..500 {
            let tx = g.next_tx().expect("tx");
            for op in &tx.ops {
                if let Some(rest) = op.key().as_str().strip_prefix("warehouse:") {
                    let w: u64 = rest.parse().expect("numeric warehouse");
                    assert!(w < 20);
                }
            }
        }
    }
}
