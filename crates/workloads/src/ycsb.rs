//! YCSB-T: the transactional microbenchmark used in Sections 6.2-6.4.
//!
//! Each transaction performs a configurable number of reads and writes over a
//! large key space ("a simple workload of identical transactions over ten
//! million keys"). Two access distributions are used in the paper: uniform
//! (`RW-U`, resource-bound) and Zipfian with coefficient 0.9 (`RW-Z`,
//! contention-bound).

use crate::zipf::ZipfSampler;
use basil_common::{Key, Op, TxGenerator, TxProfile, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Access distribution over the key space.
#[derive(Clone)]
enum Distribution {
    Uniform,
    Zipf(ZipfSampler),
}

/// The YCSB-T generator.
#[derive(Debug)]
pub struct YcsbGenerator {
    rng: SmallRng,
    num_keys: u64,
    reads: usize,
    writes: usize,
    distribution: Distribution,
    label: &'static str,
}

impl std::fmt::Debug for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Distribution::Uniform => f.write_str("Uniform"),
            Distribution::Zipf(z) => write!(f, "Zipf(theta={})", z.theta()),
        }
    }
}

impl YcsbGenerator {
    /// The paper's default key-space size (ten million keys).
    pub const PAPER_NUM_KEYS: u64 = 10_000_000;

    /// The uniform `RW-U` workload: `reads` reads and `writes` writes per
    /// transaction, uniform over `num_keys` keys.
    pub fn rw_uniform(seed: u64, num_keys: u64, reads: usize, writes: usize) -> Self {
        YcsbGenerator {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)),
            num_keys: num_keys.max(1),
            reads,
            writes,
            distribution: Distribution::Uniform,
            label: "rw-u",
        }
    }

    /// The Zipfian `RW-Z` workload (coefficient 0.9 in the paper).
    pub fn rw_zipf(seed: u64, num_keys: u64, reads: usize, writes: usize, theta: f64) -> Self {
        YcsbGenerator {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(2)),
            num_keys: num_keys.max(1),
            reads,
            writes,
            distribution: Distribution::Zipf(ZipfSampler::new(num_keys.max(2), theta)),
            label: "rw-z",
        }
    }

    /// A read-only workload of `reads` operations per transaction (used by
    /// the read-quorum experiment, Figure 5b).
    pub fn read_only(seed: u64, num_keys: u64, reads: usize) -> Self {
        YcsbGenerator {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(3)),
            num_keys: num_keys.max(1),
            reads,
            writes: 0,
            distribution: Distribution::Uniform,
            label: "read-only",
        }
    }

    fn sample_key(&mut self) -> Key {
        let idx = match &self.distribution {
            Distribution::Uniform => self.rng.gen_range(0..self.num_keys),
            Distribution::Zipf(z) => z.sample(&mut self.rng),
        };
        Key::new(format!("user{idx}"))
    }

    /// The workload label ("rw-u", "rw-z", or "read-only").
    pub fn label(&self) -> &'static str {
        self.label
    }
}

impl TxGenerator for YcsbGenerator {
    fn next_tx(&mut self) -> Option<TxProfile> {
        let mut ops = Vec::with_capacity(self.reads + self.writes);
        // Writes target distinct keys sampled from the same distribution;
        // reads likewise. A transaction of R reads and W writes matches the
        // paper's "transactions consist of two reads and two writes" shape.
        let mut used: Vec<Key> = Vec::new();
        for _ in 0..self.reads {
            let mut key = self.sample_key();
            let mut tries = 0;
            while used.contains(&key) && tries < 8 {
                key = self.sample_key();
                tries += 1;
            }
            used.push(key.clone());
            ops.push(Op::Read(key));
        }
        for _ in 0..self.writes {
            let mut key = self.sample_key();
            let mut tries = 0;
            while used.contains(&key) && tries < 8 {
                key = self.sample_key();
                tries += 1;
            }
            used.push(key.clone());
            let value = Value::from_u64(self.rng.gen());
            ops.push(Op::Write(key, value));
        }
        Some(TxProfile::new(self.label, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_uniform_produces_requested_shape() {
        let mut g = YcsbGenerator::rw_uniform(1, 1000, 2, 2);
        for _ in 0..50 {
            let tx = g.next_tx().expect("infinite generator");
            assert_eq!(tx.reads(), 2);
            assert_eq!(tx.writes(), 2);
            assert_eq!(tx.ops.len(), 4);
            assert_eq!(tx.label, "rw-u");
        }
    }

    #[test]
    fn read_only_has_no_writes() {
        let mut g = YcsbGenerator::read_only(1, 1000, 24);
        let tx = g.next_tx().expect("tx");
        assert_eq!(tx.reads(), 24);
        assert_eq!(tx.writes(), 0);
    }

    #[test]
    fn zipf_workload_concentrates_on_hot_keys() {
        let mut g = YcsbGenerator::rw_zipf(1, 100_000, 2, 2, 0.9);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let tx = g.next_tx().expect("tx");
            for op in &tx.ops {
                let name = op.key().as_str().trim_start_matches("user");
                let idx: u64 = name.parse().expect("numeric key");
                if idx < 100 {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.2, "hot keys should dominate, got {frac}");
    }

    #[test]
    fn uniform_workload_spreads_accesses() {
        let mut g = YcsbGenerator::rw_uniform(1, 100_000, 2, 2);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let tx = g.next_tx().expect("tx");
            for op in &tx.ops {
                let idx: u64 = op
                    .key()
                    .as_str()
                    .trim_start_matches("user")
                    .parse()
                    .expect("numeric");
                if idx < 100 {
                    hot += 1;
                }
                total += 1;
            }
        }
        assert!((hot as f64 / total as f64) < 0.05);
    }

    #[test]
    fn distinct_keys_within_a_transaction() {
        let mut g = YcsbGenerator::rw_uniform(1, 1_000_000, 3, 3);
        for _ in 0..100 {
            let tx = g.next_tx().expect("tx");
            let keys: std::collections::HashSet<_> =
                tx.ops.iter().map(|o| o.key().clone()).collect();
            assert_eq!(keys.len(), tx.ops.len(), "keys should not repeat");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let txs = |seed| {
            let mut g = YcsbGenerator::rw_uniform(seed, 1000, 2, 2);
            (0..10)
                .map(|_| g.next_tx().expect("tx"))
                .collect::<Vec<_>>()
        };
        assert_eq!(txs(7), txs(7));
        assert_ne!(txs(7), txs(8));
    }
}
