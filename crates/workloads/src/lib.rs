//! # basil-workloads
//!
//! The benchmark workloads used in the Basil evaluation (Section 6), built
//! from scratch as closed-loop transaction generators:
//!
//! * [`ycsb`] — the YCSB-T microbenchmark: configurable reads/writes per
//!   transaction over a large key space, with a uniform (`RW-U`) or Zipfian
//!   (`RW-Z`, coefficient 0.9) access distribution (Figures 5 and 6).
//! * [`smallbank`] — the Smallbank banking benchmark: one million accounts,
//!   1,000 of which receive 90% of the accesses (Figure 4).
//! * [`retwis`] — the Retwis-based social-network workload used to evaluate
//!   TAPIR, with a Zipf 0.75 key distribution (Figure 4).
//! * [`tpcc`] — TPC-C configured with 20 warehouses and the auxiliary
//!   customer-name index tables the paper describes (Figure 4).
//! * [`zipf`] — the Zipfian sampler shared by the generators (the
//!   Gray et al. approximation used by YCSB).
//! * [`poisson`] — an open-loop adapter that paces any of the above with
//!   seeded Poisson arrivals for the throughput/latency knee sweeps.
//!
//! Every generator implements [`basil_common::TxGenerator`] and produces
//! [`basil_common::TxProfile`]s, so the same workloads drive Basil and every
//! baseline system.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod poisson;
pub mod retwis;
pub mod smallbank;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use poisson::PoissonTxGenerator;
pub use retwis::RetwisGenerator;
pub use smallbank::SmallbankGenerator;
pub use tpcc::TpccGenerator;
pub use ycsb::YcsbGenerator;
pub use zipf::ZipfSampler;
