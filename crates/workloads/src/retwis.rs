//! Retwis: the social-network workload used to evaluate TAPIR (Figure 4).
//!
//! Retwis models a Twitter-like application backed by a key-value store. We
//! follow the transaction mix of the TAPIR evaluation: add-user (5%),
//! follow/unfollow (15%), post-tweet (30%), and load-timeline (50%), with
//! keys drawn from a moderately skewed Zipfian distribution (coefficient
//! 0.75, as stated in Section 6.1).

use crate::zipf::ZipfSampler;
use basil_common::{Key, Op, TxGenerator, TxProfile, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Retwis generator.
#[derive(Debug)]
pub struct RetwisGenerator {
    rng: SmallRng,
    zipf: ZipfSampler,
    num_users: u64,
    next_tweet_id: u64,
}

impl RetwisGenerator {
    /// The paper's configuration: Zipf 0.75 over the user population.
    pub fn paper_config(seed: u64, num_users: u64) -> Self {
        Self::new(seed, num_users, 0.75)
    }

    /// A custom configuration.
    pub fn new(seed: u64, num_users: u64, theta: f64) -> Self {
        RetwisGenerator {
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(7)),
            zipf: ZipfSampler::new(num_users.max(2), theta),
            num_users: num_users.max(2),
            next_tweet_id: seed.wrapping_mul(1_000_003),
        }
    }

    fn user_key(user: u64) -> Key {
        Key::new(format!("user:{user}"))
    }

    fn followers_key(user: u64) -> Key {
        Key::new(format!("followers:{user}"))
    }

    fn following_key(user: u64) -> Key {
        Key::new(format!("following:{user}"))
    }

    fn timeline_key(user: u64) -> Key {
        Key::new(format!("timeline:{user}"))
    }

    fn tweet_key(id: u64) -> Key {
        Key::new(format!("tweet:{id}"))
    }

    fn sample_user(&mut self) -> u64 {
        self.zipf.sample(&mut self.rng)
    }
}

impl TxGenerator for RetwisGenerator {
    fn next_tx(&mut self) -> Option<TxProfile> {
        let dice = self.rng.gen_range(0..100u32);
        let profile = if dice < 5 {
            // Add user: read a reference user, create the new user's records.
            let reference = self.sample_user();
            let new_user = self.rng.gen_range(0..self.num_users);
            TxProfile::new(
                "add_user",
                vec![
                    Op::Read(Self::user_key(reference)),
                    Op::Write(Self::user_key(new_user), Value::from_str_value("profile")),
                    Op::Write(Self::followers_key(new_user), Value::from_u64(0)),
                    Op::Write(Self::following_key(new_user), Value::from_u64(0)),
                ],
            )
        } else if dice < 20 {
            // Follow: update both users' relationship counters.
            let a = self.sample_user();
            let b = self.sample_user();
            TxProfile::new(
                "follow",
                vec![
                    Op::RmwAdd {
                        key: Self::following_key(a),
                        delta: 1,
                    },
                    Op::RmwAdd {
                        key: Self::followers_key(b),
                        delta: 1,
                    },
                ],
            )
        } else if dice < 50 {
            // Post tweet: write the tweet, bump the author's counters, and
            // append to the author's timeline.
            let author = self.sample_user();
            self.next_tweet_id = self.next_tweet_id.wrapping_add(1);
            let tweet = self.next_tweet_id;
            TxProfile::new(
                "post_tweet",
                vec![
                    Op::Read(Self::user_key(author)),
                    Op::Write(Self::tweet_key(tweet), Value::from_str_value("140 chars")),
                    Op::RmwAdd {
                        key: Self::timeline_key(author),
                        delta: 1,
                    },
                    Op::RmwAdd {
                        key: Self::user_key(author),
                        delta: 1,
                    },
                ],
            )
        } else {
            // Load timeline: read between 1 and 10 timelines of followed
            // users.
            let count = self.rng.gen_range(1..=10u32);
            let mut ops = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let user = self.sample_user();
                ops.push(Op::Read(Self::timeline_key(user)));
            }
            TxProfile::new("get_timeline", ops)
        };
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn mix_roughly_matches_configuration() {
        let mut g = RetwisGenerator::paper_config(1, 100_000);
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        let total = 5_000;
        for _ in 0..total {
            *counts.entry(g.next_tx().expect("tx").label).or_insert(0) += 1;
        }
        let frac = |label: &str| counts.get(label).copied().unwrap_or(0) as f64 / total as f64;
        assert!(
            (frac("add_user") - 0.05).abs() < 0.02,
            "add_user {}",
            frac("add_user")
        );
        assert!((frac("follow") - 0.15).abs() < 0.03);
        assert!((frac("post_tweet") - 0.30).abs() < 0.04);
        assert!((frac("get_timeline") - 0.50).abs() < 0.04);
    }

    #[test]
    fn timeline_reads_are_bounded() {
        let mut g = RetwisGenerator::paper_config(2, 1_000);
        for _ in 0..500 {
            let tx = g.next_tx().expect("tx");
            if tx.label == "get_timeline" {
                assert!((1..=10).contains(&tx.ops.len()));
                assert_eq!(tx.writes(), 0);
            }
        }
    }

    #[test]
    fn post_tweet_writes_new_tweets() {
        let mut g = RetwisGenerator::paper_config(3, 1_000);
        let mut tweet_keys = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let tx = g.next_tx().expect("tx");
            if tx.label == "post_tweet" {
                for op in &tx.ops {
                    if op.key().as_str().starts_with("tweet:") {
                        assert!(tweet_keys.insert(op.key().clone()), "tweet ids are unique");
                    }
                }
            }
        }
        assert!(!tweet_keys.is_empty());
    }

    #[test]
    fn accesses_are_skewed_toward_popular_users() {
        let mut g = RetwisGenerator::paper_config(4, 100_000);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..3_000 {
            let tx = g.next_tx().expect("tx");
            for op in &tx.ops {
                if let Some(id) = op.key().as_str().split(':').nth(1) {
                    if let Ok(user) = id.parse::<u64>() {
                        if user < 1_000 {
                            hot += 1;
                        }
                        total += 1;
                    }
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            frac > 0.2,
            "Zipf 0.75 should concentrate accesses, got {frac}"
        );
    }
}
