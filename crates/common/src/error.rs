//! Error types shared across the workspace.

use crate::ids::TxId;
use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, BasilError>;

/// Errors surfaced by the store, the protocol, or the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BasilError {
    /// A transaction aborted; carries the reason reported to the application.
    Aborted {
        /// The transaction that aborted.
        txid: TxId,
        /// Human-readable abort reason.
        reason: AbortReason,
    },
    /// A message, certificate, or signature failed validation.
    InvalidMessage(String),
    /// A quorum could not be assembled (e.g. too many unresponsive replicas).
    QuorumUnavailable(String),
    /// The caller used the API out of order (e.g. committing a transaction
    /// that was never begun).
    InvalidState(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// An operation timed out.
    Timeout(String),
}

/// Why a transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A replica's MVTSO check found a serializability conflict.
    Conflict,
    /// The transaction's timestamp exceeded a replica's acceptance window.
    TimestampOutOfBounds,
    /// A dependency of the transaction aborted.
    DependencyAborted,
    /// The application asked for the abort.
    User,
    /// The transaction conflicts with an already committed transaction
    /// (fast abort with a commit certificate as proof).
    ConflictWithCommitted,
    /// A dependency claimed by the transaction could not be validated.
    InvalidDependency,
    /// The fallback protocol decided to abort the transaction.
    Fallback,
    /// The transaction metadata itself proves client misbehaviour (e.g. it
    /// claims to have read a version newer than its own timestamp).
    Misbehavior,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Conflict => "serializability conflict",
            AbortReason::TimestampOutOfBounds => "timestamp outside acceptance window",
            AbortReason::DependencyAborted => "dependency aborted",
            AbortReason::User => "application abort",
            AbortReason::ConflictWithCommitted => "conflict with committed transaction",
            AbortReason::InvalidDependency => "invalid dependency",
            AbortReason::Fallback => "fallback decision",
            AbortReason::Misbehavior => "client misbehaviour detected",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BasilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasilError::Aborted { txid, reason } => {
                write!(f, "transaction {txid} aborted: {reason}")
            }
            BasilError::InvalidMessage(m) => write!(f, "invalid message: {m}"),
            BasilError::QuorumUnavailable(m) => write!(f, "quorum unavailable: {m}"),
            BasilError::InvalidState(m) => write!(f, "invalid state: {m}"),
            BasilError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            BasilError::Timeout(m) => write!(f, "timed out: {m}"),
        }
    }
}

impl std::error::Error for BasilError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BasilError::Aborted {
            txid: TxId::default(),
            reason: AbortReason::Conflict,
        };
        let s = e.to_string();
        assert!(s.contains("aborted"));
        assert!(s.contains("conflict"));
        assert!(BasilError::Timeout("prepare".into())
            .to_string()
            .contains("prepare"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<BasilError>();
    }

    #[test]
    fn all_abort_reasons_have_distinct_text() {
        use AbortReason::*;
        let all = [
            Conflict,
            TimestampOutOfBounds,
            DependencyAborted,
            User,
            ConflictWithCommitted,
            InvalidDependency,
            Fallback,
            Misbehavior,
        ];
        let texts: std::collections::HashSet<String> = all.iter().map(|r| r.to_string()).collect();
        assert_eq!(texts.len(), all.len());
    }
}
