//! Keys and values stored by the system.
//!
//! Basil is a key-value store: keys are opaque UTF-8 strings (benchmarks use
//! structured names such as `"warehouse:3"` or `"acct:12345:checking"`), and
//! values are opaque byte strings. Both are reference-counted so the
//! multiversion store and in-flight messages can share them without copying.

use std::fmt;
use std::sync::Arc;

/// A key in the store. Cheap to clone (`Arc<str>`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Arc<str>);

/// A value in the store. Cheap to clone (`Arc<[u8]>`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Value(Arc<[u8]>);

impl Key {
    /// Creates a key from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Key(Arc::from(s.as_ref()))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The key as raw bytes (used when hashing transaction metadata).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Length of the key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl AsRef<[u8]>) -> Self {
        Value(Arc::from(bytes.as_ref()))
    }

    /// Creates a value from a UTF-8 string.
    pub fn from_str_value(s: &str) -> Self {
        Value(Arc::from(s.as_bytes()))
    }

    /// A conventional empty value (e.g. a deleted marker or placeholder row).
    pub fn empty() -> Self {
        Value(Arc::from(&[] as &[u8]))
    }

    /// Encodes an unsigned integer as a value (used by the banking workloads
    /// that store balances).
    pub fn from_u64(v: u64) -> Self {
        Value(Arc::from(v.to_be_bytes().as_slice()))
    }

    /// Decodes a value previously produced by [`Value::from_u64`].
    ///
    /// Returns `None` if the value does not hold exactly eight bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }

    /// The raw bytes of the value.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<T: AsRef<str>> From<T> for Key {
    fn from(s: T) -> Self {
        Key::new(s)
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value::new(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::new(b)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::from_u64(v)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k\"{}\"", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Ok(s) = std::str::from_utf8(&self.0) {
            if s.len() <= 32 && s.chars().all(|c| !c.is_control()) {
                return write!(f, "v\"{s}\"");
            }
        }
        write!(f, "v[{} bytes]", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips() {
        let k = Key::new("acct:42");
        assert_eq!(k.as_str(), "acct:42");
        assert_eq!(k.as_bytes(), b"acct:42");
        assert_eq!(k.len(), 7);
        assert!(!k.is_empty());
        let k2: Key = "acct:42".into();
        assert_eq!(k, k2);
    }

    #[test]
    fn value_u64_round_trip() {
        let v = Value::from_u64(123_456);
        assert_eq!(v.as_u64(), Some(123_456));
        assert_eq!(v.len(), 8);
        let text = Value::from_str_value("hello");
        assert_eq!(text.as_u64(), None);
    }

    #[test]
    fn empty_value() {
        let v = Value::empty();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn keys_order_lexicographically() {
        let a = Key::new("a:1");
        let b = Key::new("a:2");
        let c = Key::new("b:0");
        assert!(a < b && b < c);
    }

    #[test]
    fn value_debug_is_readable_for_short_text() {
        assert_eq!(format!("{:?}", Value::from_str_value("hi")), "v\"hi\"");
        let big = Value::new(vec![0u8; 100]);
        assert_eq!(format!("{big:?}"), "v[100 bytes]");
    }

    #[test]
    fn clones_share_storage() {
        let v = Value::new(vec![1, 2, 3]);
        let w = v.clone();
        assert_eq!(v.as_bytes().as_ptr(), w.as_bytes().as_ptr());
    }
}
