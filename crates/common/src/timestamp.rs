//! Multiversion transaction timestamps.
//!
//! A Basil transaction is assigned a timestamp `ts = (Time, ClientID)` chosen
//! by the client at `Begin()` (Section 4.1). The pair defines a total
//! serialization order across all clients: timestamps are compared first by
//! wall-clock component and then by client identifier to break ties.

use crate::ids::ClientId;
use crate::time::{Duration, SimTime};
use std::fmt;

/// A transaction timestamp: `(time, client)`.
///
/// The ordering derived here *is* the serialization order MVTSO enforces, so
/// it is critical that it is total and antisymmetric; the derived
/// lexicographic ordering over `(time, client)` provides that because client
/// identifiers are unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    /// Wall-clock component, in nanoseconds of the client's local clock.
    pub time: u64,
    /// Identifier of the client that issued the transaction.
    pub client: ClientId,
}

impl Timestamp {
    /// The smallest possible timestamp; versions loaded at initialization use it.
    pub const ZERO: Timestamp = Timestamp {
        time: 0,
        client: ClientId(0),
    };

    /// Creates a timestamp from a local clock reading and the issuing client.
    pub fn new(time: SimTime, client: ClientId) -> Self {
        Timestamp {
            time: time.as_nanos(),
            client,
        }
    }

    /// Creates a timestamp directly from raw nanoseconds.
    pub fn from_nanos(time: u64, client: ClientId) -> Self {
        Timestamp { time, client }
    }

    /// The wall-clock component as a [`SimTime`].
    pub fn sim_time(&self) -> SimTime {
        SimTime::from_nanos(self.time)
    }

    /// Returns true if this timestamp's wall-clock component exceeds
    /// `clock + delta`, i.e. if a replica with local clock `clock` and
    /// tolerance `delta` must reject it (Algorithm 1, lines 1-2).
    pub fn exceeds_bound(&self, clock: SimTime, delta: Duration) -> bool {
        self.time > clock.as_nanos().saturating_add(delta.as_nanos())
    }

    /// Returns a copy of this timestamp with the wall-clock component shifted
    /// forward by `d`. Used by Byzantine client behaviours that inflate their
    /// timestamps.
    pub fn advanced_by(&self, d: Duration) -> Timestamp {
        Timestamp {
            time: self.time.saturating_add(d.as_nanos()),
            client: self.client,
        }
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts({}, {})", self.time, self.client)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_time_then_client() {
        let a = Timestamp::from_nanos(10, ClientId(5));
        let b = Timestamp::from_nanos(10, ClientId(6));
        let c = Timestamp::from_nanos(11, ClientId(1));
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn ordering_is_total_for_distinct_clients() {
        let a = Timestamp::from_nanos(10, ClientId(1));
        let b = Timestamp::from_nanos(10, ClientId(2));
        assert_ne!(a, b);
        assert!(a < b || b < a);
    }

    #[test]
    fn exceeds_bound_checks_delta_window() {
        let ts = Timestamp::from_nanos(1_500, ClientId(1));
        let clock = SimTime::from_nanos(1_000);
        assert!(!ts.exceeds_bound(clock, Duration::from_nanos(500)));
        assert!(ts.exceeds_bound(clock, Duration::from_nanos(499)));
    }

    #[test]
    fn advanced_by_only_moves_time() {
        let ts = Timestamp::from_nanos(100, ClientId(3));
        let moved = ts.advanced_by(Duration::from_nanos(50));
        assert_eq!(moved.time, 150);
        assert_eq!(moved.client, ClientId(3));
        assert!(ts < moved);
    }

    #[test]
    fn zero_is_minimal() {
        let any = Timestamp::from_nanos(1, ClientId(0));
        assert!(Timestamp::ZERO < any);
        assert!(Timestamp::ZERO <= Timestamp::ZERO);
    }

    #[test]
    fn sim_time_round_trip() {
        let ts = Timestamp::new(SimTime::from_micros(7), ClientId(2));
        assert_eq!(ts.sim_time(), SimTime::from_micros(7));
    }
}
