//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3, a keyed hash
//! designed to resist collision-flooding from untrusted input. Almost every
//! map on the Basil hot path is keyed by data that is *already* uniformly
//! distributed and attacker-independent — transaction ids and batch roots are
//! SHA-256 digests, keys are short workload-generated strings hashed millions
//! of times per run — so SipHash's per-lookup cost buys nothing. This module
//! provides an FxHash-style multiply-xor hasher (the scheme rustc itself uses
//! for its interned-symbol tables): bytes are folded eight at a time into a
//! single 64-bit state with a rotate, xor, and odd-constant multiply.
//!
//! Use [`FastHashMap`] / [`FastHashSet`] for digest-, id-, or key-keyed
//! protocol state. Do **not** use them for maps whose keys are chosen freely
//! by an untrusted network peer *and* whose size is unbounded; the bounded
//! `SignatureCache` and the per-transaction record maps (capped by protocol
//! quorums and client counts) are fine.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from Fx-style hashing: an odd constant close to
/// `2^64 / golden_ratio`, so multiplication mixes low bits into high bits.
const MULTIPLIER: u64 = 0x517c_c1b7_2722_0a95;

/// The hasher state: one 64-bit word folded with rotate-xor-multiply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(MULTIPLIER);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in with the tail bytes so "ab" + "\0"
            // and "ab\0" + "" cannot collide trivially.
            word[7] = rest.len() as u8;
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, zero-sized).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast multiply-xor hasher. Construct with
/// `FastHashMap::default()`.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast multiply-xor hasher.
pub type FastHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = hash_of(&[7u8; 32]);
        let b = hash_of(&[7u8; 32]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_inputs() {
        let mut digest_a = [0u8; 32];
        let mut digest_b = [0u8; 32];
        digest_b[31] = 1;
        assert_ne!(hash_of(&digest_a), hash_of(&digest_b));
        digest_a[0] = 1;
        digest_b[31] = 0;
        digest_b[0] = 2;
        assert_ne!(hash_of(&digest_a), hash_of(&digest_b));
    }

    #[test]
    fn tail_length_is_folded_in() {
        // Same bytes, different split between content and implicit padding.
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
        assert_ne!(hash_of(&b"".as_slice()), hash_of(&b"\0".as_slice()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FastHashMap<String, u32> = FastHashMap::default();
        map.insert("x".into(), 1);
        map.insert("y".into(), 2);
        assert_eq!(map.get("x"), Some(&1));

        let mut set: FastHashSet<u64> = FastHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
    }

    #[test]
    fn spreads_sequential_integers() {
        // Sequential ids must not collapse into the same buckets: check that
        // the low bits (what HashMap actually indexes with) vary.
        let mut low_bits: FastHashSet<u64> = FastHashSet::default();
        for i in 0u64..256 {
            low_bits.insert(hash_of(&i) & 0xff);
        }
        assert!(low_bits.len() > 128, "only {} distinct", low_bits.len());
    }
}
