//! Streaming log₂ latency histograms.
//!
//! The measurement pipeline used to keep every commit latency in a
//! per-client `Vec<u64>` and clone/concatenate all of them on every
//! harness `snapshot()`, then compute measurement-window latencies by
//! multiset-diffing the warmup snapshot out of the end snapshot — linear
//! work per sample per snapshot, quadratic-ish over long runs. A
//! [`LatencyHistogram`] replaces that: recording is O(1), snapshots merge
//! fixed-size bucket arrays, and a window is the bucket-wise difference of
//! two snapshots (valid because per-client histograms only ever grow).
//!
//! ## Bucket scheme
//!
//! Buckets are logarithmic base 2 with [`SUB_BUCKETS`] linear sub-buckets
//! per octave (the HdrHistogram construction): values below `SUB_BUCKETS`
//! get exact unit-width buckets, and a value with highest set bit `h ≥
//! SUB_BITS` lands in the sub-bucket of width `2^(h - SUB_BITS)` containing
//! it. Relative bucket width is therefore at most `1 / SUB_BUCKETS`
//! (~3.1%), which bounds the error of every percentile estimate; the exact
//! sum is carried separately so means are exact.

use std::fmt;

/// log₂ of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per octave (32 → ≤3.1% relative error).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// A streaming histogram of nanosecond latencies with log₂ buckets.
///
/// Supports O(1) [`record`](LatencyHistogram::record), cheap
/// [`merge`](LatencyHistogram::merge) across clients, and
/// [`diff`](LatencyHistogram::diff) between two points in time of the same
/// monotonically-growing source (the measurement-window computation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts, grown on demand to the highest seen bucket.
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all recorded values (for exact means).
    sum: u128,
}

/// Index of the bucket containing `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let h = 63 - value.leading_zeros(); // highest set bit, h >= SUB_BITS
    let e = h - SUB_BITS; // sub-bucket width is 2^e
    let sub = ((value >> e) - SUB_BUCKETS) as usize;
    (e as usize + 1) * SUB_BUCKETS as usize + sub
}

/// Lower bound (inclusive) and width of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let sub_buckets = SUB_BUCKETS as usize;
    if index < sub_buckets {
        return (index as u64, 1);
    }
    let e = (index / sub_buckets - 1) as u32;
    let sub = (index % sub_buckets) as u64;
    ((SUB_BUCKETS + sub) << e, 1u64 << e)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample, in nanoseconds. O(1).
    pub fn record(&mut self, value_ns: u64) {
        let idx = bucket_index(value_ns);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value_ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples, in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.sum
    }

    /// Exact mean of the recorded samples in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64 / 1e6
    }

    /// Folds another histogram into this one (aggregation across clients).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The samples recorded between `earlier` and `self`, where `earlier` is
    /// a previous snapshot of the same monotonically-growing histogram —
    /// bucket-wise subtraction, the replacement for multiset-diffing raw
    /// latency vectors.
    pub fn diff(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut counts = self.counts.clone();
        for (mine, old) in counts.iter_mut().zip(&earlier.counts) {
            *mine = mine.saturating_sub(*old);
        }
        LatencyHistogram {
            counts,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Estimate of the `p`-quantile (`p` in `[0, 1]`) in nanoseconds.
    ///
    /// Picks the bucket containing the sample of rank `round((count-1)·p)` —
    /// the same rank the exact sorted-vector percentile uses — and returns
    /// that bucket's midpoint, so the estimate is always within one bucket
    /// width (≤ `1/SUB_BUCKETS` relative error) of the exact percentile.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let (lower, width) = bucket_bounds(idx);
                return if width == 1 {
                    lower as f64
                } else {
                    lower as f64 + width as f64 / 2.0
                };
            }
        }
        // Unreachable when count > 0, but stay total.
        0.0
    }

    /// Estimate of the `p`-quantile in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.percentile_ns(p) / 1e6
    }

    /// Width in nanoseconds of the bucket containing `value_ns` — the
    /// resolution of any percentile estimate near that value.
    pub fn bucket_width_at(value_ns: u64) -> u64 {
        bucket_bounds(bucket_index(value_ns)).1
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
            self.count,
            self.mean_ms(),
            self.percentile_ms(0.50),
            self.percentile_ms(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        // Bucket indices are monotone in the value and bounds tile exactly.
        let mut prev = 0;
        for idx in 0..1000 {
            let (lower, width) = bucket_bounds(idx);
            if idx > 0 {
                assert_eq!(lower, prev, "bucket {idx} not contiguous");
            }
            assert_eq!(bucket_index(lower), idx);
            assert_eq!(bucket_index(lower + width - 1), idx);
            prev = lower + width;
        }
        assert_eq!(bucket_index(0), 0);
        assert!(bucket_index(u64::MAX) < 60 * SUB_BUCKETS as usize);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile_ns(0.0), 0.0);
        assert_eq!(h.percentile_ns(1.0), 31.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        h.record(3_000_000);
        assert!((h.mean_ms() - 2.0).abs() < 1e-12);
        assert_eq!(h.total_ns(), 4_000_000);
    }

    #[test]
    fn percentiles_are_within_one_bucket_width() {
        let mut h = LatencyHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            // xorshift values spread over ~3 decades.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 10_000 + x % 10_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((exact.len() - 1) as f64 * p).round() as usize;
            let truth = exact[rank];
            let est = h.percentile_ns(p);
            let tol = LatencyHistogram::bucket_width_at(truth) as f64;
            assert!(
                (est - truth as f64).abs() <= tol,
                "p{p}: est {est} vs exact {truth}, tol {tol}"
            );
        }
    }

    #[test]
    fn merge_sums_counts_and_diff_recovers_the_window() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        a.record(2_000_000);
        let warmup = a.clone();
        a.record(5_000_000);
        a.record(7_000_000);

        let mut b = LatencyHistogram::new();
        b.record(3_000_000);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);

        let window = a.diff(&warmup);
        assert_eq!(window.count(), 2);
        assert_eq!(window.total_ns(), 12_000_000);
        let p100 = window.percentile_ns(1.0);
        let tol = LatencyHistogram::bucket_width_at(7_000_000) as f64;
        assert!((p100 - 7_000_000.0).abs() <= tol);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.percentile_ns(0.5), 0.0);
        assert_eq!(
            format!("{h}"),
            "0 samples, mean 0.000 ms, p50 0.000 ms, p99 0.000 ms"
        );
    }
}
