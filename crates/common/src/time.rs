//! Simulated time.
//!
//! The whole reproduction runs against a logical clock with nanosecond
//! resolution. [`SimTime`] is a point in time, [`Duration`] is a span.
//! Both are thin wrappers around `u64` nanoseconds so they are `Copy`,
//! totally ordered, and cheap to pass through the event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time (nanoseconds since the start of the run).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds since time zero (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since time zero (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since time zero.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(&self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Constructs a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Constructs a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds in this duration.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(5) + Duration::from_millis(3);
        assert_eq!(t.as_millis(), 8);
        let d = t - SimTime::from_millis(2);
        assert_eq!(d.as_millis(), 6);
        assert_eq!((Duration::from_micros(10) * 3).as_micros(), 30);
        assert_eq!((Duration::from_micros(10) / 2).as_micros(), 5);
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_millis(1) - SimTime::from_millis(5);
        assert_eq!(d, Duration::ZERO);
        assert_eq!(
            Duration::from_nanos(1).saturating_sub(Duration::from_nanos(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn since_and_float_conversions() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(b.since(a).as_millis(), 15);
        assert_eq!(a.since(b), Duration::ZERO);
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((Duration::from_secs_f64(0.25).as_millis() as i64 - 250).abs() <= 1);
    }

    #[test]
    fn debug_formatting_scales_units() {
        assert_eq!(format!("{:?}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{:?}", Duration::from_micros(12)), "12.0us");
        assert_eq!(format!("{:?}", Duration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{:?}", Duration::from_secs(12)), "12.000s");
    }
}
