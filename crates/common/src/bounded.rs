//! A bounded map with FIFO eviction.
//!
//! Long-running nodes keep several "already seen / already verified" maps
//! whose entries only pay off for a bounded window: verified batch-signature
//! roots (`basil_crypto::SignatureCache`), client-side validated decision
//! certificates, and similar memoization tables. Left unbounded, each grows
//! by one entry per event for the lifetime of the node. [`BoundedFifoMap`]
//! is the shared primitive: a [`FastHashMap`] plus an insertion-order queue,
//! evicting the oldest entry once the capacity is reached. FIFO (rather than
//! LRU) is deliberate — these working sets are in-flight windows, so recency
//! of *insertion* is the right signal and the eviction path stays O(1) with
//! no per-read bookkeeping.

use crate::fasthash::FastHashMap;
use std::collections::VecDeque;
use std::hash::Hash;

/// A `K -> V` map bounded to `capacity` entries, evicting in insertion
/// (FIFO) order. Re-inserting an existing key refreshes the value without
/// changing its eviction position.
#[derive(Clone, Debug)]
pub struct BoundedFifoMap<K, V> {
    map: FastHashMap<K, V>,
    /// Insertion order of the keys, for FIFO eviction.
    order: VecDeque<K>,
    capacity: usize,
    evictions: u64,
}

impl<K: Hash + Eq + Copy, V> BoundedFifoMap<K, V> {
    /// Creates an empty map bounded to `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        BoundedFifoMap {
            map: FastHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// Inserts `value` under `key`, evicting the oldest entries if the map
    /// outgrows its capacity. An existing key is refreshed in place.
    pub fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key, value).is_some() {
            return; // Refreshed an existing key; order is unchanged.
        }
        self.order.push_back(key);
        while self.map.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// The value stored under `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// One-lookup check-and-insert: if `key` is present and its value
    /// satisfies `matches`, returns `true` and leaves the map untouched;
    /// otherwise stores `value` under `key` (evicting FIFO-oldest entries
    /// as [`BoundedFifoMap::insert`] would) and returns `false`.
    /// Semantically identical to `get` followed by `insert`, at one hash
    /// lookup instead of two — the signature cache runs this on every
    /// verification.
    pub fn check_insert(&mut self, key: K, value: V, matches: impl FnOnce(&V) -> bool) -> bool {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if matches(e.get()) {
                    return true;
                }
                e.insert(value);
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
                self.order.push_back(key);
                while self.map.len() > self.capacity {
                    let Some(oldest) = self.order.pop_front() else {
                        break;
                    };
                    self.map.remove(&oldest);
                    self.evictions += 1;
                }
                false
            }
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound on held entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries evicted to keep the map within its capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_insertion_order() {
        let mut m: BoundedFifoMap<u32, &str> = BoundedFifoMap::with_capacity(2);
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(3, "c");
        assert_eq!(m.get(&1), None, "oldest evicted");
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn refresh_keeps_eviction_position_and_size() {
        let mut m: BoundedFifoMap<u32, u64> = BoundedFifoMap::with_capacity(2);
        m.insert(1, 10);
        m.insert(2, 20);
        m.insert(1, 11); // refresh, not a new entry
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&11));
        m.insert(3, 30); // 1 is still the oldest insertion
        assert_eq!(m.get(&1), None);
        assert_eq!(m.get(&2), Some(&20));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut m: BoundedFifoMap<u32, u32> = BoundedFifoMap::with_capacity(0);
        assert_eq!(m.capacity(), 1);
        m.insert(1, 1);
        m.insert(2, 2);
        assert_eq!(m.len(), 1);
        assert!(m.get(&2).is_some());
        assert!(!m.is_empty());
    }
}
