//! Application-level transaction profiles.
//!
//! Workload generators (`basil-workloads`) describe each transaction as a
//! list of [`Op`]s; the Basil client and the baseline clients execute these
//! profiles against their respective protocols. Keeping the type here lets
//! the generators stay independent of any particular protocol
//! implementation.

use crate::kv::{Key, Value};

/// One application-level operation inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read a key.
    Read(Key),
    /// Write a key with a precomputed value.
    Write(Key, Value),
    /// Read a key, interpret the current value as a `u64` counter, add
    /// `delta` (saturating at zero), and write it back. This covers the
    /// read-modify-write pattern of the banking and retail workloads
    /// (balance updates, stock decrements) while keeping profiles
    /// serializable data, not closures.
    RmwAdd {
        /// Key to read and write.
        key: Key,
        /// Signed delta applied to the current value.
        delta: i64,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &Key {
        match self {
            Op::Read(k) => k,
            Op::Write(k, _) => k,
            Op::RmwAdd { key, .. } => key,
        }
    }

    /// Whether the operation performs a read.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read(_) | Op::RmwAdd { .. })
    }

    /// Whether the operation performs a write.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write(_, _) | Op::RmwAdd { .. })
    }
}

/// A full transaction profile produced by a workload generator.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TxProfile {
    /// The operations, executed in order.
    pub ops: Vec<Op>,
    /// A workload-specific label ("payment", "new_order", ...) used for
    /// per-transaction-type statistics.
    pub label: &'static str,
    /// Whether this transaction is issued by a Byzantine client following one
    /// of the attack strategies of Section 6.4 (used by the failure
    /// experiments to mark which transactions count as faulty).
    pub faulty: bool,
}

impl TxProfile {
    /// Creates a profile from operations with a label.
    pub fn new(label: &'static str, ops: Vec<Op>) -> Self {
        TxProfile {
            ops,
            label,
            faulty: false,
        }
    }

    /// Number of read operations (RMW counts as one read).
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|o| o.is_read()).count()
    }

    /// Number of write operations (RMW counts as one write).
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }
}

/// Source of transaction profiles for one client: the closed-loop driver asks
/// for the next transaction as soon as the previous one finishes.
///
/// `Send` is required because client actors (which own their generator) are
/// executed on worker threads by the parallel cluster runtime.
pub trait TxGenerator: Send {
    /// Produces the next transaction to run, or `None` when the client should
    /// stop issuing new transactions.
    fn next_tx(&mut self) -> Option<TxProfile>;

    /// For open-loop generators: the delay until the next transaction
    /// *arrival*, drawn from the generator's (seeded, deterministic)
    /// inter-arrival distribution. Returning `Some` switches the driving
    /// client into open-loop mode — arrivals are scheduled on the simulated
    /// clock independently of completions, queued up to an admission bound,
    /// and shed beyond it. The default (`None`) keeps the classic
    /// closed-loop behaviour: the next transaction starts when the previous
    /// one finishes.
    fn next_arrival_delay(&mut self) -> Option<crate::Duration> {
        None
    }
}

impl<G: TxGenerator + ?Sized> TxGenerator for Box<G> {
    fn next_tx(&mut self) -> Option<TxProfile> {
        (**self).next_tx()
    }

    // Forwarded explicitly: the trait default would answer `None` and
    // silently turn a boxed open-loop generator back into a closed loop.
    fn next_arrival_delay(&mut self) -> Option<crate::Duration> {
        (**self).next_arrival_delay()
    }
}

/// A generator that replays a fixed list of profiles once. Convenient in
/// tests and examples.
#[derive(Clone, Debug, Default)]
pub struct ScriptedGenerator {
    script: std::collections::VecDeque<TxProfile>,
}

impl ScriptedGenerator {
    /// Creates a generator that yields the given profiles in order.
    pub fn new(script: impl IntoIterator<Item = TxProfile>) -> Self {
        ScriptedGenerator {
            script: script.into_iter().collect(),
        }
    }

    /// Number of transactions remaining in the script.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl TxGenerator for ScriptedGenerator {
    fn next_tx(&mut self) -> Option<TxProfile> {
        self.script.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let r = Op::Read(Key::new("a"));
        let w = Op::Write(Key::new("b"), Value::from_u64(1));
        let m = Op::RmwAdd {
            key: Key::new("c"),
            delta: -5,
        };
        assert!(r.is_read() && !r.is_write());
        assert!(!w.is_read() && w.is_write());
        assert!(m.is_read() && m.is_write());
        assert_eq!(r.key(), &Key::new("a"));
        assert_eq!(m.key(), &Key::new("c"));
    }

    #[test]
    fn profile_counts() {
        let p = TxProfile::new(
            "mixed",
            vec![
                Op::Read(Key::new("a")),
                Op::Write(Key::new("b"), Value::from_u64(1)),
                Op::RmwAdd {
                    key: Key::new("c"),
                    delta: 1,
                },
            ],
        );
        assert_eq!(p.reads(), 2);
        assert_eq!(p.writes(), 2);
        assert!(!p.faulty);
        assert_eq!(p.label, "mixed");
    }

    #[test]
    fn scripted_generator_replays_in_order() {
        let mut g =
            ScriptedGenerator::new([TxProfile::new("one", vec![]), TxProfile::new("two", vec![])]);
        assert_eq!(g.remaining(), 2);
        assert_eq!(g.next_tx().expect("first").label, "one");
        assert_eq!(g.next_tx().expect("second").label, "two");
        assert!(g.next_tx().is_none());
    }
}
