//! Shard and deployment configuration, including Basil's quorum arithmetic.
//!
//! Basil provisions `n = 5f + 1` replicas per shard (Section 3). The derived
//! quorum sizes are:
//!
//! | quorum | size | purpose |
//! |---|---|---|
//! | commit quorum (CQ) | `3f + 1` | slow-path commit vote of a shard |
//! | abort quorum (AQ) | `f + 1` | slow-path abort vote of a shard |
//! | fast commit | `5f + 1` | unanimous vote; shard vote already durable |
//! | fast abort | `3f + 1` | shard can never produce a CQ for commit |
//! | stage-2 (logging) quorum | `n - f = 4f + 1` | durable 2PC decision on `S_log` |
//! | read reply quorum | `f + 1` | at least one correct replica answered |
//! | prepared-version vouching | `f + 1` | a prepared version may be adopted as a dependency |

use crate::ids::ShardId;
use crate::kv::Key;
use crate::time::Duration;

/// Per-shard replication configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Maximum number of Byzantine replicas tolerated in the shard.
    pub f: u32,
}

impl ShardConfig {
    /// Creates a shard configuration tolerating `f` Byzantine replicas.
    pub fn new(f: u32) -> Self {
        ShardConfig { f }
    }

    /// Total number of replicas in the shard, `n = 5f + 1`.
    pub fn n(&self) -> u32 {
        5 * self.f + 1
    }

    /// Commit quorum `CQ = 3f + 1` (slow path).
    pub fn commit_quorum(&self) -> u32 {
        3 * self.f + 1
    }

    /// Abort quorum `AQ = f + 1` (slow path).
    pub fn abort_quorum(&self) -> u32 {
        self.f + 1
    }

    /// Fast-path commit quorum: all `5f + 1` replicas.
    pub fn fast_commit_quorum(&self) -> u32 {
        self.n()
    }

    /// Fast-path abort quorum: `3f + 1` replicas.
    pub fn fast_abort_quorum(&self) -> u32 {
        3 * self.f + 1
    }

    /// Stage-2 logging quorum `n - f = 4f + 1`.
    pub fn st2_quorum(&self) -> u32 {
        self.n() - self.f
    }

    /// Number of matching read replies a client must collect before adopting
    /// a committed version: `f + 1` replies guarantee one correct replica.
    pub fn read_reply_quorum(&self) -> u32 {
        self.f + 1
    }

    /// Number of replicas that must return the *same prepared version* before
    /// a client may adopt it as a dependency (`f + 1`).
    pub fn prepared_vouch_quorum(&self) -> u32 {
        self.f + 1
    }

    /// Quorum of matching current views a replica needs to adopt `v + 1`
    /// during fallback leader election (rule R1): `3f + 1`.
    pub fn view_r1_quorum(&self) -> u32 {
        3 * self.f + 1
    }

    /// Quorum of matching current views that lets a replica skip ahead to a
    /// larger view (rule R2): `f + 1`.
    pub fn view_r2_quorum(&self) -> u32 {
        self.f + 1
    }

    /// Number of `ElectFB` messages a fallback leader must gather before it
    /// considers itself elected: `4f + 1`.
    pub fn elect_quorum(&self) -> u32 {
        4 * self.f + 1
    }
}

/// How many replicas a client sends its read requests to, and how many
/// replies it waits for (Section 6.2 / Figure 5b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadQuorum {
    /// Read from a single replica (no Byzantine independence; baseline point).
    One,
    /// Send to `2f + 1`, wait for `f + 1` replies (Basil's default).
    FPlusOne,
    /// Send to `3f + 1`, wait for `2f + 1` replies (lowers the chance of
    /// missing the freshest prepared version at the cost of more work).
    TwoFPlusOne,
}

impl ReadQuorum {
    /// Number of replicas the read request is sent to.
    pub fn fanout(&self, cfg: &ShardConfig) -> u32 {
        match self {
            ReadQuorum::One => 1,
            ReadQuorum::FPlusOne => 2 * cfg.f + 1,
            ReadQuorum::TwoFPlusOne => 3 * cfg.f + 1,
        }
    }

    /// Number of replies the client waits for before choosing a version.
    pub fn wait_for(&self, cfg: &ShardConfig) -> u32 {
        match self {
            ReadQuorum::One => 1,
            ReadQuorum::FPlusOne => cfg.f + 1,
            ReadQuorum::TwoFPlusOne => 2 * cfg.f + 1,
        }
    }
}

/// Deployment-wide configuration shared by clients and replicas.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of data shards.
    pub num_shards: u32,
    /// Per-shard replication configuration.
    pub shard: ShardConfig,
    /// Timestamp acceptance window `delta`: replicas reject operations whose
    /// timestamp exceeds their local clock plus `delta` (Section 4.1).
    pub delta: Duration,
    /// Read quorum configuration.
    pub read_quorum: ReadQuorum,
    /// Whether the single-round-trip fast path is enabled (Figure 6a ablation).
    pub fast_path: bool,
    /// Reply batch size used by replicas for signature amortization
    /// (Section 4.4, Figure 6b). `1` disables batching.
    pub batch_size: u32,
    /// Maximum time a replica holds a partially filled batch before flushing.
    pub batch_timeout: Duration,
    /// Whether signatures/verification are performed and charged
    /// (`false` reproduces the `Basil-NoProofs` configuration of Figure 5a/5c).
    pub signatures: bool,
}

impl SystemConfig {
    /// A small configuration suitable for unit and integration tests:
    /// one shard, `f = 1`, generous timestamp window.
    pub fn single_shard_f1() -> Self {
        SystemConfig {
            num_shards: 1,
            shard: ShardConfig::new(1),
            delta: Duration::from_millis(50),
            read_quorum: ReadQuorum::FPlusOne,
            fast_path: true,
            batch_size: 1,
            batch_timeout: Duration::from_micros(500),
            signatures: true,
        }
    }

    /// A configuration with `num_shards` shards and `f = 1`.
    pub fn sharded(num_shards: u32) -> Self {
        SystemConfig {
            num_shards,
            ..SystemConfig::single_shard_f1()
        }
    }

    /// A configuration with `num_shards` shards tolerating `f` Byzantine
    /// replicas per shard (`n = 5f + 1` each; `f = 2` gives the n = 11
    /// deployments of the fig5c scale-out extension).
    pub fn sharded_f(num_shards: u32, f: u32) -> Self {
        SystemConfig {
            num_shards,
            shard: ShardConfig::new(f),
            ..SystemConfig::single_shard_f1()
        }
    }

    /// Total number of replicas across all shards.
    pub fn total_replicas(&self) -> u32 {
        self.num_shards * self.shard.n()
    }

    /// Maps a key to the shard responsible for it, using a stable hash of the
    /// key bytes (FNV-1a). Every participant must agree on this mapping.
    pub fn shard_for_key(&self, key: &Key) -> ShardId {
        ShardId((mix64(fnv1a(key.as_bytes())) % self.num_shards as u64) as u32)
    }

    /// All shard identifiers in the deployment.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.num_shards).map(ShardId)
    }
}

/// SplitMix64 finalizer; diffuses the weak low bits of FNV for short keys so
/// the modulo placement is close to uniform.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a 64-bit hash; used only for key placement, not for integrity.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Key;

    #[test]
    fn quorum_sizes_for_f1() {
        let c = ShardConfig::new(1);
        assert_eq!(c.n(), 6);
        assert_eq!(c.commit_quorum(), 4);
        assert_eq!(c.abort_quorum(), 2);
        assert_eq!(c.fast_commit_quorum(), 6);
        assert_eq!(c.fast_abort_quorum(), 4);
        assert_eq!(c.st2_quorum(), 5);
        assert_eq!(c.read_reply_quorum(), 2);
        assert_eq!(c.elect_quorum(), 5);
        assert_eq!(c.view_r1_quorum(), 4);
        assert_eq!(c.view_r2_quorum(), 2);
    }

    #[test]
    fn quorum_sizes_for_f2() {
        let c = ShardConfig::new(2);
        assert_eq!(c.n(), 11);
        assert_eq!(c.commit_quorum(), 7);
        assert_eq!(c.abort_quorum(), 3);
        assert_eq!(c.st2_quorum(), 9);
    }

    #[test]
    fn quorum_intersection_properties() {
        // Two commit quorums of conflicting transactions must intersect in a
        // correct replica: 2 * (3f+1) - n = f + 1 > f.
        for f in 1..5u32 {
            let c = ShardConfig::new(f);
            let overlap = 2 * c.commit_quorum() as i64 - c.n() as i64;
            assert!(overlap > f as i64, "f={f}: CQ/CQ overlap too small");
            // A fast-commit certificate and a fast-abort certificate must
            // also intersect in a correct replica.
            let overlap_fast =
                (c.fast_commit_quorum() + c.fast_abort_quorum()) as i64 - c.n() as i64;
            assert!(overlap_fast > f as i64);
            // Any client stepping in for a fast-path commit sees at least a CQ.
            assert!(c.fast_commit_quorum() - 2 * f >= c.commit_quorum());
        }
    }

    #[test]
    fn read_quorum_fanout_and_wait() {
        let c = ShardConfig::new(1);
        assert_eq!(ReadQuorum::One.fanout(&c), 1);
        assert_eq!(ReadQuorum::One.wait_for(&c), 1);
        assert_eq!(ReadQuorum::FPlusOne.fanout(&c), 3);
        assert_eq!(ReadQuorum::FPlusOne.wait_for(&c), 2);
        assert_eq!(ReadQuorum::TwoFPlusOne.fanout(&c), 4);
        assert_eq!(ReadQuorum::TwoFPlusOne.wait_for(&c), 3);
    }

    #[test]
    fn key_placement_is_stable_and_in_range() {
        let cfg = SystemConfig::sharded(3);
        for i in 0..100 {
            let k = Key::new(format!("key{i}"));
            let s1 = cfg.shard_for_key(&k);
            let s2 = cfg.shard_for_key(&k);
            assert_eq!(s1, s2);
            assert!(s1.0 < 3);
        }
    }

    #[test]
    fn key_placement_spreads_keys() {
        let cfg = SystemConfig::sharded(3);
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let k = Key::new(format!("key{i}"));
            counts[cfg.shard_for_key(&k).0 as usize] += 1;
        }
        for c in counts {
            assert!(c > 500, "distribution too skewed: {counts:?}");
        }
    }

    #[test]
    fn total_replicas() {
        assert_eq!(SystemConfig::sharded(3).total_replicas(), 18);
        assert_eq!(SystemConfig::single_shard_f1().total_replicas(), 6);
        assert_eq!(SystemConfig::sharded_f(3, 2).total_replicas(), 33);
        assert_eq!(SystemConfig::sharded_f(1, 2).shard.n(), 11);
    }
}
