//! Identifiers for participants, shards, and transactions.

use std::fmt;

/// Identifier of a client process.
///
/// Clients drive transaction execution in Basil; a client identifier is also
/// embedded in every [`crate::Timestamp`] to make timestamps globally unique
/// and totally ordered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u64);

/// Identifier of a data shard (a partition of the key space).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ShardId(pub u32);

/// Identifier of a replica: the shard it belongs to and its index within the
/// shard (`0..n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId {
    /// Shard this replica stores.
    pub shard: ShardId,
    /// Index of the replica within its shard, in `0..n`.
    pub index: u32,
}

impl ReplicaId {
    /// Creates a replica identifier.
    pub fn new(shard: ShardId, index: u32) -> Self {
        ReplicaId { shard, index }
    }
}

/// A network endpoint: either a client or a replica.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A client node.
    Client(ClientId),
    /// A replica node.
    Replica(ReplicaId),
}

impl NodeId {
    /// Returns the replica identifier if this node is a replica.
    pub fn as_replica(&self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(*r),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client identifier if this node is a client.
    pub fn as_client(&self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(*c),
            NodeId::Replica(_) => None,
        }
    }

    /// Returns true if this node is a client.
    pub fn is_client(&self) -> bool {
        matches!(self, NodeId::Client(_))
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

/// Transaction identifier.
///
/// In Basil the transaction id is a cryptographic hash of the transaction's
/// metadata (timestamp, read set, write set, dependency set), so a Byzantine
/// client can neither spoof the set of involved shards nor equivocate the
/// transaction's contents (Section 4.2, step 1). The 32-byte digest is
/// produced by `basil-crypto`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TxId(pub [u8; 32]);

/// A `TxId` is always a SHA-256 content hash (or the all-zero genesis id):
/// its bytes are uniformly distributed, so hash tables keyed by `TxId` —
/// replica records, certificate tables, decision maps, client tallies, all
/// on the hot path — only need the first eight bytes. Consistent with
/// `Eq`: equal ids have equal prefixes. (This is deliberately *not* done
/// for `basil_crypto::Digest`: simulated-mode batch roots encode a
/// per-engine counter in their leading bytes, and prefix-hashing those
/// collides every engine's nth root with every other's.)
impl std::hash::Hash for TxId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(u64::from_le_bytes(
            self.0[..8].try_into().expect("8-byte prefix"),
        ));
    }
}

impl TxId {
    /// Builds a transaction id directly from raw digest bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        TxId(bytes)
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the leading 8 bytes of the digest as a big-endian integer.
    ///
    /// Used for deterministic choices keyed on the transaction id, such as
    /// selecting the logging shard (`S_log`) and the round-robin fallback
    /// leader (`id_T mod n`).
    pub fn as_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has at least 8 bytes"))
    }

    /// Short hexadecimal prefix, convenient for debugging output.
    pub fn short_hex(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r{}", self.shard, self.index)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r{}", self.shard, self.index)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Client(c) => write!(f, "{c:?}"),
            NodeId::Replica(r) => write!(f, "{r:?}"),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.short_hex())
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let c = ClientId(7);
        let r = ReplicaId::new(ShardId(2), 3);
        let nc: NodeId = c.into();
        let nr: NodeId = r.into();
        assert_eq!(nc.as_client(), Some(c));
        assert_eq!(nc.as_replica(), None);
        assert_eq!(nr.as_replica(), Some(r));
        assert_eq!(nr.as_client(), None);
        assert!(nc.is_client());
        assert!(!nr.is_client());
    }

    #[test]
    fn txid_as_u64_uses_leading_bytes() {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&42u64.to_be_bytes());
        assert_eq!(TxId::from_bytes(bytes).as_u64(), 42);
    }

    #[test]
    fn txid_short_hex_is_stable() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xab;
        bytes[1] = 0xcd;
        let id = TxId::from_bytes(bytes);
        assert!(id.short_hex().starts_with("abcd"));
        assert_eq!(format!("{id}"), format!("{id:?}"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ClientId(3)), "c3");
        assert_eq!(format!("{}", ShardId(1)), "s1");
        assert_eq!(format!("{}", ReplicaId::new(ShardId(1), 4)), "s1r4");
    }

    #[test]
    fn replica_ordering_is_by_shard_then_index() {
        let a = ReplicaId::new(ShardId(0), 5);
        let b = ReplicaId::new(ShardId(1), 0);
        assert!(a < b);
        let c = ReplicaId::new(ShardId(1), 1);
        assert!(b < c);
    }
}
