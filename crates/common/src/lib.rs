//! # basil-common
//!
//! Shared foundation types for the Basil BFT transactional key-value store
//! reproduction: participant identifiers, multiversion timestamps, shard and
//! quorum configuration, simulated time, and error types.
//!
//! Every other crate in the workspace builds on these definitions, so this
//! crate deliberately has no dependency on the protocol, the storage engine,
//! or the simulator.
//!
//! The quorum arithmetic in [`config::ShardConfig`] follows Sections 3 and 4.5
//! of the paper: each shard uses `n = 5f + 1` replicas, a commit quorum of
//! `3f + 1`, an abort quorum of `f + 1`, a fast-commit quorum of `5f + 1`, a
//! fast-abort quorum of `3f + 1`, and a stage-2 logging quorum of `n - f = 4f + 1`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod autoscale;
pub mod bounded;
pub mod config;
pub mod error;
pub mod fasthash;
pub mod hist;
pub mod ids;
pub mod kv;
pub mod ops;
pub mod prng;
pub mod time;
pub mod timestamp;

pub use autoscale::{auto_workers, resolve_workers};
pub use bounded::BoundedFifoMap;
pub use config::{ReadQuorum, ShardConfig, SystemConfig};
pub use error::{BasilError, Result};
pub use fasthash::{FastHashMap, FastHashSet, FxBuildHasher, FxHasher};
pub use hist::LatencyHistogram;
pub use ids::{ClientId, NodeId, ReplicaId, ShardId, TxId};
pub use kv::{Key, Value};
pub use ops::{Op, ScriptedGenerator, TxGenerator, TxProfile};
pub use prng::SmallPrng;
pub use time::{Duration, SimTime};
pub use timestamp::Timestamp;
