//! Worker-count autoscaling from the host's available parallelism.
//!
//! Two independent subsystems size thread pools from the same policy: the
//! bench runner's parallel scheduler (`BASIL_WORKERS` unset ⇒ auto) and the
//! real-IO replica executor pool (`--executors 0` ⇒ auto). Centralizing the
//! policy here keeps both answering the same question the same way: *use
//! the cores the OS says we may schedule on, capped, and fall back to a
//! serial/inline mode on a single-core host.*

/// The number of workers to use when the caller asked for automatic sizing:
/// [`std::thread::available_parallelism`] clamped to `[1, cap]`.
///
/// Returns `1` on a single-core host (or when the OS cannot answer), which
/// every caller treats as "stay serial/inline" — no pool, no handoff
/// overhead. The cap bounds pool width on big machines where more workers
/// stop helping (lock shards, channel fan-in) long before core count runs
/// out.
pub fn auto_workers(cap: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.clamp(1, cap.max(1))
}

/// Resolves a user-facing worker-count knob: `0` means *auto* (see
/// [`auto_workers`]), anything else is taken literally.
pub fn resolve_workers(requested: usize, cap: usize) -> usize {
    if requested == 0 {
        auto_workers(cap)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_is_bounded_by_cap_and_at_least_one() {
        assert_eq!(auto_workers(1), 1);
        assert!(auto_workers(8) >= 1);
        assert!(auto_workers(8) <= 8);
        // cap of zero is treated as one, never zero workers
        assert_eq!(auto_workers(0), 1);
    }

    #[test]
    fn zero_means_auto_explicit_is_literal() {
        assert_eq!(resolve_workers(0, 8), auto_workers(8));
        assert_eq!(resolve_workers(1, 8), 1);
        assert_eq!(resolve_workers(3, 8), 3);
        // explicit values are not capped — the user asked for them
        assert_eq!(resolve_workers(64, 8), 64);
    }
}
