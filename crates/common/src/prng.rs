//! A tiny deterministic PRNG (xorshift64*) shared across the workspace.
//!
//! Protocol crates use it so they do not need a `rand` dependency and so
//! Byzantine sampling and backoff jitter stay reproducible under a fixed
//! seed. It originally lived in `basil_core::byzantine::rand_like`, which
//! still re-exports this module for compatibility.

/// A deterministic 64-bit PRNG.
#[derive(Clone, Debug)]
pub struct SmallPrng {
    state: u64,
}

impl SmallPrng {
    /// Creates a PRNG from a seed (zero is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        SmallPrng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::SmallPrng;

    #[test]
    fn prng_is_deterministic_and_bounded() {
        let mut a = SmallPrng::new(42);
        let mut b = SmallPrng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallPrng::new(9);
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.next_below(7) < 7);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = SmallPrng::new(0);
        let mut r = SmallPrng::new(0x9e3779b97f4a7c15);
        assert_eq!(z.next_u64(), r.next_u64());
    }
}
