//! Property-based tests for the streaming latency histogram: its percentile
//! estimates must track the exact sorted-vector order statistics within one
//! bucket width, for arbitrary sample distributions, merges, and
//! warmup/window splits.

use basil_common::LatencyHistogram;
use proptest::prelude::*;

/// The exact order statistic the histogram approximates: the sample of rank
/// `round((len - 1) * p)`, the same rank `RunReport` used when it sorted
/// raw latency vectors.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn assert_within_one_bucket(est: f64, truth: u64, context: &str) -> Result<(), TestCaseError> {
    let tol = LatencyHistogram::bucket_width_at(truth) as f64;
    prop_assert!(
        (est - truth as f64).abs() <= tol,
        "{context}: estimate {est} vs exact {truth}, tolerance {tol}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram percentiles match exact sorted-vector percentiles within
    /// one bucket width, across the value range latencies actually span
    /// (nanoseconds to seconds).
    #[test]
    fn percentiles_match_exact_within_one_bucket(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..500),
        pn in 0u64..=100,
    ) {
        let mut h = LatencyHistogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let p = pn as f64 / 100.0;
        let truth = exact_percentile(&sorted, p);
        assert_within_one_bucket(h.percentile_ns(p), truth, "single histogram")?;
        // The exact mean is carried, not estimated.
        let mean = sorted.iter().map(|s| *s as f64).sum::<f64>() / sorted.len() as f64;
        prop_assert!((h.mean_ms() - mean / 1e6).abs() < 1e-6);
    }

    /// Merging per-client histograms is equivalent to pooling the samples:
    /// the merged percentiles still match the pooled exact percentiles.
    #[test]
    fn merged_histograms_match_pooled_samples(
        a in proptest::collection::vec(1u64..1_000_000_000, 1..200),
        b in proptest::collection::vec(1u64..1_000_000_000, 1..200),
        pn in 0u64..=100,
    ) {
        let mut ha = LatencyHistogram::new();
        for s in &a {
            ha.record(*s);
        }
        let mut hb = LatencyHistogram::new();
        for s in &b {
            hb.record(*s);
        }
        ha.merge(&hb);
        let mut pooled: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        pooled.sort_unstable();
        prop_assert_eq!(ha.count(), pooled.len() as u64);
        let p = pn as f64 / 100.0;
        let truth = exact_percentile(&pooled, p);
        assert_within_one_bucket(ha.percentile_ns(p), truth, "merged histogram")?;
    }

    /// Subtracting a warmup snapshot from an end snapshot yields the window
    /// samples exactly (count and sum) and percentile-accurately — the
    /// replacement for the old multiset diff over raw vectors.
    #[test]
    fn snapshot_diff_recovers_window_samples(
        warmup in proptest::collection::vec(1u64..1_000_000_000, 0..200),
        window in proptest::collection::vec(1u64..1_000_000_000, 1..200),
        pn in 0u64..=100,
    ) {
        let mut start = LatencyHistogram::new();
        for s in &warmup {
            start.record(*s);
        }
        let mut end = start.clone();
        for s in &window {
            end.record(*s);
        }
        let diff = end.diff(&start);
        prop_assert_eq!(diff.count(), window.len() as u64);
        prop_assert_eq!(diff.total_ns(), window.iter().map(|s| u128::from(*s)).sum::<u128>());
        let mut sorted = window.clone();
        sorted.sort_unstable();
        let p = pn as f64 / 100.0;
        let truth = exact_percentile(&sorted, p);
        assert_within_one_bucket(diff.percentile_ns(p), truth, "window diff")?;
    }
}
