//! Protocol configuration.

use crate::byzantine::{ClientStrategy, ReplicaBehavior};
use basil_common::{Duration, SystemConfig};
use basil_crypto::CostModel;

/// Whether signatures are actually computed or only their cost is charged.
///
/// In the `Simulated` mode every signature artifact is produced with a dummy
/// tag and verification succeeds structurally; the CPU *cost* of the
/// corresponding real operation is still charged to the node, so performance
/// results are unaffected while benchmark wall-clock time stays manageable.
/// Correctness-oriented tests (forged messages, Byzantine replicas) use
/// `Real`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoMode {
    /// Compute and verify real HMAC-based signatures.
    Real,
    /// Produce placeholder signatures; only charge their CPU cost.
    Simulated,
}

/// Full configuration of a Basil deployment (shared by clients and replicas).
#[derive(Clone, Debug)]
pub struct BasilConfig {
    /// Shard layout, quorum sizes, timestamp window, batching, read quorums.
    pub system: SystemConfig,
    /// CPU cost model for cryptographic operations.
    pub cost: CostModel,
    /// Whether signatures are actually computed (see [`CryptoMode`]).
    pub crypto_mode: CryptoMode,
    /// Client-side timeout before a read is retried against more replicas.
    pub read_timeout: Duration,
    /// Client-side timeout on the prepare phase before the client considers
    /// dependencies stalled and invokes the fallback.
    pub prepare_timeout: Duration,
    /// Client-side timeout on stage ST2 before the message is re-sent.
    pub st2_timeout: Duration,
    /// Base timeout of the per-transaction fallback; doubled per view.
    pub fallback_timeout: Duration,
    /// Base retry backoff after an aborted transaction (exponential with
    /// jitter, as in the paper's closed-loop clients).
    pub retry_backoff: Duration,
    /// Maximum exponential backoff.
    pub max_backoff: Duration,
    /// Default Byzantine strategy of clients (individual clients can
    /// override).
    pub client_strategy: ClientStrategy,
    /// Default behaviour of replicas.
    pub replica_behavior: ReplicaBehavior,
    /// Experiment hook for the `equiv-forced` failure mode of Section 6.4:
    /// replicas accept ST2 decisions without checking that the attached vote
    /// tallies justify them, so Byzantine clients can always equivocate.
    pub relax_st2_validation: bool,
    /// When set, replicas run a store garbage-collection sweep at this
    /// period, trimming committed versions, committed read records, and RTS
    /// entries older than `local_clock - gc_horizon`. Off by default: GC
    /// trades liveness for memory (the store refuses to prepare anything
    /// timestamped at or below the collected region — possible for an honest
    /// client only under clock skew beyond the horizon — where the full
    /// history might have let it commit), so runs opt in explicitly.
    pub gc_interval: Option<Duration>,
    /// How far behind the local clock the GC watermark trails. Must comfortably
    /// exceed `system.delta` plus the maximum client retry backoff so that
    /// fault-free timestamps never land below the watermark.
    pub gc_horizon: Duration,
    /// Window over which a verifier groups uncached batch roots from the
    /// same signer and co-verifies them in one amortized ed25519 batch
    /// verification (the client-side complement of replica reply batching).
    /// `Duration::ZERO` (the default) disables grouping so existing golden
    /// scenarios keep their pinned timing; the open-loop throughput sweeps
    /// opt in via [`BasilConfig::with_verify_grouping`], typically with the
    /// replica's flush timeout so the two windows describe the same burst
    /// of replies.
    pub verify_group_window: Duration,
    /// Open-loop admission bound: how many Poisson arrivals a client queues
    /// while a transaction is in flight before it starts shedding load
    /// instead of queueing unboundedly. Only consulted when the workload
    /// generator paces arrivals (closed-loop generators ignore it).
    pub admission_bound: usize,
    /// Simulated fsync latency charged for every write-ahead-log append.
    /// `Duration::ZERO` (the default) models an always-warm write cache and
    /// keeps fault-free golden timings byte-identical; durability-focused
    /// runs opt into a real cost via [`BasilConfig::with_wal_fsync`].
    pub wal_fsync_cost: Duration,
    /// How long a replica recovering from an amnesia restart waits for
    /// `CatchUpReply` messages before resuming service with whatever
    /// decisions it gathered. Client traffic is buffered for at most this
    /// window.
    pub catch_up_timeout: Duration,
    /// Maximum number of protocol messages a recovering replica buffers for
    /// replay while catching up. Traffic beyond the bound is shed (and
    /// counted in `ReplicaStats::catch_up_shed`); senders retransmit through
    /// their ordinary timeouts, so the bound trades a little extra recovery
    /// latency under overload for a hard memory ceiling — mirroring the
    /// client-side admission bound.
    pub catch_up_buffer_bound: usize,
    /// Real-IO replicas only: how many executor threads fan ST1
    /// verification + store-prepare work out ahead of the actor loop.
    /// `0` means *auto* (size from [`basil_common::auto_workers`]); `1`
    /// means inline — no pool, the actor does everything, exactly the
    /// simulator's execution model. Values `≥ 2` require the concurrent
    /// sharded store (`BasilReplica<SharedStore>`); the simulator ignores
    /// this knob entirely, so every pinned determinism golden is
    /// unaffected.
    pub replica_executors: usize,
}

impl BasilConfig {
    /// Configuration used by most unit and integration tests: one shard,
    /// `f = 1`, no batching, real crypto.
    pub fn test_single_shard() -> Self {
        BasilConfig {
            system: SystemConfig::single_shard_f1(),
            verify_group_window: Duration::ZERO,
            cost: CostModel::ed25519_default(),
            crypto_mode: CryptoMode::Real,
            read_timeout: Duration::from_millis(5),
            prepare_timeout: Duration::from_millis(10),
            st2_timeout: Duration::from_millis(10),
            fallback_timeout: Duration::from_millis(20),
            retry_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            client_strategy: ClientStrategy::Correct,
            replica_behavior: ReplicaBehavior::Correct,
            relax_st2_validation: false,
            gc_interval: None,
            gc_horizon: Duration::from_millis(500),
            admission_bound: 32,
            wal_fsync_cost: Duration::ZERO,
            catch_up_timeout: Duration::from_millis(5),
            catch_up_buffer_bound: 4096,
            replica_executors: 1,
        }
    }

    /// Configuration for benchmark runs: crypto cost charged but not
    /// computed, batching per `system.batch_size`.
    pub fn bench(system: SystemConfig) -> Self {
        BasilConfig {
            system,
            crypto_mode: CryptoMode::Simulated,
            ..Self::test_single_shard()
        }
    }

    /// Returns a copy with signatures disabled entirely (the `Basil-NoProofs`
    /// configuration of Figures 5a and 5c).
    pub fn without_proofs(mut self) -> Self {
        self.system.signatures = false;
        self.cost = CostModel::no_proofs();
        self
    }

    /// Returns a copy with the fast path disabled (`Basil-NoFP`, Figure 6a).
    pub fn without_fast_path(mut self) -> Self {
        self.system.fast_path = false;
        self
    }

    /// Returns a copy with the given reply batch size.
    pub fn with_batch_size(mut self, batch: u32) -> Self {
        self.system.batch_size = batch.max(1);
        self
    }

    /// Returns a copy with periodic store garbage collection enabled: every
    /// `interval`, replicas trim bookkeeping older than
    /// `local_clock - horizon` (see the `gc_interval` field docs for the
    /// liveness caveat).
    pub fn with_gc(mut self, interval: Duration, horizon: Duration) -> Self {
        self.gc_interval = Some(interval);
        self.gc_horizon = horizon;
        self
    }

    /// Returns a copy with the open-loop admission bound replaced (minimum 1).
    pub fn with_admission_bound(mut self, bound: usize) -> Self {
        self.admission_bound = bound.max(1);
        self
    }

    /// Returns a copy charging `cost` of simulated time per WAL append
    /// (`Duration::ZERO` restores the free default).
    pub fn with_wal_fsync(mut self, cost: Duration) -> Self {
        self.wal_fsync_cost = cost;
        self
    }

    /// Returns a copy with the post-amnesia catch-up window replaced.
    pub fn with_catch_up_timeout(mut self, timeout: Duration) -> Self {
        self.catch_up_timeout = timeout;
        self
    }

    /// Returns a copy with the recovery-time replay buffer bound replaced
    /// (minimum 1). Messages beyond the bound are shed during catch-up and
    /// recovered through sender retransmission.
    pub fn with_catch_up_buffer_bound(mut self, bound: usize) -> Self {
        self.catch_up_buffer_bound = bound.max(1);
        self
    }

    /// Returns a copy with the real-IO executor-pool width replaced: `0`
    /// for automatic sizing from the host's cores, `1` for the inline
    /// (pool-free) path, `n ≥ 2` for a pool of `n` workers over the
    /// concurrent sharded store. See the `replica_executors` field docs.
    pub fn replica_executors(mut self, n: usize) -> Self {
        self.replica_executors = n;
        self
    }

    /// Returns a copy with client-side grouped root verification enabled
    /// over the given window (`Duration::ZERO` disables it again). Passing
    /// `system.batch_timeout` aligns the verifier's grouping window with the
    /// replica's reply-flush window.
    pub fn with_verify_grouping(mut self, window: Duration) -> Self {
        self.verify_group_window = window;
        self
    }

    /// Whether signatures are generated/validated at all.
    pub fn signatures_enabled(&self) -> bool {
        self.system.signatures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_helpers() {
        let cfg = BasilConfig::test_single_shard();
        assert!(cfg.signatures_enabled());
        assert!(cfg.system.fast_path);

        let np = cfg.clone().without_proofs();
        assert!(!np.signatures_enabled());
        assert!(!np.cost.enabled);

        let nofp = cfg.clone().without_fast_path();
        assert!(!nofp.system.fast_path);

        let batched = cfg.with_batch_size(16);
        assert_eq!(batched.system.batch_size, 16);
        assert_eq!(batched.clone().with_batch_size(0).system.batch_size, 1);
    }

    #[test]
    fn gc_is_off_by_default_and_opt_in() {
        let cfg = BasilConfig::test_single_shard();
        assert_eq!(cfg.gc_interval, None);
        let on = cfg.with_gc(Duration::from_millis(50), Duration::from_millis(200));
        assert_eq!(on.gc_interval, Some(Duration::from_millis(50)));
        assert_eq!(on.gc_horizon, Duration::from_millis(200));
    }

    #[test]
    fn bench_config_uses_simulated_crypto() {
        let cfg = BasilConfig::bench(SystemConfig::sharded(3));
        assert_eq!(cfg.crypto_mode, CryptoMode::Simulated);
        assert_eq!(cfg.system.num_shards, 3);
    }

    #[test]
    fn durability_knobs_default_free_and_opt_in() {
        let cfg = BasilConfig::test_single_shard();
        assert_eq!(cfg.wal_fsync_cost, Duration::ZERO, "fault-free goldens");
        assert!(cfg.catch_up_timeout > Duration::ZERO);
        let tuned = cfg
            .with_wal_fsync(Duration::from_micros(100))
            .with_catch_up_timeout(Duration::from_millis(8))
            .with_catch_up_buffer_bound(16);
        assert_eq!(tuned.wal_fsync_cost, Duration::from_micros(100));
        assert_eq!(tuned.catch_up_timeout, Duration::from_millis(8));
        assert_eq!(tuned.catch_up_buffer_bound, 16);
        assert_eq!(
            tuned.with_catch_up_buffer_bound(0).catch_up_buffer_bound,
            1,
            "bound is clamped to at least one buffered message"
        );
    }

    #[test]
    fn executor_knob_defaults_inline() {
        let cfg = BasilConfig::test_single_shard();
        assert_eq!(cfg.replica_executors, 1, "inline path by default");
        assert_eq!(cfg.clone().replica_executors(2).replica_executors, 2);
        assert_eq!(cfg.replica_executors(0).replica_executors, 0, "0 = auto");
    }

    #[test]
    fn throughput_plane_knobs() {
        let cfg = BasilConfig::test_single_shard();
        // Grouping is opt-in: default configurations keep the pinned timing
        // of the golden determinism scenarios.
        assert_eq!(cfg.verify_group_window, Duration::ZERO);
        assert_eq!(cfg.admission_bound, 32);
        let tuned = cfg.clone().with_admission_bound(4);
        assert_eq!(tuned.admission_bound, 4);
        assert_eq!(cfg.clone().with_admission_bound(0).admission_bound, 1);
        let grouped = cfg.clone().with_verify_grouping(cfg.system.batch_timeout);
        assert_eq!(grouped.verify_group_window, cfg.system.batch_timeout);
    }
}
