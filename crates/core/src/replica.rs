//! The Basil replica.
//!
//! A replica serves versioned reads, runs the MVTSO concurrency-control check
//! for `ST1` prepares (deferring its vote while dependencies are undecided),
//! logs `ST2` decisions, applies writeback certificates, and takes part in
//! the per-transaction fallback protocol (view tracking, leader election, and
//! decision reconciliation). Replies are batched and signed through a Merkle
//! tree per Section 4.4.

use crate::byzantine::ReplicaBehavior;
use crate::certs::{validate_st2_justification, DecisionCert, ReplicaIndexSet};
use crate::config::BasilConfig;
use crate::crypto_engine::SigEngine;
use crate::messages::{
    BasilMsg, CatchUpReply, CatchUpRequest, CommittedRead, DecFb, ElectFbBody, InvokeFb,
    PreparedRead, ProtoDecision, ProtoVote, ReadReply, ReadReplyBody, ReadRequest, ReplicaTimer,
    SignedElectFb, SignedSt1Reply, SignedSt2Reply, St1, St1ReplyBody, St2, St2ReplyBody, View,
    Writeback,
};
use crate::views::{fallback_leader_index, next_view};
use basil_common::{
    ClientId, FastHashMap, FastHashSet, Key, NodeId, ReplicaId, ShardId, SimTime, Timestamp, TxId,
    Value,
};
use basil_simnet::{Actor, Context};
use basil_store::{CheckOutcome, MvtsoStore, Transaction, TxStore, Vote, Wal, WalRecord};
use std::any::Any;
use std::sync::Arc;

/// Counters exposed for tests, experiments, and the harness.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStats {
    /// Read requests served.
    pub reads_served: u64,
    /// ST1 prepares for which a vote was produced immediately.
    pub st1_voted: u64,
    /// ST1 prepares whose vote was deferred on dependencies.
    pub st1_deferred: u64,
    /// Commit certificates applied.
    pub commits_applied: u64,
    /// Abort certificates applied.
    pub aborts_applied: u64,
    /// ST2 decisions logged.
    pub st2_logged: u64,
    /// Fallback invocations processed.
    pub fallback_invocations: u64,
    /// DecFB decisions adopted.
    pub fallback_decisions_adopted: u64,
    /// Messages dropped because of Byzantine behaviour configuration.
    pub byzantine_drops: u64,
    /// Replies that went through the batch signer.
    pub replies_batched: u64,
    /// Batches signed.
    pub batches_signed: u64,
    /// Periodic store garbage-collection sweeps run.
    pub gc_sweeps: u64,
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Decision certificates applied from peer catch-up replies after an
    /// amnesia restart.
    pub catch_up_applied: u64,
    /// Messages buffered while catching up and replayed afterwards.
    pub catch_up_buffered: u64,
    /// Messages shed during catch-up because the recovery buffer was full
    /// (`BasilConfig::catch_up_buffer_bound`); senders retransmit via their
    /// normal timeout machinery, exactly as after a dropped packet.
    pub catch_up_shed: u64,
}

/// Per-transaction protocol state kept by a replica.
#[derive(Debug, Default)]
struct TxRecord {
    /// The transaction metadata (from ST1 or a writeback), shared with the
    /// message that delivered it and with the store's prepared/committed
    /// indexes.
    tx: Option<Arc<Transaction>>,
    /// The ST1 vote this replica cast, if any.
    own_vote: Option<ProtoVote>,
    /// Whether the vote is withheld waiting for dependencies.
    vote_pending: bool,
    /// Clients waiting for the deferred ST1 reply.
    waiting_clients: Vec<NodeId>,
    /// The logged 2PC decision and the view it was adopted in.
    logged: Option<(ProtoDecision, View)>,
    /// This replica's current fallback view for the transaction.
    current_view: View,
    /// The final applied decision, if any.
    decided: Option<ProtoDecision>,
    /// Clients interested in this transaction's outcome (recovery), in
    /// registration order. A `Vec` with membership checks (always a handful
    /// of clients) keeps the forwarding order deterministic — iterating a
    /// RandomState-seeded set here would reorder sends run to run and break
    /// the bit-identical determinism contract.
    interested: Vec<NodeId>,
    /// ST2 messages that arrived before the transaction body.
    buffered_st2: Vec<(NodeId, St2)>,
}

/// A reply waiting to be batched, signed, and sent.
#[derive(Debug)]
enum PendingReply {
    Read(ReadReplyBody),
    St1(St1ReplyBody, Option<Arc<DecisionCert>>),
    St2(St2ReplyBody),
}

impl crate::crypto_engine::SignedPayload for PendingReply {
    fn encoded_len(&self) -> usize {
        match self {
            PendingReply::Read(b) => b.encoded_len(),
            PendingReply::St1(b, _) => b.encoded_len(),
            PendingReply::St2(b) => b.encoded_len(),
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        match self {
            PendingReply::Read(b) => b.signed_bytes(),
            PendingReply::St1(b, _) => b.signed_bytes(),
            PendingReply::St2(b) => b.signed_bytes(),
        }
    }
}

/// Catch-up bookkeeping of a replica that lost its memory: which shard peers
/// still owe a `CatchUpReply`, and the protocol traffic held back until the
/// replica has caught up (or its catch-up deadline fired).
#[derive(Debug, Default)]
struct RecoveryState {
    /// Replica indices whose catch-up reply is still outstanding.
    pending_peers: FastHashSet<u32>,
    /// Non-catch-up traffic buffered for replay after catch-up, in arrival
    /// order.
    buffered: Vec<(NodeId, BasilMsg)>,
}

/// The Basil replica actor.
///
/// Generic over the [`TxStore`] seam: the default serial [`MvtsoStore`]
/// keeps the simulator bit-for-bit deterministic, while the real-IO runtime
/// instantiates `BasilReplica<SharedStore>` so an executor pool can run
/// prepares against the same store concurrently.
pub struct BasilReplica<S: TxStore = MvtsoStore> {
    id: ReplicaId,
    cfg: BasilConfig,
    engine: SigEngine,
    store: S,
    behavior: ReplicaBehavior,
    /// Per-transaction protocol records, boxed for the same reason as the
    /// store's key records: pointer-sized hash-table entries keep probes
    /// and rehashes cache-friendly.
    records: FastHashMap<TxId, Box<TxRecord>>,
    /// Commit/abort certificates by transaction, shared (`Arc`) with the
    /// writeback that delivered them, with committed-version read replies,
    /// and with forwards to interested clients.
    certs: FastHashMap<TxId, Arc<DecisionCert>>,
    /// Replies awaiting batch signing.
    out_batch: Vec<(NodeId, PendingReply)>,
    batch_timer_armed: bool,
    /// ElectFB messages collected while acting as fallback leader.
    elections: FastHashMap<(TxId, View), FastHashMap<u32, SignedElectFb>>,
    /// Elections already concluded (avoid double DecFB).
    elections_done: FastHashSet<(TxId, View)>,
    /// Durable record of state transitions, replayed after amnesia restarts.
    wal: Wal,
    /// `Some` while the replica is catching up after an amnesia restart.
    recovering: Option<RecoveryState>,
    stats: ReplicaStats,
}

impl TxRecord {
    /// Registers a client as interested in the transaction's outcome,
    /// preserving first-registration order.
    fn register_interested(&mut self, client: NodeId) {
        if !self.interested.contains(&client) {
            self.interested.push(client);
        }
    }
}

impl<S: TxStore> BasilReplica<S> {
    /// Creates a replica for shard `id.shard` preloaded with `initial_data`.
    pub fn new(
        id: ReplicaId,
        cfg: BasilConfig,
        registry: basil_crypto::KeyRegistry,
        behavior: ReplicaBehavior,
        initial_data: impl IntoIterator<Item = (Key, Value)>,
    ) -> Self {
        let engine = SigEngine::new(NodeId::Replica(id), registry, &cfg);
        let wal = Wal::new(cfg.wal_fsync_cost);
        BasilReplica {
            id,
            cfg,
            engine,
            store: S::with_initial_data(initial_data),
            behavior,
            records: FastHashMap::default(),
            certs: FastHashMap::default(),
            out_batch: Vec::new(),
            batch_timer_armed: false,
            elections: FastHashMap::default(),
            elections_done: FastHashSet::default(),
            wal,
            recovering: None,
            stats: ReplicaStats::default(),
        }
    }

    /// Rebuilds a replica after an *amnesia* restart: all in-memory state is
    /// gone and only the WAL image (`wal_bytes`) survived the crash.
    ///
    /// Replay walks the log in append order — the order the pre-crash replica
    /// mutated its store — so prepares re-run the MVTSO check against exactly
    /// the store state they originally saw, applied decisions re-commit or
    /// re-abort, and the highest GC watermark is re-imposed. A torn tail is
    /// truncated by [`Wal::recover`]. The replica then starts in *catch-up*
    /// mode: [`Actor::on_start`] asks every shard peer for the decision
    /// certificates it missed while down, and ordinary protocol traffic is
    /// buffered until every peer answered or the catch-up deadline fires.
    pub fn recover(
        id: ReplicaId,
        cfg: BasilConfig,
        registry: basil_crypto::KeyRegistry,
        behavior: ReplicaBehavior,
        initial_data: impl IntoIterator<Item = (Key, Value)>,
        wal_bytes: Vec<u8>,
    ) -> Self {
        let (wal, records) = Wal::recover(wal_bytes, cfg.wal_fsync_cost);
        let mut replica = BasilReplica::new(id, cfg, registry, behavior, initial_data);
        replica.wal = wal;
        for record in records {
            replica.replay(record);
        }
        let peers: FastHashSet<u32> = (0..replica.cfg.system.shard.n())
            .filter(|&i| i != replica.id.index)
            .collect();
        if !peers.is_empty() {
            replica.recovering = Some(RecoveryState {
                pending_peers: peers,
                buffered: Vec::new(),
            });
        }
        replica
    }

    /// Applies one recovered WAL record to the rebuilt state. Only touches
    /// the store and the transaction records — no messages, no signatures:
    /// replay must be free of external effects.
    fn replay(&mut self, record: WalRecord) {
        match record {
            WalRecord::Prepare { commit, tx } => {
                let txid = tx.id();
                if commit {
                    // Re-run the concurrency-control check so prepared
                    // writes, RTS entries, and dependency tracking are
                    // reinstalled. The log replays in original mutation
                    // order, so the store state matches what the pre-crash
                    // check saw; the permissive clock keeps the timestamp
                    // acceptance bound (a wall-clock check, already passed
                    // before the crash) from rejecting the replay.
                    let clock = SimTime::from_nanos(u64::MAX / 2);
                    let _ = self.store.prepare(&tx, clock, self.cfg.system.delta);
                }
                let record = self.record(txid);
                if record.tx.is_none() {
                    record.tx = Some(tx);
                }
                record.own_vote = Some(if commit {
                    ProtoVote::Commit
                } else {
                    ProtoVote::Abort
                });
            }
            WalRecord::Decision { txid, commit, view } => {
                let record = self.record(txid);
                let decision = if commit {
                    ProtoDecision::Commit
                } else {
                    ProtoDecision::Abort
                };
                record.logged = Some((decision, view));
                record.current_view = record.current_view.max(view);
            }
            WalRecord::Applied { txid, commit, tx } => {
                if let Some(tx) = &tx {
                    let record = self.record(txid);
                    if record.tx.is_none() {
                        record.tx = Some(Arc::clone(tx));
                    }
                }
                let applied = if commit {
                    match self.records.get(&txid).and_then(|r| r.tx.as_ref()) {
                        Some(tx) => {
                            self.store.commit(tx);
                            true
                        }
                        // The body is gone (it was only ever logged by
                        // reference); peer catch-up re-ships it with the
                        // certificate.
                        None => false,
                    }
                } else {
                    self.store.abort(txid);
                    true
                };
                if applied {
                    self.record(txid).decided = Some(if commit {
                        ProtoDecision::Commit
                    } else {
                        ProtoDecision::Abort
                    });
                }
            }
            WalRecord::GcWatermark { watermark } => {
                self.store.gc_before(watermark);
            }
        }
    }

    /// Appends a durable record and charges the simulated fsync cost.
    fn wal_append(&mut self, ctx: &mut Context<BasilMsg>, record: &WalRecord) {
        let cost = self.wal.append(record);
        self.stats.wal_appends += 1;
        ctx.charge(cost);
    }

    /// Takes the simulated disk image out of the replica. The cluster
    /// harness calls this on the crashed actor and hands the bytes to
    /// [`BasilReplica::recover`] — the WAL is the only state that survives
    /// an amnesia restart.
    pub fn take_wal_bytes(&mut self) -> Vec<u8> {
        self.wal.take_bytes()
    }

    /// The replica's configured behaviour (the harness preserves it across
    /// amnesia restarts: a Byzantine replica does not become honest by
    /// crashing).
    pub fn behavior(&self) -> ReplicaBehavior {
        self.behavior
    }

    /// Whether the replica is still in its post-amnesia catch-up phase.
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Counters collected so far.
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// Read access to the underlying store (used by the harness for the
    /// serializability audit and by examples to inspect final state).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Overrides the replica's behaviour (used by failure-injection tests).
    pub fn set_behavior(&mut self, behavior: ReplicaBehavior) {
        self.behavior = behavior;
    }

    fn record(&mut self, txid: TxId) -> &mut TxRecord {
        self.records.entry(txid).or_default()
    }

    fn shard_replicas(&self) -> Vec<NodeId> {
        let shard = self.id.shard;
        (0..self.cfg.system.shard.n())
            .map(|i| NodeId::Replica(ReplicaId::new(shard, i)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Reply batching (Section 4.4)
    // ------------------------------------------------------------------

    fn enqueue_reply(&mut self, ctx: &mut Context<BasilMsg>, to: NodeId, reply: PendingReply) {
        self.stats.replies_batched += 1;
        self.out_batch.push((to, reply));
        let batch_size = self.cfg.system.batch_size.max(1) as usize;
        if !self.engine.enabled() || batch_size == 1 || self.out_batch.len() >= batch_size {
            self.flush_batch(ctx);
        } else if !self.batch_timer_armed {
            self.batch_timer_armed = true;
            ctx.schedule_self(
                self.cfg.system.batch_timeout,
                BasilMsg::ReplicaTimer(ReplicaTimer::BatchFlush),
            );
        }
    }

    fn flush_batch(&mut self, ctx: &mut Context<BasilMsg>) {
        if self.out_batch.is_empty() {
            return;
        }
        let batch: Vec<(NodeId, PendingReply)> = std::mem::take(&mut self.out_batch);
        // Lazy payloads: under simulated crypto only the lengths are read.
        let payloads: Vec<&PendingReply> = batch.iter().map(|(_, r)| r).collect();
        let (proofs, cost) = self.engine.sign_batch(&payloads);
        ctx.charge(cost);
        self.stats.batches_signed += 1;
        for ((to, reply), proof) in batch.into_iter().zip(proofs) {
            let msg = match reply {
                PendingReply::Read(body) => BasilMsg::ReadReply(ReadReply { body, proof }),
                PendingReply::St1(body, conflict) => BasilMsg::St1Reply(SignedSt1Reply {
                    body,
                    proof,
                    conflict,
                }),
                PendingReply::St2(body) => BasilMsg::St2Reply(SignedSt2Reply { body, proof }),
            };
            ctx.charge(self.engine.message_cost());
            ctx.send(to, msg);
        }
    }

    // ------------------------------------------------------------------
    // Store garbage collection
    // ------------------------------------------------------------------

    /// Runs one periodic GC sweep and re-arms the timer.
    ///
    /// The watermark trails the local clock by `gc_horizon`: every committed
    /// version superseded below it, committed read record below it, and RTS
    /// entry below it is dropped (an in-place prefix drain per key in the
    /// flattened store — no allocation). Timestamps of honest transactions
    /// track client clocks, so with a horizon comfortably above
    /// `system.delta` plus the retry backoff no fault-free timestamp lands
    /// below the watermark. Safety does not rest on that assumption: the
    /// store refuses to prepare any transaction timestamped at or below its
    /// highest GC watermark (the conflict evidence there is gone), so a
    /// Byzantine or badly skewed backdated transaction aborts — the standard
    /// MVTSO GC liveness trade, never a serializability hole.
    fn gc_sweep(&mut self, ctx: &mut Context<BasilMsg>) {
        // Reached only for self-scheduled timers (see the dispatch arm), but
        // a sweep still requires the operator's opt-in (it trades liveness).
        if self.cfg.gc_interval.is_none() {
            return;
        }
        let horizon = self.cfg.gc_horizon.as_nanos();
        let now = ctx.local_clock().as_nanos();
        if now > horizon {
            // (time, ClientId(0)) sorts at-or-below every timestamp with the
            // same wall-clock component, making the cut-off exact.
            let watermark = Timestamp::from_nanos(now - horizon, ClientId(0));
            self.store.gc_before(watermark);
            self.stats.gc_sweeps += 1;
            // Durable: a recovered replica must refuse the same collected
            // region its pre-crash self would have.
            self.wal_append(ctx, &WalRecord::GcWatermark { watermark });
        }
        if let Some(interval) = self.cfg.gc_interval {
            ctx.schedule_self(interval, BasilMsg::ReplicaTimer(ReplicaTimer::GcSweep));
        }
    }

    // ------------------------------------------------------------------
    // Execution phase: reads
    // ------------------------------------------------------------------

    fn handle_read(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, req: ReadRequest) {
        if self.behavior == ReplicaBehavior::IgnoreReads {
            self.stats.byzantine_drops += 1;
            return;
        }
        let (ok, cost) = self.engine.verify_request(&req, req.auth.as_ref());
        ctx.charge(cost);
        if !ok {
            return;
        }
        // Timestamp acceptance window (Section 4.1): ignore reads too far in
        // the future.
        if req
            .ts
            .exceeds_bound(ctx.local_clock(), self.cfg.system.delta)
        {
            return;
        }
        let result = self.store.read(&req.key, req.ts);
        let committed = result.committed.map(|c| CommittedRead {
            version: c.version,
            value: c.value,
            cert: self.certs.get(&c.txid).cloned(),
            txid: c.txid,
        });
        let prepared = result
            .prepared
            .and_then(|p| self.store.prepared_tx_shared(&p.txid))
            .map(|tx| PreparedRead { tx });
        let body = ReadReplyBody {
            req_id: req.req_id,
            key: req.key,
            committed,
            prepared,
        };
        self.stats.reads_served += 1;
        self.enqueue_reply(ctx, from, PendingReply::Read(body));
    }

    // ------------------------------------------------------------------
    // Prepare phase: ST1
    // ------------------------------------------------------------------

    fn handle_st1(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, st1: St1) {
        let (ok, cost) = self.engine.verify_request(&st1, st1.auth.as_ref());
        ctx.charge(cost);
        if !ok {
            return;
        }
        let txid = st1.tx.id();
        if st1.recovery {
            self.record(txid).register_interested(from);
        } else if self.behavior == ReplicaBehavior::WithholdVotes {
            self.stats.byzantine_drops += 1;
            return;
        }

        // A known certificate answers the request immediately (recovery fast
        // path: the client can jump straight to writeback).
        if let Some(cert) = self.certs.get(&txid) {
            let cert = Arc::clone(cert);
            ctx.charge(self.engine.message_cost());
            ctx.send(
                from,
                BasilMsg::Writeback(Writeback {
                    cert,
                    tx: self.record(txid).tx.clone(),
                }),
            );
            return;
        }

        let record = self.records.entry(txid).or_default();
        if record.tx.is_none() {
            record.tx = Some(Arc::clone(&st1.tx));
        }

        // If we logged an ST2 decision already, a recovering client is better
        // served by that state.
        if st1.recovery {
            if let Some((decision, view)) = record.logged {
                let body = St2ReplyBody {
                    txid,
                    replica: self.id,
                    decision,
                    view_decision: view,
                    view_current: record.current_view,
                };
                self.enqueue_reply(ctx, from, PendingReply::St2(body));
                return;
            }
        }

        // Re-deliveries are answered with the stored vote.
        if let Some(vote) = record.own_vote.clone() {
            let body = St1ReplyBody {
                txid,
                replica: self.id,
                vote,
            };
            self.enqueue_reply(ctx, from, PendingReply::St1(body, None));
            return;
        }
        if record.vote_pending {
            if !record.waiting_clients.contains(&from) {
                record.waiting_clients.push(from);
            }
            return;
        }

        // Byzantine behaviour: always vote abort without consulting the store.
        if self.behavior == ReplicaBehavior::AlwaysVoteAbort {
            let record = self.record(txid);
            record.own_vote = Some(ProtoVote::Abort);
            self.stats.st1_voted += 1;
            let body = St1ReplyBody {
                txid,
                replica: self.id,
                vote: ProtoVote::Abort,
            };
            self.enqueue_reply(ctx, from, PendingReply::St1(body, None));
            return;
        }

        // Run the MVTSO check (Algorithm 1). Charge a hash of the transaction
        // encoding as the processing cost of the check itself.
        ctx.charge(self.engine.message_cost());
        let outcome = self
            .store
            .prepare(&st1.tx, ctx.local_clock(), self.cfg.system.delta);
        match outcome {
            CheckOutcome::Decided(vote) => {
                let proto = match vote {
                    Vote::Commit => ProtoVote::Commit,
                    Vote::Abort(_) => ProtoVote::Abort,
                };
                let record = self.record(txid);
                record.own_vote = Some(proto.clone());
                self.stats.st1_voted += 1;
                self.wal_append(
                    ctx,
                    &WalRecord::Prepare {
                        commit: proto.is_commit(),
                        tx: Arc::clone(&st1.tx),
                    },
                );
                let body = St1ReplyBody {
                    txid,
                    replica: self.id,
                    vote: proto,
                };
                self.enqueue_reply(ctx, from, PendingReply::St1(body, None));
                // A buffered ST2 can now be validated against the transaction.
                self.process_buffered_st2(ctx, txid);
            }
            CheckOutcome::Pending { .. } => {
                let record = self.record(txid);
                record.vote_pending = true;
                record.waiting_clients.push(from);
                self.stats.st1_deferred += 1;
            }
        }
    }

    /// Sends the deferred ST1 votes released by a dependency decision.
    fn deliver_released_votes(&mut self, ctx: &mut Context<BasilMsg>, released: Vec<(TxId, Vote)>) {
        for (txid, vote) in released {
            let proto = match vote {
                Vote::Commit => ProtoVote::Commit,
                Vote::Abort(_) => ProtoVote::Abort,
            };
            let (waiting, interested, tx) = {
                let record = self.record(txid);
                record.own_vote = Some(proto.clone());
                record.vote_pending = false;
                (
                    std::mem::take(&mut record.waiting_clients),
                    record.interested.clone(),
                    record.tx.clone(),
                )
            };
            self.stats.st1_voted += 1;
            if let Some(tx) = tx {
                // A released deferred vote is a state transition like an
                // immediate one: log it so amnesia replay re-derives it.
                self.wal_append(
                    ctx,
                    &WalRecord::Prepare {
                        commit: proto.is_commit(),
                        tx,
                    },
                );
            }
            let mut recipients: Vec<NodeId> = waiting;
            for c in interested {
                if !recipients.contains(&c) {
                    recipients.push(c);
                }
            }
            for client in recipients {
                let body = St1ReplyBody {
                    txid,
                    replica: self.id,
                    vote: proto.clone(),
                };
                self.enqueue_reply(ctx, client, PendingReply::St1(body, None));
            }
        }
    }

    // ------------------------------------------------------------------
    // Prepare phase: ST2 (decision logging)
    // ------------------------------------------------------------------

    fn handle_st2(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, st2: St2) {
        let (ok, cost) = self.engine.verify_request(&st2, st2.auth.as_ref());
        ctx.charge(cost);
        if !ok {
            return;
        }
        let txid = st2.txid;
        // Without the transaction body we cannot check which shards must have
        // voted; buffer until the ST1 arrives (unless validation is relaxed).
        let tx_known = self
            .records
            .get(&txid)
            .map(|r| r.tx.is_some())
            .unwrap_or(false);
        if !tx_known && self.engine.enabled() && !self.cfg.relax_st2_validation {
            self.record(txid).buffered_st2.push((from, st2));
            return;
        }
        self.apply_st2(ctx, from, st2);
    }

    fn process_buffered_st2(&mut self, ctx: &mut Context<BasilMsg>, txid: TxId) {
        let buffered = std::mem::take(&mut self.record(txid).buffered_st2);
        for (from, st2) in buffered {
            self.apply_st2(ctx, from, st2);
        }
    }

    fn apply_st2(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, st2: St2) {
        let txid = st2.txid;
        let expected_shards: Option<Vec<ShardId>> = self
            .records
            .get(&txid)
            .and_then(|r| r.tx.as_ref())
            .map(|tx| tx.involved_shards(&self.cfg.system));
        if !self.cfg.relax_st2_validation {
            let validation = validate_st2_justification(
                txid,
                st2.decision,
                &st2.shard_votes,
                expected_shards.as_deref(),
                &self.cfg.system.shard,
                &mut self.engine,
            );
            ctx.charge(validation.cost);
            if !validation.valid {
                return;
            }
        }
        let replica_id = self.id;
        let (decision, view_decision, view_current, newly_logged) = {
            let record = self.record(txid);
            record.register_interested(from);
            let newly_logged = record.logged.is_none();
            if newly_logged {
                record.logged = Some((st2.decision, st2.view));
                record.current_view = record.current_view.max(st2.view);
            }
            let (decision, view_decision) = record.logged.expect("just set");
            (decision, view_decision, record.current_view, newly_logged)
        };
        if newly_logged {
            self.stats.st2_logged += 1;
            self.wal_append(
                ctx,
                &WalRecord::Decision {
                    txid,
                    commit: decision.is_commit(),
                    view: view_decision,
                },
            );
        }
        let body = St2ReplyBody {
            txid,
            replica: replica_id,
            decision,
            view_decision,
            view_current,
        };
        self.enqueue_reply(ctx, from, PendingReply::St2(body));
    }

    // ------------------------------------------------------------------
    // Writeback phase
    // ------------------------------------------------------------------

    fn handle_writeback(&mut self, ctx: &mut Context<BasilMsg>, wb: Writeback) {
        let txid = wb.cert.txid();
        if self.records.get(&txid).and_then(|r| r.decided).is_some() {
            return; // already applied
        }
        let expected_shards: Option<Vec<ShardId>> = self
            .records
            .get(&txid)
            .and_then(|r| r.tx.as_ref())
            .or(wb.tx.as_ref())
            .map(|tx| tx.involved_shards(&self.cfg.system));
        let validation = match wb.cert.as_ref() {
            DecisionCert::Commit(c) => crate::certs::validate_commit_cert(
                c,
                expected_shards.as_deref(),
                &self.cfg.system.shard,
                &mut self.engine,
            ),
            DecisionCert::Abort(a) => {
                crate::certs::validate_abort_cert(a, &self.cfg.system.shard, &mut self.engine)
            }
        };
        ctx.charge(validation.cost);
        if !validation.valid {
            return;
        }

        {
            let record = self.record(txid);
            if record.tx.is_none() {
                record.tx = wb.tx;
            }
        }
        let decision = wb.cert.decision();
        let released = match decision {
            ProtoDecision::Commit => {
                // Borrow the body straight out of the record (records and
                // store are disjoint fields) instead of cloning it.
                let Some(tx) = self.records.get(&txid).and_then(|r| r.tx.as_ref()) else {
                    // Cannot apply writes without the transaction body; wait
                    // for a writeback that carries it.
                    return;
                };
                self.stats.commits_applied += 1;
                self.store.commit(tx)
            }
            ProtoDecision::Abort => {
                self.stats.aborts_applied += 1;
                self.store.abort(txid)
            }
        };
        self.certs.insert(txid, Arc::clone(&wb.cert));
        // Commits re-ship the body in the log so amnesia replay can
        // re-install the writes without any peer's help.
        let logged_tx = match decision {
            ProtoDecision::Commit => self.records.get(&txid).and_then(|r| r.tx.clone()),
            ProtoDecision::Abort => None,
        };
        self.wal_append(
            ctx,
            &WalRecord::Applied {
                txid,
                commit: decision.is_commit(),
                tx: logged_tx,
            },
        );
        let interested: Vec<NodeId> = {
            let record = self.record(txid);
            record.decided = Some(decision);
            std::mem::take(&mut record.interested)
        };
        // Forward the outcome to clients waiting on this transaction (a
        // reference-count bump per recipient, not a certificate copy).
        for client in interested {
            ctx.charge(self.engine.message_cost());
            ctx.send(
                client,
                BasilMsg::Writeback(Writeback {
                    cert: Arc::clone(&wb.cert),
                    tx: None,
                }),
            );
        }
        self.deliver_released_votes(ctx, released);
    }

    // ------------------------------------------------------------------
    // Crash recovery: peer catch-up
    // ------------------------------------------------------------------

    /// Serves a recovering peer with every decision certificate this replica
    /// has applied, each with the transaction body when still held (commits
    /// need it to re-install writes). Certificates are self-validating, so no
    /// signature is needed on the reply; entries are sent in transaction-id
    /// order to keep the message plane deterministic across runtimes.
    fn handle_catch_up_request(
        &mut self,
        ctx: &mut Context<BasilMsg>,
        from: NodeId,
        req: CatchUpRequest,
    ) {
        if from != NodeId::Replica(req.from) || req.from.shard != self.id.shard {
            return; // spoofed or cross-shard request
        }
        let mut items: Vec<(TxId, Arc<DecisionCert>)> = self
            .certs
            .iter()
            .map(|(txid, cert)| (*txid, Arc::clone(cert)))
            .collect();
        items.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
        let entries: Vec<(Arc<DecisionCert>, Option<Arc<Transaction>>)> = items
            .into_iter()
            .map(|(txid, cert)| {
                let tx = self.records.get(&txid).and_then(|r| r.tx.clone());
                (cert, tx)
            })
            .collect();
        ctx.charge(self.engine.message_cost());
        ctx.send(
            from,
            BasilMsg::CatchUpReply(CatchUpReply {
                from: self.id,
                entries,
            }),
        );
    }

    /// Applies a peer's catch-up reply while recovering. Every entry goes
    /// through [`BasilReplica::handle_writeback`], i.e. the certificate is
    /// validated exactly like a client writeback before it touches the store
    /// — a Byzantine peer can pad the reply with garbage but cannot poison
    /// recovery with an unverifiable decision. Once every peer has answered,
    /// the replica resumes normal service.
    fn handle_catch_up_reply(
        &mut self,
        ctx: &mut Context<BasilMsg>,
        from: NodeId,
        reply: CatchUpReply,
    ) {
        if self.recovering.is_none() {
            return; // late reply after the deadline already fired
        }
        if from != NodeId::Replica(reply.from) || reply.from.shard != self.id.shard {
            return;
        }
        {
            let state = self.recovering.as_mut().expect("checked above");
            if !state.pending_peers.remove(&reply.from.index) {
                return; // duplicate reply
            }
        }
        for (cert, tx) in reply.entries {
            let txid = cert.txid();
            let decided_before = self.records.get(&txid).and_then(|r| r.decided).is_some();
            self.handle_writeback(ctx, Writeback { cert, tx });
            let decided_after = self.records.get(&txid).and_then(|r| r.decided).is_some();
            if !decided_before && decided_after {
                self.stats.catch_up_applied += 1;
            }
        }
        if self
            .recovering
            .as_ref()
            .is_some_and(|s| s.pending_peers.is_empty())
        {
            self.finish_catch_up(ctx);
        }
    }

    /// Ends the catch-up phase and replays the traffic that was buffered
    /// during it through the ordinary handlers, in arrival order.
    fn finish_catch_up(&mut self, ctx: &mut Context<BasilMsg>) {
        let Some(state) = self.recovering.take() else {
            return;
        };
        for (from, msg) in state.buffered {
            ctx.charge(self.engine.message_cost());
            self.dispatch(ctx, from, msg);
        }
    }

    /// Whether `msg` must wait until catch-up finishes. Catch-up traffic and
    /// (self-scheduled) timers flow immediately; everything that could read
    /// or mutate not-yet-recovered protocol state is held back.
    fn buffered_during_recovery(msg: &BasilMsg) -> bool {
        matches!(
            msg,
            BasilMsg::Read(_)
                | BasilMsg::St1(_)
                | BasilMsg::St2(_)
                | BasilMsg::Writeback(_)
                | BasilMsg::RtsRelease { .. }
                | BasilMsg::InvokeFb(_)
                | BasilMsg::ElectFb(_)
                | BasilMsg::DecFb(_)
        )
    }

    // ------------------------------------------------------------------
    // Fallback protocol (Section 5)
    // ------------------------------------------------------------------

    fn handle_invoke_fb(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, ifb: InvokeFb) {
        let (ok, cost) = self.engine.verify_request(&ifb, ifb.auth.as_ref());
        ctx.charge(cost);
        if !ok {
            return;
        }
        self.stats.fallback_invocations += 1;
        let txid = ifb.txid;

        // Validate and extract the reported current views.
        let mut reported: Vec<View> = Vec::new();
        let mut seen = ReplicaIndexSet::default();
        let mut verify_cost = basil_common::Duration::ZERO;
        for view_reply in &ifb.views {
            if view_reply.body.txid != txid || view_reply.body.replica.shard != self.id.shard {
                continue;
            }
            if seen.contains(view_reply.body.replica.index) {
                continue;
            }
            if self.engine.enabled() {
                let signer_ok = view_reply
                    .proof
                    .as_ref()
                    .map(|p| p.signer() == NodeId::Replica(view_reply.body.replica))
                    .unwrap_or(false);
                let (ok, c) = self
                    .engine
                    .verify(&view_reply.body, view_reply.proof.as_ref());
                verify_cost += c;
                if !ok || !signer_ok {
                    continue;
                }
            }
            seen.insert(view_reply.body.replica.index);
            reported.push(view_reply.body.view_current);
        }
        ctx.charge(verify_cost);

        // Optimization from Appendix B.5: moving from view 0 to view 1 needs
        // no proof at all.
        let shard_cfg = self.cfg.system.shard;
        let (view, decision) = {
            let record = self.record(txid);
            record.register_interested(from);
            let proposed = next_view(record.current_view, &reported, &shard_cfg);
            let new_view = if record.current_view == 0 {
                proposed.max(1)
            } else {
                proposed
            };
            // If the proof does not justify a newer view we still (re)send
            // our election message for the current view so a retrying client
            // can make progress.
            record.current_view = new_view.max(record.current_view);
            (record.current_view, record.logged.map(|(d, _)| d))
        };
        let leader_index = fallback_leader_index(view, txid, self.cfg.system.shard.n());
        let leader = NodeId::Replica(ReplicaId::new(self.id.shard, leader_index));
        let body = ElectFbBody {
            txid,
            replica: self.id,
            decision,
            view,
        };
        let (proof, sign_cost) = self.engine.sign(&body);
        ctx.charge(sign_cost + self.engine.message_cost());
        ctx.send(leader, BasilMsg::ElectFb(SignedElectFb { body, proof }));
    }

    fn handle_elect_fb(&mut self, ctx: &mut Context<BasilMsg>, efb: SignedElectFb) {
        let txid = efb.body.txid;
        let view = efb.body.view;
        // Only the designated leader for this view collects elections.
        let leader_index = fallback_leader_index(view, txid, self.cfg.system.shard.n());
        if leader_index != self.id.index {
            return;
        }
        if self.elections_done.contains(&(txid, view)) {
            return;
        }
        if self.engine.enabled() {
            let signer_ok = efb
                .proof
                .as_ref()
                .map(|p| p.signer() == NodeId::Replica(efb.body.replica))
                .unwrap_or(false);
            let (ok, cost) = self.engine.verify(&efb.body, efb.proof.as_ref());
            ctx.charge(cost);
            if !ok || !signer_ok {
                return;
            }
        }
        let entry = self.elections.entry((txid, view)).or_default();
        entry.insert(efb.body.replica.index, efb);
        if (entry.len() as u32) < self.cfg.system.shard.elect_quorum() {
            return;
        }
        // Elected: reconcile the decision as the majority of reported logged
        // decisions.
        let votes: Vec<SignedElectFb> = entry.values().cloned().collect();
        let commits = votes
            .iter()
            .filter(|v| v.body.decision == Some(ProtoDecision::Commit))
            .count();
        let aborts = votes
            .iter()
            .filter(|v| v.body.decision == Some(ProtoDecision::Abort))
            .count();
        if commits == 0 && aborts == 0 {
            // No replica has logged anything; nothing safe to propose.
            return;
        }
        let decision = if commits >= aborts {
            ProtoDecision::Commit
        } else {
            ProtoDecision::Abort
        };
        self.elections_done.insert((txid, view));
        let dec = DecFb {
            txid,
            decision,
            view,
            elect_proof: votes,
            auth: None,
        };
        let (proof, cost) = self.engine.sign(&dec);
        ctx.charge(cost);
        let dec = DecFb { auth: proof, ..dec };
        for replica in self.shard_replicas() {
            ctx.charge(self.engine.message_cost());
            ctx.send(replica, BasilMsg::DecFb(dec.clone()));
        }
    }

    fn handle_dec_fb(&mut self, ctx: &mut Context<BasilMsg>, dfb: DecFb) {
        let txid = dfb.txid;
        let view = dfb.view;
        // Validate the leader's identity and signature.
        let leader_index = fallback_leader_index(view, txid, self.cfg.system.shard.n());
        if self.engine.enabled() {
            let signer_ok = dfb
                .auth
                .as_ref()
                .map(|p| p.signer() == NodeId::Replica(ReplicaId::new(self.id.shard, leader_index)))
                .unwrap_or(false);
            let (ok, cost) = self.engine.verify(&dfb, dfb.auth.as_ref());
            ctx.charge(cost);
            if !ok || !signer_ok {
                return;
            }
            // Validate the election proof: 4f+1 distinct, correctly signed
            // ElectFB messages for this view.
            let mut seen = ReplicaIndexSet::default();
            let mut cost_total = basil_common::Duration::ZERO;
            for e in &dfb.elect_proof {
                if e.body.txid != txid || e.body.view != view {
                    continue;
                }
                if seen.contains(e.body.replica.index) {
                    continue;
                }
                let signer_ok = e
                    .proof
                    .as_ref()
                    .map(|p| p.signer() == NodeId::Replica(e.body.replica))
                    .unwrap_or(false);
                let (ok, c) = self.engine.verify(&e.body, e.proof.as_ref());
                cost_total += c;
                if ok && signer_ok {
                    seen.insert(e.body.replica.index);
                }
            }
            ctx.charge(cost_total);
            if seen.len() < self.cfg.system.shard.elect_quorum() {
                return;
            }
        }
        let replica_id = self.id;
        let interested: Vec<NodeId> = {
            let record = self.record(txid);
            if view < record.current_view {
                return;
            }
            record.current_view = view;
            record.logged = Some((dfb.decision, view));
            record.interested.clone()
        };
        self.stats.fallback_decisions_adopted += 1;
        // A fallback-reconciled decision is logged state like an ST2 one.
        self.wal_append(
            ctx,
            &WalRecord::Decision {
                txid,
                commit: dfb.decision.is_commit(),
                view,
            },
        );
        let body = St2ReplyBody {
            txid,
            replica: replica_id,
            decision: dfb.decision,
            view_decision: view,
            view_current: view,
        };
        for client in interested {
            self.enqueue_reply(ctx, client, PendingReply::St2(body.clone()));
        }
    }
}

impl<S: TxStore> BasilReplica<S> {
    /// The message dispatch proper, shared by live delivery and the replay
    /// of traffic buffered during catch-up.
    fn dispatch(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, msg: BasilMsg) {
        match msg {
            BasilMsg::Read(req) => self.handle_read(ctx, from, req),
            BasilMsg::St1(st1) => self.handle_st1(ctx, from, st1),
            BasilMsg::St2(st2) => self.handle_st2(ctx, from, st2),
            BasilMsg::Writeback(wb) => self.handle_writeback(ctx, wb),
            BasilMsg::RtsRelease { key, ts } => self.store.remove_rts(&key, ts),
            BasilMsg::InvokeFb(ifb) => self.handle_invoke_fb(ctx, from, ifb),
            BasilMsg::ElectFb(efb) => self.handle_elect_fb(ctx, efb),
            BasilMsg::DecFb(dfb) => self.handle_dec_fb(ctx, dfb),
            BasilMsg::CatchUpRequest(req) => self.handle_catch_up_request(ctx, from, req),
            BasilMsg::CatchUpReply(reply) => self.handle_catch_up_reply(ctx, from, reply),
            // Timers travel on the ordinary message plane; only our own
            // self-scheduled ones may fire (a forged BatchFlush would defeat
            // reply-batch amortization, a forged GcSweep would force sweeps
            // and multiply re-armed timer chains, a forged CatchUpDeadline
            // would cut a recovery short).
            BasilMsg::ReplicaTimer(timer) if from == NodeId::Replica(self.id) => match timer {
                ReplicaTimer::BatchFlush => {
                    self.batch_timer_armed = false;
                    self.flush_batch(ctx);
                }
                ReplicaTimer::GcSweep => self.gc_sweep(ctx),
                ReplicaTimer::CatchUpDeadline => self.finish_catch_up(ctx),
            },
            BasilMsg::ReplicaTimer(_) => {}
            // Messages addressed to clients are ignored if misrouted.
            BasilMsg::ReadReply(_)
            | BasilMsg::St1Reply(_)
            | BasilMsg::St2Reply(_)
            | BasilMsg::ClientTimer(_) => {}
        }
    }
}

impl<S: TxStore> Actor<BasilMsg> for BasilReplica<S> {
    fn on_start(&mut self, ctx: &mut Context<BasilMsg>) {
        if let Some(interval) = self.cfg.gc_interval {
            ctx.schedule_self(interval, BasilMsg::ReplicaTimer(ReplicaTimer::GcSweep));
        }
        if self.recovering.is_some() {
            // Amnesia restart: ask every shard peer for the decisions missed
            // while down, and bound the wait — peers may themselves be
            // crashed, so recovery must not hinge on all of them answering.
            for peer in self.shard_replicas() {
                if peer == NodeId::Replica(self.id) {
                    continue;
                }
                ctx.charge(self.engine.message_cost());
                ctx.send(
                    peer,
                    BasilMsg::CatchUpRequest(CatchUpRequest { from: self.id }),
                );
            }
            ctx.schedule_self(
                self.cfg.catch_up_timeout,
                BasilMsg::ReplicaTimer(ReplicaTimer::CatchUpDeadline),
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Context<BasilMsg>, from: NodeId, msg: BasilMsg) {
        if self.behavior == ReplicaBehavior::Silent {
            self.stats.byzantine_drops += 1;
            return;
        }
        // Per-message deserialization overhead.
        ctx.charge(self.engine.message_cost());
        self.engine.set_now(ctx.now());
        if let Some(rec) = self.recovering.as_mut() {
            if Self::buffered_during_recovery(&msg) {
                // The replay buffer is bounded like the client admission
                // queue: a recovering replica under heavy load sheds the
                // overflow instead of growing without limit. Shedding is
                // safe — every held-back message kind is retransmitted by
                // its sender's timeout machinery.
                if rec.buffered.len() >= self.cfg.catch_up_buffer_bound {
                    self.stats.catch_up_shed += 1;
                    return;
                }
                self.stats.catch_up_buffered += 1;
                rec.buffered.push((from, msg));
                return;
            }
        }
        self.dispatch(ctx, from, msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::ShardVotes;
    use crate::config::CryptoMode;
    use basil_common::{ClientId, SimTime, Timestamp};
    use basil_crypto::KeyRegistry;
    use basil_store::TransactionBuilder;
    use std::collections::HashSet;

    fn cfg() -> BasilConfig {
        let mut c = BasilConfig::test_single_shard();
        c.crypto_mode = CryptoMode::Real;
        c
    }

    fn registry() -> KeyRegistry {
        KeyRegistry::from_seed(77)
    }

    fn replica(index: u32) -> BasilReplica {
        BasilReplica::<MvtsoStore>::new(
            ReplicaId::new(ShardId(0), index),
            cfg(),
            registry(),
            ReplicaBehavior::Correct,
            [
                (Key::new("x"), Value::from_u64(0)),
                (Key::new("y"), Value::from_u64(0)),
            ],
        )
    }

    fn client_node() -> NodeId {
        NodeId::Client(ClientId(9))
    }

    fn client_engine() -> SigEngine {
        SigEngine::new(client_node(), registry(), &cfg())
    }

    fn ctx_at(node: NodeId, ms: u64) -> Context<BasilMsg> {
        Context::new(node, SimTime::from_millis(ms), SimTime::from_millis(ms))
    }

    fn write_tx(t: u64, key: &str, val: u64) -> Arc<Transaction> {
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(t, ClientId(9)));
        b.record_write(Key::new(key), Value::from_u64(val));
        b.build_shared()
    }

    fn signed_st1(tx: &Arc<Transaction>, recovery: bool) -> St1 {
        let mut engine = client_engine();
        let st1 = St1 {
            tx: Arc::clone(tx),
            auth: None,
            recovery,
        };
        let (proof, _) = engine.sign(&st1.signed_bytes());
        St1 { auth: proof, ..st1 }
    }

    fn signed_read(req_id: u64, key: &str, ts_nanos: u64) -> ReadRequest {
        let mut engine = client_engine();
        let req = ReadRequest {
            req_id,
            key: Key::new(key),
            ts: Timestamp::from_nanos(ts_nanos, ClientId(9)),
            auth: None,
        };
        let (proof, _) = engine.sign(&req.signed_bytes());
        ReadRequest { auth: proof, ..req }
    }

    /// Extracts all messages sent to a given node from a context.
    fn sent_to(ctx: &Context<BasilMsg>, to: NodeId) -> Vec<BasilMsg> {
        ctx.outputs()
            .iter()
            .filter_map(|o| match o {
                basil_simnet::actor::Output::Send { to: t, msg } if *t == to => Some(msg.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn read_is_answered_with_initial_version() {
        let mut r = replica(0);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_read(&mut ctx, client_node(), signed_read(1, "x", 1_000_000));
        // Batch size is 1 in the test config, so the reply is flushed
        // immediately.
        let msgs = sent_to(&ctx, client_node());
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            BasilMsg::ReadReply(reply) => {
                assert_eq!(reply.body.req_id, 1);
                let committed = reply.body.committed.as_ref().expect("initial version");
                assert_eq!(committed.value, Value::from_u64(0));
                assert!(reply.body.prepared.is_none());
                assert!(reply.proof.is_some());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(r.stats().reads_served, 1);
    }

    #[test]
    fn read_with_future_timestamp_is_ignored() {
        let mut r = replica(0);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        // delta is 50ms in the test config; ask for a read 10 seconds ahead.
        r.handle_read(&mut ctx, client_node(), signed_read(1, "x", 10_000_000_000));
        assert!(sent_to(&ctx, client_node()).is_empty());
    }

    #[test]
    fn forged_read_request_is_dropped() {
        let mut r = replica(0);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        let mut req = signed_read(1, "x", 1_000_000);
        req.key = Key::new("y"); // payload no longer matches the signature
        r.handle_read(&mut ctx, client_node(), req);
        assert!(sent_to(&ctx, client_node()).is_empty());
    }

    #[test]
    fn st1_produces_commit_vote_and_st1_is_idempotent() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 7);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
        let msgs = sent_to(&ctx, client_node());
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            BasilMsg::St1Reply(reply) => {
                assert_eq!(reply.body.txid, tx.id());
                assert_eq!(reply.body.vote, ProtoVote::Commit);
                assert_eq!(reply.body.replica, r.id());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Re-delivery returns the stored vote without re-running the check.
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_st1(&mut ctx2, client_node(), signed_st1(&tx, false));
        assert_eq!(sent_to(&ctx2, client_node()).len(), 1);
        assert_eq!(r.stats().st1_voted, 1);
    }

    #[test]
    fn conflicting_st1_votes_abort() {
        let mut r = replica(0);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        // A committed reader at ts 3ms read version 0 of x.
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(3_000_000, ClientId(1)));
        b.record_read(Key::new("x"), Timestamp::ZERO);
        b.record_write(Key::new("y"), Value::from_u64(1));
        let reader = b.build_shared();
        r.handle_st1(&mut ctx, client_node(), signed_st1(&reader, false));

        // A writer of x at ts 2ms would invalidate that read: abort vote.
        let writer = write_tx(2_000_000, "x", 9);
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_st1(&mut ctx2, client_node(), signed_st1(&writer, false));
        match &sent_to(&ctx2, client_node())[0] {
            BasilMsg::St1Reply(reply) => assert_eq!(reply.body.vote, ProtoVote::Abort),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn withholding_replica_does_not_vote() {
        let mut r = replica(0);
        r.set_behavior(ReplicaBehavior::WithholdVotes);
        let tx = write_tx(1_000_000, "x", 7);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
        assert!(sent_to(&ctx, client_node()).is_empty());
        assert_eq!(r.stats().byzantine_drops, 1);
    }

    #[test]
    fn always_abort_replica_votes_abort() {
        let mut r = replica(0);
        r.set_behavior(ReplicaBehavior::AlwaysVoteAbort);
        let tx = write_tx(1_000_000, "x", 7);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
        match &sent_to(&ctx, client_node())[0] {
            BasilMsg::St1Reply(reply) => assert_eq!(reply.body.vote, ProtoVote::Abort),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Builds a valid fast-path commit certificate for `tx` signed by all six
    /// replicas of shard 0.
    fn fast_commit_cert(tx: &Transaction) -> Arc<DecisionCert> {
        let votes: Vec<SignedSt1Reply> = (0..6)
            .map(|i| {
                let rid = ReplicaId::new(ShardId(0), i);
                let body = St1ReplyBody {
                    txid: tx.id(),
                    replica: rid,
                    vote: ProtoVote::Commit,
                };
                let mut engine = SigEngine::new(NodeId::Replica(rid), registry(), &cfg());
                let (proof, _) = engine.sign(&body.signed_bytes());
                SignedSt1Reply {
                    body,
                    proof,
                    conflict: None,
                }
            })
            .collect();
        Arc::new(DecisionCert::Commit(crate::certs::CommitCert {
            txid: tx.id(),
            fast_votes: vec![ShardVotes {
                txid: tx.id(),
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                votes,
                conflict: None,
            }],
            slow: None,
        }))
    }

    #[test]
    fn valid_writeback_commits_and_serves_new_version() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 42);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));

        let cert = fast_commit_cert(&tx);
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_writeback(
            &mut ctx2,
            Writeback {
                cert,
                tx: Some(tx.clone()),
            },
        );
        assert_eq!(r.stats().commits_applied, 1);
        assert_eq!(
            r.store().latest_committed(&Key::new("x")).expect("x").1,
            Value::from_u64(42)
        );

        // A later read returns the committed version together with its
        // certificate.
        let mut ctx3 = ctx_at(NodeId::Replica(r.id()), 3);
        r.handle_read(&mut ctx3, client_node(), signed_read(2, "x", 5_000_000));
        match &sent_to(&ctx3, client_node())[0] {
            BasilMsg::ReadReply(reply) => {
                let committed = reply.body.committed.as_ref().expect("committed");
                assert_eq!(committed.value, Value::from_u64(42));
                assert!(
                    committed.cert.is_some(),
                    "cert attached for committed reads"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gc_sweep_trims_superseded_versions_and_rearms() {
        let mut gc_cfg = cfg();
        gc_cfg = gc_cfg.with_gc(
            basil_common::Duration::from_millis(5),
            basil_common::Duration::from_millis(1),
        );
        let mut r = BasilReplica::<MvtsoStore>::new(
            ReplicaId::new(ShardId(0), 0),
            gc_cfg,
            registry(),
            ReplicaBehavior::Correct,
            [(Key::new("x"), Value::from_u64(0))],
        );

        // Commit two versions of x (1 ms and 2 ms).
        for (t, val) in [(1_000_000u64, 1u64), (2_000_000, 2)] {
            let tx = write_tx(t, "x", val);
            let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
            r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
            let cert = fast_commit_cert(&tx);
            let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
            r.handle_writeback(&mut ctx2, Writeback { cert, tx: Some(tx) });
        }
        let mid = Timestamp::from_nanos(1_500_000, ClientId(0));
        assert!(
            r.store()
                .read_without_rts(&Key::new("x"), mid)
                .committed
                .is_some(),
            "pre-GC: the 1 ms version is visible to a 1.5 ms reader"
        );

        // Sweep at local clock 10 ms with a 1 ms horizon: watermark 9 ms,
        // so only the newest version (2 ms) is retained.
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 10);
        r.on_message(
            &mut ctx,
            NodeId::Replica(r.id()),
            BasilMsg::ReplicaTimer(ReplicaTimer::GcSweep),
        );
        assert_eq!(r.stats().gc_sweeps, 1);
        assert!(
            r.store()
                .read_without_rts(&Key::new("x"), mid)
                .committed
                .is_none(),
            "post-GC: superseded versions below the watermark are gone"
        );
        let late = Timestamp::from_nanos(20_000_000, ClientId(0));
        assert_eq!(
            r.store()
                .read_without_rts(&Key::new("x"), late)
                .committed
                .expect("newest retained")
                .value,
            Value::from_u64(2)
        );
    }

    #[test]
    fn forged_gc_sweep_is_ignored_when_gc_is_disabled() {
        let mut r = replica(0); // default config: gc_interval = None
        let tx = write_tx(1_000_000, "x", 1);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
        let cert = fast_commit_cert(&tx);
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_writeback(&mut ctx2, Writeback { cert, tx: Some(tx) });

        // A GcSweep delivered from another node must be a no-op, and even a
        // self-delivered one is refused while GC is not opted in.
        let mut ctx3 = ctx_at(NodeId::Replica(r.id()), 1_000);
        r.on_message(
            &mut ctx3,
            client_node(),
            BasilMsg::ReplicaTimer(ReplicaTimer::GcSweep),
        );
        let mut ctx4 = ctx_at(NodeId::Replica(r.id()), 1_000);
        r.on_message(
            &mut ctx4,
            NodeId::Replica(r.id()),
            BasilMsg::ReplicaTimer(ReplicaTimer::GcSweep),
        );
        assert_eq!(r.stats().gc_sweeps, 0, "sweep refused: GC not opted in");
        let genesis_reader = Timestamp::from_nanos(500, ClientId(0));
        assert!(
            r.store()
                .read_without_rts(&Key::new("x"), genesis_reader)
                .committed
                .is_some(),
            "genesis version still present"
        );
    }

    #[test]
    fn forged_batch_flush_is_ignored() {
        let mut r = BasilReplica::<MvtsoStore>::new(
            ReplicaId::new(ShardId(0), 0),
            cfg().with_batch_size(4),
            registry(),
            ReplicaBehavior::Correct,
            [(Key::new("x"), Value::from_u64(0))],
        );
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_read(&mut ctx, client_node(), signed_read(1, "x", 1_000_000));
        assert!(sent_to(&ctx, client_node()).is_empty(), "reply queued");

        // A BatchFlush from another node must not force the flush (that
        // would defeat batch-signing amortization).
        let mut forged = ctx_at(NodeId::Replica(r.id()), 2);
        r.on_message(
            &mut forged,
            client_node(),
            BasilMsg::ReplicaTimer(ReplicaTimer::BatchFlush),
        );
        assert!(sent_to(&forged, client_node()).is_empty());

        // The replica's own timer still flushes.
        let mut own = ctx_at(NodeId::Replica(r.id()), 3);
        r.on_message(
            &mut own,
            NodeId::Replica(r.id()),
            BasilMsg::ReplicaTimer(ReplicaTimer::BatchFlush),
        );
        assert_eq!(sent_to(&own, client_node()).len(), 1);
    }

    #[test]
    fn forged_gc_sweep_is_ignored_even_when_gc_is_enabled() {
        let gc_cfg = cfg().with_gc(
            basil_common::Duration::from_millis(5),
            basil_common::Duration::from_millis(1),
        );
        let mut r = BasilReplica::<MvtsoStore>::new(
            ReplicaId::new(ShardId(0), 0),
            gc_cfg,
            registry(),
            ReplicaBehavior::Correct,
            [(Key::new("x"), Value::from_u64(0))],
        );
        // A GcSweep claiming to be a timer but arriving from another node
        // must neither sweep nor re-arm a new timer chain.
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 100);
        r.on_message(
            &mut ctx,
            client_node(),
            BasilMsg::ReplicaTimer(ReplicaTimer::GcSweep),
        );
        assert_eq!(r.stats().gc_sweeps, 0, "foreign GcSweep ignored");
        assert!(
            ctx.outputs().is_empty(),
            "no sweep ran and no timer chain was re-armed"
        );
    }

    #[test]
    fn invalid_writeback_is_rejected() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 42);
        // Certificate with too few votes (only 3 of 6).
        let votes: Vec<SignedSt1Reply> = (0..3)
            .map(|i| {
                let rid = ReplicaId::new(ShardId(0), i);
                let body = St1ReplyBody {
                    txid: tx.id(),
                    replica: rid,
                    vote: ProtoVote::Commit,
                };
                let mut engine = SigEngine::new(NodeId::Replica(rid), registry(), &cfg());
                let (proof, _) = engine.sign(&body.signed_bytes());
                SignedSt1Reply {
                    body,
                    proof,
                    conflict: None,
                }
            })
            .collect();
        let cert = Arc::new(DecisionCert::Commit(crate::certs::CommitCert {
            txid: tx.id(),
            fast_votes: vec![ShardVotes {
                txid: tx.id(),
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                votes,
                conflict: None,
            }],
            slow: None,
        }));
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_writeback(
            &mut ctx,
            Writeback {
                cert,
                tx: Some(tx.clone()),
            },
        );
        assert_eq!(r.stats().commits_applied, 0);
        assert!(r.store().latest_committed(&Key::new("x")).expect("x").1 == Value::from_u64(0));
    }

    #[test]
    fn recovery_st1_after_commit_returns_certificate() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 42);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
        let cert = fast_commit_cert(&tx);
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_writeback(
            &mut ctx2,
            Writeback {
                cert,
                tx: Some(tx.clone()),
            },
        );
        // Another client recovers the transaction: it gets the certificate
        // straight away.
        let other_client = NodeId::Client(ClientId(22));
        let mut ctx3 = ctx_at(NodeId::Replica(r.id()), 3);
        r.handle_st1(&mut ctx3, other_client, signed_st1(&tx, true));
        match &sent_to(&ctx3, other_client)[0] {
            BasilMsg::Writeback(wb) => {
                assert_eq!(wb.cert.txid(), tx.id());
                assert!(wb.cert.decision().is_commit());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deferred_vote_released_by_dependency_commit() {
        let mut r = replica(0);
        // T1 writes x (prepared only).
        let t1 = write_tx(1_000_000, "x", 5);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&t1, false));

        // T2 reads T1's prepared write and declares the dependency.
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(2_000_000, ClientId(3)));
        b.record_dependent_read(Key::new("x"), t1.timestamp(), t1.id());
        b.record_write(Key::new("y"), Value::from_u64(6));
        let t2 = b.build_shared();
        let dependent_client = NodeId::Client(ClientId(3));
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_st1(&mut ctx2, dependent_client, signed_st1(&t2, false));
        assert!(sent_to(&ctx2, dependent_client).is_empty(), "vote deferred");
        assert_eq!(r.stats().st1_deferred, 1);

        // Committing T1 releases T2's vote.
        let mut ctx3 = ctx_at(NodeId::Replica(r.id()), 3);
        r.handle_writeback(
            &mut ctx3,
            Writeback {
                cert: fast_commit_cert(&t1),
                tx: Some(t1.clone()),
            },
        );
        let releases = sent_to(&ctx3, dependent_client);
        assert_eq!(releases.len(), 1);
        match &releases[0] {
            BasilMsg::St1Reply(reply) => {
                assert_eq!(reply.body.txid, t2.id());
                assert_eq!(reply.body.vote, ProtoVote::Commit);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn shard_votes_commit_tally(tx: &Transaction, count: u32) -> Vec<ShardVotes> {
        let votes: Vec<SignedSt1Reply> = (0..count)
            .map(|i| {
                let rid = ReplicaId::new(ShardId(0), i);
                let body = St1ReplyBody {
                    txid: tx.id(),
                    replica: rid,
                    vote: ProtoVote::Commit,
                };
                let mut engine = SigEngine::new(NodeId::Replica(rid), registry(), &cfg());
                let (proof, _) = engine.sign(&body.signed_bytes());
                SignedSt1Reply {
                    body,
                    proof,
                    conflict: None,
                }
            })
            .collect();
        vec![ShardVotes {
            txid: tx.id(),
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            votes,
            conflict: None,
        }]
    }

    fn signed_st2(tx: &Transaction, decision: ProtoDecision, tally: Vec<ShardVotes>) -> St2 {
        let mut engine = client_engine();
        let st2 = St2 {
            txid: tx.id(),
            decision,
            shard_votes: tally,
            view: 0,
            auth: None,
        };
        let (proof, _) = engine.sign(&st2.signed_bytes());
        St2 { auth: proof, ..st2 }
    }

    #[test]
    fn st2_logs_justified_decision_and_replies() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 5);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));

        let st2 = signed_st2(&tx, ProtoDecision::Commit, shard_votes_commit_tally(&tx, 4));
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_st2(&mut ctx2, client_node(), st2);
        match &sent_to(&ctx2, client_node())[0] {
            BasilMsg::St2Reply(reply) => {
                assert_eq!(reply.body.decision, ProtoDecision::Commit);
                assert_eq!(reply.body.view_decision, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats().st2_logged, 1);
    }

    #[test]
    fn st2_with_insufficient_justification_is_ignored() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 5);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));

        // Only 2 commit votes: not a commit quorum.
        let st2 = signed_st2(&tx, ProtoDecision::Commit, shard_votes_commit_tally(&tx, 2));
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_st2(&mut ctx2, client_node(), st2);
        assert!(sent_to(&ctx2, client_node()).is_empty());
        assert_eq!(r.stats().st2_logged, 0);
    }

    #[test]
    fn logged_decision_is_sticky_under_equivocation() {
        let mut r = replica(0);
        let tx = write_tx(1_000_000, "x", 5);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));

        let commit = signed_st2(&tx, ProtoDecision::Commit, shard_votes_commit_tally(&tx, 4));
        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_st2(&mut ctx2, client_node(), commit);

        // A conflicting abort ST2 (equivocation) does not change the log;
        // the replica answers with the decision it already logged.
        let abort_votes: Vec<SignedSt1Reply> = (0..2)
            .map(|i| {
                let rid = ReplicaId::new(ShardId(0), i);
                let body = St1ReplyBody {
                    txid: tx.id(),
                    replica: rid,
                    vote: ProtoVote::Abort,
                };
                let mut engine = SigEngine::new(NodeId::Replica(rid), registry(), &cfg());
                let (proof, _) = engine.sign(&body.signed_bytes());
                SignedSt1Reply {
                    body,
                    proof,
                    conflict: None,
                }
            })
            .collect();
        let abort_tally = vec![ShardVotes {
            txid: tx.id(),
            shard: ShardId(0),
            decision: ProtoDecision::Abort,
            votes: abort_votes,
            conflict: None,
        }];
        let abort = signed_st2(&tx, ProtoDecision::Abort, abort_tally);
        let mut ctx3 = ctx_at(NodeId::Replica(r.id()), 3);
        r.handle_st2(&mut ctx3, client_node(), abort);
        match &sent_to(&ctx3, client_node())[0] {
            BasilMsg::St2Reply(reply) => assert_eq!(reply.body.decision, ProtoDecision::Commit),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.stats().st2_logged, 1);
    }

    #[test]
    fn batching_delays_replies_until_full() {
        let mut cfg2 = cfg();
        cfg2.system.batch_size = 3;
        let mut r = BasilReplica::<MvtsoStore>::new(
            ReplicaId::new(ShardId(0), 0),
            cfg2,
            registry(),
            ReplicaBehavior::Correct,
            [(Key::new("x"), Value::from_u64(0))],
        );
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_read(&mut ctx, client_node(), signed_read(1, "x", 1_000_000));
        assert!(
            sent_to(&ctx, client_node()).is_empty(),
            "batch not full yet"
        );
        // The batch flush timer was armed.
        assert!(ctx
            .outputs()
            .iter()
            .any(|o| matches!(o, basil_simnet::actor::Output::Timer { .. })));

        let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
        r.handle_read(&mut ctx2, client_node(), signed_read(2, "x", 1_000_000));
        assert!(sent_to(&ctx2, client_node()).is_empty());
        let mut ctx3 = ctx_at(NodeId::Replica(r.id()), 3);
        r.handle_read(&mut ctx3, client_node(), signed_read(3, "x", 1_000_000));
        let replies = sent_to(&ctx3, client_node());
        assert_eq!(replies.len(), 3, "full batch flushed at once");
        assert_eq!(r.stats().batches_signed, 1);

        // All replies in the batch share the same root signature.
        let roots: HashSet<_> = replies
            .iter()
            .map(|m| match m {
                BasilMsg::ReadReply(rr) => rr.proof.as_ref().expect("signed").root,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn batch_flush_timer_flushes_partial_batch() {
        let mut cfg2 = cfg();
        cfg2.system.batch_size = 8;
        let mut r = BasilReplica::<MvtsoStore>::new(
            ReplicaId::new(ShardId(0), 0),
            cfg2,
            registry(),
            ReplicaBehavior::Correct,
            [(Key::new("x"), Value::from_u64(0))],
        );
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.handle_read(&mut ctx, client_node(), signed_read(1, "x", 1_000_000));
        assert!(sent_to(&ctx, client_node()).is_empty());
        let mut timer_ctx = ctx_at(NodeId::Replica(r.id()), 2);
        r.on_message(
            &mut timer_ctx,
            NodeId::Replica(r.id()),
            BasilMsg::ReplicaTimer(ReplicaTimer::BatchFlush),
        );
        assert_eq!(sent_to(&timer_ctx, client_node()).len(), 1);
    }

    #[test]
    fn silent_replica_ignores_everything() {
        let mut r = replica(0);
        r.set_behavior(ReplicaBehavior::Silent);
        let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
        r.on_message(
            &mut ctx,
            client_node(),
            BasilMsg::Read(signed_read(1, "x", 1_000_000)),
        );
        assert!(ctx.outputs().is_empty());
    }

    #[test]
    fn fallback_election_and_decision_adoption() {
        // Replica 0..5; exercise InvokeFB -> ElectFB -> DecFB across
        // hand-driven replicas.
        let tx = write_tx(1_000_000, "x", 5);
        let txid = tx.id();
        let n = 6u32;
        let mut replicas: Vec<BasilReplica> = (0..n).map(replica).collect();
        let client = client_node();

        // Every replica prepares the transaction and logs an ST2 decision;
        // replicas 0-2 log Commit, replicas 3-5 log Abort (the result of an
        // equivocating client). Use the relax hook to skip tally checks for
        // the abort half (simulating the forced-equivocation experiment).
        for (i, r) in replicas.iter_mut().enumerate() {
            let mut ctx = ctx_at(NodeId::Replica(r.id()), 1);
            r.handle_st1(&mut ctx, client, signed_st1(&tx, false));
            r.cfg.relax_st2_validation = true;
            let decision = if i < 3 {
                ProtoDecision::Commit
            } else {
                ProtoDecision::Abort
            };
            let st2 = signed_st2(&tx, decision, shard_votes_commit_tally(&tx, 4));
            let mut ctx2 = ctx_at(NodeId::Replica(r.id()), 2);
            r.handle_st2(&mut ctx2, client, st2);
        }

        // The recovering client invokes the fallback with the replicas'
        // signed current views (all view 0, so no proof is needed to move to
        // view 1).
        let ifb = {
            let mut engine = client_engine();
            let ifb = InvokeFb {
                txid,
                views: vec![],
                auth: None,
            };
            let (proof, _) = engine.sign(&ifb.signed_bytes());
            InvokeFb { auth: proof, ..ifb }
        };

        // Deliver InvokeFB to all replicas and collect their ElectFB
        // messages.
        let mut elect_msgs: Vec<(NodeId, SignedElectFb)> = Vec::new();
        for r in replicas.iter_mut() {
            let mut ctx = ctx_at(NodeId::Replica(r.id()), 3);
            r.handle_invoke_fb(&mut ctx, client, ifb.clone());
            for out in ctx.outputs() {
                if let basil_simnet::actor::Output::Send {
                    to,
                    msg: BasilMsg::ElectFb(e),
                } = out
                {
                    elect_msgs.push((*to, e.clone()));
                }
            }
        }
        assert_eq!(elect_msgs.len(), 6, "every replica nominates a leader");
        let leader_index = fallback_leader_index(1, txid, n);
        assert!(elect_msgs
            .iter()
            .all(|(to, _)| *to == NodeId::Replica(ReplicaId::new(ShardId(0), leader_index))));

        // Deliver the ElectFB messages to the leader; it should emit DecFB
        // with the majority decision (Commit: 3 vs 3 ties to commit, but with
        // commits >= aborts the rule picks Commit).
        let mut dec_msgs: Vec<DecFb> = Vec::new();
        {
            let leader = &mut replicas[leader_index as usize];
            for (_, e) in &elect_msgs {
                let mut ctx = ctx_at(NodeId::Replica(leader.id()), 4);
                leader.handle_elect_fb(&mut ctx, e.clone());
                for out in ctx.outputs() {
                    if let basil_simnet::actor::Output::Send {
                        msg: BasilMsg::DecFb(d),
                        ..
                    } = out
                    {
                        dec_msgs.push(d.clone());
                    }
                }
            }
        }
        assert!(
            !dec_msgs.is_empty(),
            "leader proposes a reconciled decision"
        );
        let dec = dec_msgs[0].clone();
        assert_eq!(dec.view, 1);

        // Replicas adopt the decision and answer interested clients with
        // matching ST2R messages.
        let mut st2r_decisions = Vec::new();
        for r in replicas.iter_mut() {
            let mut ctx = ctx_at(NodeId::Replica(r.id()), 5);
            r.handle_dec_fb(&mut ctx, dec.clone());
            for msg in sent_to(&ctx, client) {
                if let BasilMsg::St2Reply(s) = msg {
                    st2r_decisions.push((s.body.decision, s.body.view_decision));
                }
            }
        }
        assert!(st2r_decisions.len() >= 5);
        assert!(st2r_decisions
            .iter()
            .all(|(d, v)| *d == dec.decision && *v == 1));
    }

    /// The recovery replay buffer honors `catch_up_buffer_bound`: the first
    /// `bound` held-back messages queue, the overflow is shed (counted, not
    /// stored), and ending catch-up replays exactly the bounded prefix.
    #[test]
    fn catch_up_buffer_bound_sheds_overflow() {
        let id = ReplicaId::new(ShardId(0), 0);
        let mut r = BasilReplica::<MvtsoStore>::recover(
            id,
            cfg().with_catch_up_buffer_bound(2),
            registry(),
            ReplicaBehavior::Correct,
            [(Key::new("x"), Value::from_u64(0))],
            Vec::new(),
        );
        assert!(r.is_recovering(), "peers exist, so catch-up is armed");

        // Five held-back messages arrive while catch-up is in flight.
        for i in 0..5u64 {
            let tx = write_tx(1_000_000 * (i + 1), "x", i);
            let mut ctx = ctx_at(NodeId::Replica(id), 1);
            r.on_message(
                &mut ctx,
                client_node(),
                BasilMsg::St1(signed_st1(&tx, false)),
            );
            assert!(
                sent_to(&ctx, client_node()).is_empty(),
                "nothing is served mid-recovery"
            );
        }
        assert_eq!(r.stats().catch_up_buffered, 2, "bound respected");
        assert_eq!(r.stats().catch_up_shed, 3, "overflow shed, not stored");

        // The deadline ends catch-up; only the buffered prefix replays.
        let mut ctx = ctx_at(NodeId::Replica(id), 2);
        r.on_message(
            &mut ctx,
            NodeId::Replica(id),
            BasilMsg::ReplicaTimer(ReplicaTimer::CatchUpDeadline),
        );
        assert!(!r.is_recovering());
        let replies = sent_to(&ctx, client_node())
            .into_iter()
            .filter(|m| matches!(m, BasilMsg::St1Reply(_)))
            .count();
        assert_eq!(replies, 2, "exactly the two buffered ST1s were replayed");
    }

    /// Property: across seeded random workloads, a replica that crashes
    /// with amnesia at an arbitrary point and rebuilds from its WAL ends
    /// the run with exactly the prepare/commit decisions — and the same
    /// committed versions — as an identical replica that never crashed.
    #[test]
    fn amnesia_replay_matches_the_never_crashed_oracle() {
        let keys = ["x", "y", "a", "b"];
        for seed in 0..12u64 {
            // Tiny deterministic LCG so the workload and the crash point
            // derive from the seed alone.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move |bound: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % bound
            };

            let initial: Vec<(Key, Value)> = keys
                .iter()
                .map(|k| (Key::new(k), Value::from_u64(0)))
                .collect();
            let id = ReplicaId::new(ShardId(0), 0);
            let mut oracle = BasilReplica::<MvtsoStore>::new(
                id,
                cfg(),
                registry(),
                ReplicaBehavior::Correct,
                initial.clone(),
            );
            let mut subject = BasilReplica::<MvtsoStore>::new(
                id,
                cfg(),
                registry(),
                ReplicaBehavior::Correct,
                initial.clone(),
            );

            let total = 24u64;
            let crash_at = 4 + next(total - 8);
            let mut txs = Vec::new();
            for i in 0..total {
                let ts = 1_000_000 * (i + 1) + next(500_000);
                let key = keys[next(keys.len() as u64) as usize];
                let tx = write_tx(ts, key, next(1_000));
                let deliver_writeback = next(10) < 7;
                for r in [&mut oracle, &mut subject] {
                    let mut ctx = ctx_at(NodeId::Replica(id), i + 1);
                    r.handle_st1(&mut ctx, client_node(), signed_st1(&tx, false));
                    if deliver_writeback {
                        let cert = fast_commit_cert(&tx);
                        r.handle_writeback(
                            &mut ctx,
                            Writeback {
                                cert,
                                tx: Some(Arc::clone(&tx)),
                            },
                        );
                    }
                }
                txs.push(tx);

                if i + 1 == crash_at {
                    // Amnesia: only the WAL image survives. Rebuild and end
                    // the catch-up phase (no peers answer in this unit
                    // harness — the deadline fires instead).
                    let wal = subject.take_wal_bytes();
                    subject = BasilReplica::<MvtsoStore>::recover(
                        id,
                        cfg(),
                        registry(),
                        ReplicaBehavior::Correct,
                        initial.clone(),
                        wal,
                    );
                    assert!(subject.is_recovering(), "seed {seed}: catch-up armed");
                    let mut ctx = ctx_at(NodeId::Replica(id), i + 1);
                    subject.on_message(
                        &mut ctx,
                        NodeId::Replica(id),
                        BasilMsg::ReplicaTimer(ReplicaTimer::CatchUpDeadline),
                    );
                    assert!(!subject.is_recovering(), "seed {seed}: catch-up over");
                }
            }

            for tx in &txs {
                assert_eq!(
                    oracle.store().decision(&tx.id()),
                    subject.store().decision(&tx.id()),
                    "seed {seed}: decision for {:?} diverged after replay",
                    tx.id()
                );
            }
            for k in keys {
                assert_eq!(
                    oracle.store().latest_committed(&Key::new(k)),
                    subject.store().latest_committed(&Key::new(k)),
                    "seed {seed}: committed state for {k} diverged after replay"
                );
            }
        }
    }
}
