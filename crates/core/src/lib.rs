//! # basil-core
//!
//! The Basil protocol: a leaderless, transactional, Byzantine fault-tolerant
//! key-value store (Suri-Payer et al., SOSP 2021).
//!
//! The crate implements both protocol roles as sans-io state machines that
//! plug into the `basil-simnet` cluster simulator:
//!
//! * [`client::BasilClient`] drives transactions through the three phases of
//!   Figure 1 — Execution (versioned reads against `f+1`-sized quorums, local
//!   write buffering), Prepare (stage ST1 vote collection and, on the slow
//!   path, stage ST2 decision logging on a single shard), and an asynchronous
//!   Writeback — and runs the per-transaction fallback of Section 5 to finish
//!   transactions stalled by other (possibly Byzantine) clients.
//! * [`replica::BasilReplica`] serves reads from the multiversioned store,
//!   runs the MVTSO concurrency-control check (Algorithm 1) for ST1 requests,
//!   logs ST2 decisions, applies writebacks, batches and signs its replies
//!   (Section 4.4), and participates in fallback leader election.
//!
//! Supporting modules: [`messages`] (the wire protocol), [`certs`]
//! (vote/commit/abort certificates and their validation), [`quorum`] (vote
//! tally classification for the fast and slow paths), [`views`] (the
//! per-transaction view-change rules R1/R2 with vote subsumption),
//! [`crypto_engine`] (signing/verification with CPU-cost accounting), and
//! [`byzantine`] (the client and replica misbehaviour strategies evaluated in
//! Section 6.4).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod byzantine;
pub mod certs;
pub mod client;
pub mod config;
pub mod crypto_engine;
pub mod messages;
pub mod quorum;
pub mod replica;
pub mod views;

pub use byzantine::{ClientStrategy, ReplicaBehavior};
pub use certs::{AbortCert, CommitCert, DecisionCert, VoteCert};
pub use client::{BasilClient, ClientStats};
pub use config::BasilConfig;
pub use messages::{BasilMsg, ProtoDecision, ProtoVote};
pub use replica::BasilReplica;
