//! Byzantine behaviour strategies for clients and replicas.
//!
//! Section 6.4 of the paper evaluates Basil under client misbehaviour. A
//! Byzantine client's best strategy is to follow the workload's access
//! distribution, use plausible timestamps, and then either withhold progress
//! (stall) or equivocate its ST2 decision. Replica misbehaviour (refusing to
//! vote, voting abort, staying silent on reads) is used in the read-quorum
//! and fast-path experiments and in the robustness tests.

use rand_like::SmallPrng;

/// Strategy a client applies to the transactions it marks as faulty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientStrategy {
    /// Follow the protocol.
    Correct,
    /// Send `ST1` and then stop: never aggregate votes, never log, never
    /// write back (`stall-early`).
    StallEarly,
    /// Drive the transaction to a decision (including ST2 when needed) but
    /// never send the writeback certificates (`stall-late`).
    StallLate,
    /// Equivocate the ST2 decision whenever the collected votes allow both a
    /// commit and an abort tally, then stall (`equiv-real`). When the votes
    /// do not allow it, behave like `StallLate`.
    EquivReal,
    /// Always equivocate the ST2 decision, regardless of the votes received
    /// (`equiv-forced`); requires the experiment hook that relaxes ST2
    /// justification checking at replicas.
    EquivForced,
}

impl ClientStrategy {
    /// Whether this strategy ever equivocates.
    pub fn equivocates(&self) -> bool {
        matches!(self, ClientStrategy::EquivReal | ClientStrategy::EquivForced)
    }

    /// Whether the strategy is the honest one.
    pub fn is_correct(&self) -> bool {
        matches!(self, ClientStrategy::Correct)
    }
}

/// Behaviour of a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaBehavior {
    /// Follow the protocol.
    Correct,
    /// Never answer `ST1` prepares (forces the slow path / recovery).
    WithholdVotes,
    /// Vote abort on every transaction (disables the fast commit path).
    AlwaysVoteAbort,
    /// Ignore read requests (forces clients to rely on the other replicas of
    /// the read quorum).
    IgnoreReads,
    /// Crash-stop: ignore every message.
    Silent,
}

impl ReplicaBehavior {
    /// Whether the replica follows the protocol.
    pub fn is_correct(&self) -> bool {
        matches!(self, ReplicaBehavior::Correct)
    }
}

/// Per-client fault injection: which strategy to use and what fraction of the
/// client's newly admitted transactions are faulty.
#[derive(Clone, Copy, Debug)]
pub struct FaultProfile {
    /// Strategy applied to faulty transactions.
    pub strategy: ClientStrategy,
    /// Probability in `[0, 1]` that a newly admitted transaction is faulty.
    pub faulty_fraction: f64,
}

impl FaultProfile {
    /// A fully honest client.
    pub fn honest() -> Self {
        FaultProfile {
            strategy: ClientStrategy::Correct,
            faulty_fraction: 0.0,
        }
    }

    /// A client applying `strategy` to every transaction.
    pub fn always(strategy: ClientStrategy) -> Self {
        FaultProfile {
            strategy,
            faulty_fraction: 1.0,
        }
    }

    /// Samples whether the next transaction is faulty.
    pub fn sample_faulty(&self, prng: &mut SmallPrng) -> bool {
        !self.strategy.is_correct()
            && self.faulty_fraction > 0.0
            && prng.next_f64() < self.faulty_fraction
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::honest()
    }
}

/// A tiny deterministic PRNG (xorshift64*), kept local so the protocol crate
/// does not need a `rand` dependency and Byzantine sampling stays
/// reproducible under a fixed seed.
pub mod rand_like {
    /// A deterministic 64-bit PRNG.
    #[derive(Clone, Debug)]
    pub struct SmallPrng {
        state: u64,
    }

    impl SmallPrng {
        /// Creates a PRNG from a seed (zero is remapped to a fixed constant).
        pub fn new(seed: u64) -> Self {
            SmallPrng {
                state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_like::SmallPrng;
    use super::*;

    #[test]
    fn strategy_classification() {
        assert!(ClientStrategy::Correct.is_correct());
        assert!(!ClientStrategy::StallEarly.is_correct());
        assert!(ClientStrategy::EquivReal.equivocates());
        assert!(ClientStrategy::EquivForced.equivocates());
        assert!(!ClientStrategy::StallLate.equivocates());
        assert!(ReplicaBehavior::Correct.is_correct());
        assert!(!ReplicaBehavior::Silent.is_correct());
    }

    #[test]
    fn honest_profile_never_faulty() {
        let mut prng = SmallPrng::new(1);
        let p = FaultProfile::honest();
        assert!((0..1000).all(|_| !p.sample_faulty(&mut prng)));
    }

    #[test]
    fn fault_fraction_is_roughly_respected() {
        let mut prng = SmallPrng::new(7);
        let p = FaultProfile {
            strategy: ClientStrategy::StallEarly,
            faulty_fraction: 0.3,
        };
        let faulty = (0..10_000).filter(|_| p.sample_faulty(&mut prng)).count();
        assert!((2_500..3_500).contains(&faulty), "faulty={faulty}");
    }

    #[test]
    fn always_profile_is_always_faulty() {
        let mut prng = SmallPrng::new(3);
        let p = FaultProfile::always(ClientStrategy::StallLate);
        assert!((0..100).all(|_| p.sample_faulty(&mut prng)));
    }

    #[test]
    fn prng_is_deterministic_and_bounded() {
        let mut a = SmallPrng::new(42);
        let mut b = SmallPrng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallPrng::new(9);
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.next_below(7) < 7);
        }
    }
}
