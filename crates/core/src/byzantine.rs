//! Byzantine behaviour strategies for clients and replicas.
//!
//! Section 6.4 of the paper evaluates Basil under client misbehaviour. A
//! Byzantine client's best strategy is to follow the workload's access
//! distribution, use plausible timestamps, and then either withhold progress
//! (stall) or equivocate its ST2 decision. Replica misbehaviour (refusing to
//! vote, voting abort, staying silent on reads) is used in the read-quorum
//! and fast-path experiments and in the robustness tests.

use basil_common::prng::SmallPrng;

/// Strategy a client applies to the transactions it marks as faulty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientStrategy {
    /// Follow the protocol.
    Correct,
    /// Send `ST1` and then stop: never aggregate votes, never log, never
    /// write back (`stall-early`).
    StallEarly,
    /// Drive the transaction to a decision (including ST2 when needed) but
    /// never send the writeback certificates (`stall-late`).
    StallLate,
    /// Equivocate the ST2 decision whenever the collected votes allow both a
    /// commit and an abort tally, then stall (`equiv-real`). When the votes
    /// do not allow it, behave like `StallLate`.
    EquivReal,
    /// Always equivocate the ST2 decision, regardless of the votes received
    /// (`equiv-forced`); requires the experiment hook that relaxes ST2
    /// justification checking at replicas.
    EquivForced,
}

impl ClientStrategy {
    /// Whether this strategy ever equivocates.
    pub fn equivocates(&self) -> bool {
        matches!(
            self,
            ClientStrategy::EquivReal | ClientStrategy::EquivForced
        )
    }

    /// Whether the strategy is the honest one.
    pub fn is_correct(&self) -> bool {
        matches!(self, ClientStrategy::Correct)
    }

    /// All strategies, in a stable order (used by sweeps and the scenario
    /// fuzzer to enumerate the space).
    pub const ALL: [ClientStrategy; 5] = [
        ClientStrategy::Correct,
        ClientStrategy::StallEarly,
        ClientStrategy::StallLate,
        ClientStrategy::EquivReal,
        ClientStrategy::EquivForced,
    ];

    /// The stable textual name of this strategy, as used by bench labels and
    /// scenario specs (`correct`, `stall-early`, `stall-late`, `equiv-real`,
    /// `equiv-forced`). Round-trips through [`std::str::FromStr`].
    pub fn name(&self) -> &'static str {
        match self {
            ClientStrategy::Correct => "correct",
            ClientStrategy::StallEarly => "stall-early",
            ClientStrategy::StallLate => "stall-late",
            ClientStrategy::EquivReal => "equiv-real",
            ClientStrategy::EquivForced => "equiv-forced",
        }
    }
}

impl std::fmt::Display for ClientStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ClientStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ClientStrategy::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or_else(|| format!("unknown client strategy `{s}`"))
    }
}

/// Behaviour of a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaBehavior {
    /// Follow the protocol.
    Correct,
    /// Never answer `ST1` prepares (forces the slow path / recovery).
    WithholdVotes,
    /// Vote abort on every transaction (disables the fast commit path).
    AlwaysVoteAbort,
    /// Ignore read requests (forces clients to rely on the other replicas of
    /// the read quorum).
    IgnoreReads,
    /// Crash-stop: ignore every message.
    Silent,
}

impl ReplicaBehavior {
    /// Whether the replica follows the protocol.
    pub fn is_correct(&self) -> bool {
        matches!(self, ReplicaBehavior::Correct)
    }

    /// All behaviours, in a stable order (used by sweeps and the scenario
    /// fuzzer to enumerate the space).
    pub const ALL: [ReplicaBehavior; 5] = [
        ReplicaBehavior::Correct,
        ReplicaBehavior::WithholdVotes,
        ReplicaBehavior::AlwaysVoteAbort,
        ReplicaBehavior::IgnoreReads,
        ReplicaBehavior::Silent,
    ];

    /// The stable textual name of this behaviour, as used by scenario specs
    /// (`correct`, `withhold-votes`, `vote-abort`, `ignore-reads`,
    /// `silent`). Round-trips through [`std::str::FromStr`].
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaBehavior::Correct => "correct",
            ReplicaBehavior::WithholdVotes => "withhold-votes",
            ReplicaBehavior::AlwaysVoteAbort => "vote-abort",
            ReplicaBehavior::IgnoreReads => "ignore-reads",
            ReplicaBehavior::Silent => "silent",
        }
    }
}

impl std::fmt::Display for ReplicaBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ReplicaBehavior {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ReplicaBehavior::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or_else(|| format!("unknown replica behavior `{s}`"))
    }
}

/// Per-client fault injection: which strategy to use and what fraction of the
/// client's newly admitted transactions are faulty.
#[derive(Clone, Copy, Debug)]
pub struct FaultProfile {
    /// Strategy applied to faulty transactions.
    pub strategy: ClientStrategy,
    /// Probability in `[0, 1]` that a newly admitted transaction is faulty.
    pub faulty_fraction: f64,
}

impl FaultProfile {
    /// A fully honest client.
    pub fn honest() -> Self {
        FaultProfile {
            strategy: ClientStrategy::Correct,
            faulty_fraction: 0.0,
        }
    }

    /// A client applying `strategy` to every transaction.
    pub fn always(strategy: ClientStrategy) -> Self {
        FaultProfile {
            strategy,
            faulty_fraction: 1.0,
        }
    }

    /// Samples whether the next transaction is faulty.
    pub fn sample_faulty(&self, prng: &mut SmallPrng) -> bool {
        !self.strategy.is_correct()
            && self.faulty_fraction > 0.0
            && prng.next_f64() < self.faulty_fraction
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::honest()
    }
}

/// Compatibility re-export: the deterministic PRNG now lives in
/// [`basil_common::prng`] so every crate can share it without a `rand`
/// dependency.
pub use basil_common::prng as rand_like;

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::prng::SmallPrng;

    #[test]
    fn strategy_classification() {
        assert!(ClientStrategy::Correct.is_correct());
        assert!(!ClientStrategy::StallEarly.is_correct());
        assert!(ClientStrategy::EquivReal.equivocates());
        assert!(ClientStrategy::EquivForced.equivocates());
        assert!(!ClientStrategy::StallLate.equivocates());
        assert!(ReplicaBehavior::Correct.is_correct());
        assert!(!ReplicaBehavior::Silent.is_correct());
    }

    #[test]
    fn names_round_trip() {
        for s in ClientStrategy::ALL {
            assert_eq!(s.name().parse::<ClientStrategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.name());
        }
        for b in ReplicaBehavior::ALL {
            assert_eq!(b.name().parse::<ReplicaBehavior>().unwrap(), b);
            assert_eq!(format!("{b}"), b.name());
        }
        assert!("equivreal".parse::<ClientStrategy>().is_err());
        assert!("".parse::<ReplicaBehavior>().is_err());
    }

    #[test]
    fn honest_profile_never_faulty() {
        let mut prng = SmallPrng::new(1);
        let p = FaultProfile::honest();
        assert!((0..1000).all(|_| !p.sample_faulty(&mut prng)));
    }

    #[test]
    fn fault_fraction_is_roughly_respected() {
        let mut prng = SmallPrng::new(7);
        let p = FaultProfile {
            strategy: ClientStrategy::StallEarly,
            faulty_fraction: 0.3,
        };
        let faulty = (0..10_000).filter(|_| p.sample_faulty(&mut prng)).count();
        assert!((2_500..3_500).contains(&faulty), "faulty={faulty}");
    }

    #[test]
    fn always_profile_is_always_faulty() {
        let mut prng = SmallPrng::new(3);
        let p = FaultProfile::always(ClientStrategy::StallLate);
        assert!((0..100).all(|_| p.sample_faulty(&mut prng)));
    }

    #[test]
    fn rand_like_reexport_still_resolves() {
        // Downstream code historically imported the PRNG through
        // `basil_core::byzantine::rand_like`; the re-export must keep
        // working after the hoist into `basil_common::prng`.
        let mut prng = super::rand_like::SmallPrng::new(42);
        assert_eq!(prng.next_u64(), SmallPrng::new(42).next_u64());
    }
}
