//! Per-transaction view management for the fallback protocol (Section 5).
//!
//! Each transaction has its own sequence of views; view 0 belongs to the
//! original client, higher views to fallback leaders chosen round-robin among
//! the logging shard's replicas. Replicas advance their current view for a
//! transaction using two rules driven by the set of (signed) current views a
//! client includes in `InvokeFB`:
//!
//! * **R1**: a view `v` reported by at least `3f + 1` replicas lets the
//!   replica adopt `max(v + 1, current)`.
//! * **R2**: otherwise, the replica adopts the largest view larger than its
//!   own that is reported by at least `f + 1` replicas.
//!
//! Counting uses *vote subsumption*: a reported view `v` counts as a vote for
//! every `v' <= v`.

use crate::messages::View;
use basil_common::{ShardConfig, TxId};

/// Applies rules R1/R2 with vote subsumption and returns the new current
/// view for a replica whose current view is `current`.
pub fn next_view(current: View, reported: &[View], cfg: &ShardConfig) -> View {
    // With subsumption, the number of votes for view v is the number of
    // reported views >= v.
    let votes_for = |v: View| reported.iter().filter(|r| **r >= v).count() as u32;

    // R1: find the largest view v with >= 3f + 1 (subsuming) votes; adopting
    // v + 1 is justified.
    let mut best = current;
    let mut candidates: Vec<View> = reported.to_vec();
    candidates.sort_unstable();
    candidates.dedup();
    for &v in candidates.iter().rev() {
        if votes_for(v) >= cfg.view_r1_quorum() {
            best = best.max(v + 1);
            break;
        }
    }
    // R2: the largest view greater than the current one reported by at least
    // f + 1 replicas.
    for &v in candidates.iter().rev() {
        if v > best && votes_for(v) >= cfg.view_r2_quorum() {
            best = v;
            break;
        }
    }
    best
}

/// The replica index acting as fallback leader for `view` of transaction
/// `txid` within a shard of `n` replicas (round-robin, offset by the
/// transaction id as in Section 5, step 2).
pub fn fallback_leader_index(view: View, txid: TxId, n: u32) -> u32 {
    ((view + txid.as_u64()) % n as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ShardConfig {
        ShardConfig::new(1) // n=6, R1 quorum 4, R2 quorum 2
    }

    #[test]
    fn r1_advances_past_a_widely_reported_view() {
        // 4 replicas report view 0 -> adopt view 1.
        assert_eq!(next_view(0, &[0, 0, 0, 0, 0], &cfg()), 1);
        // 4 replicas report view 2 (subsume 0 and 1) -> adopt 3.
        assert_eq!(next_view(0, &[2, 2, 2, 2], &cfg()), 3);
    }

    #[test]
    fn r2_catches_up_to_a_plausible_higher_view() {
        // Only 2 replicas report view 3: not enough for R1, enough for R2.
        assert_eq!(next_view(0, &[3, 3, 0, 0], &cfg()), 3);
        // A single report of view 9 is ignored (could be Byzantine).
        assert_eq!(next_view(0, &[9, 0, 0, 0], &cfg()), 1);
    }

    #[test]
    fn subsumption_counts_higher_views_for_lower_ones() {
        // Reports: 2, 2, 1, 1 -> view 1 has 4 subsuming votes (R1) -> adopt 2;
        // then R2 lets the replica ride up to 2 only (already there).
        assert_eq!(next_view(0, &[2, 2, 1, 1], &cfg()), 2);
    }

    #[test]
    fn never_moves_backwards() {
        assert_eq!(next_view(5, &[0, 0, 0, 0], &cfg()), 5);
        assert_eq!(next_view(5, &[4, 4, 4, 4], &cfg()), 5);
        assert_eq!(next_view(5, &[6, 6], &cfg()), 6);
    }

    #[test]
    fn empty_reports_keep_current_view() {
        assert_eq!(next_view(2, &[], &cfg()), 2);
    }

    #[test]
    fn r1_and_r2_combine() {
        // 4 reports of view 1 (R1 -> 2), plus 2 reports of view 4 (R2 -> 4).
        assert_eq!(next_view(0, &[1, 1, 1, 1, 4, 4], &cfg()), 4);
    }

    #[test]
    fn leader_rotates_with_view_and_transaction() {
        let t1 = TxId::from_bytes([0; 32]);
        let n = 6;
        let l0 = fallback_leader_index(1, t1, n);
        let l1 = fallback_leader_index(2, t1, n);
        assert_ne!(l0, l1);
        assert_eq!((l0 + 1) % n, l1);
        // Different transactions map to different leaders for the same view.
        let mut bytes = [0u8; 32];
        bytes[7] = 3;
        let t2 = TxId::from_bytes(bytes);
        assert_ne!(
            fallback_leader_index(1, t1, n),
            fallback_leader_index(1, t2, n)
        );
        // Every view has a leader within range.
        for v in 0..20 {
            assert!(fallback_leader_index(v, t2, n) < n);
        }
    }
}
