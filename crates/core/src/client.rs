//! The Basil client.
//!
//! Clients drive their own transactions (Figure 1): they execute reads
//! against read quorums while buffering writes locally, run the two-stage
//! prepare phase (ST1 vote aggregation, and ST2 decision logging when some
//! shard took the slow path), notify the application as soon as the decision
//! is durable, and asynchronously write back the decision certificate. When
//! a transaction stalls on a dependency left behind by another (possibly
//! Byzantine) client, the client runs the per-transaction fallback of
//! Section 5 to finish that dependency itself.
//!
//! The client is a closed-loop driver: it asks its [`TxGenerator`] for the
//! next transaction as soon as the previous one finishes, and retries aborted
//! transactions with exponential backoff (the paper's evaluation
//! methodology). Byzantine client strategies (§6.4) are implemented here as
//! deviations at well-defined points of the normal flow.

use crate::byzantine::{ClientStrategy, FaultProfile};
use crate::certs::{
    validate_decision_cert, AbortCert, CommitCert, DecisionCert, ShardVotes, VoteCert,
};
use crate::config::BasilConfig;
use crate::crypto_engine::SigEngine;
use crate::messages::{
    BasilMsg, ClientTimer, InvokeFb, ProtoDecision, ProtoVote, ReadReply, ReadRequest,
    SignedSt1Reply, SignedSt2Reply, St1, St2, Writeback,
};
use crate::quorum::{
    combine_outcomes, PrepareOutcome, ShardOutcome, ShardTally, St2Outcome, St2Tally,
};
use basil_common::prng::SmallPrng;
use basil_common::FastHashMap;
use basil_common::{
    ClientId, Duration, Key, LatencyHistogram, NodeId, Op, ReplicaId, ShardId, SimTime, Timestamp,
    TxGenerator, TxId, TxProfile, Value,
};
use basil_simnet::{Actor, Context};
use basil_store::{Transaction, TransactionBuilder};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Statistics collected by one client, aggregated by the harness.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Transactions that committed (correct transactions only).
    pub committed: u64,
    /// Attempts that ended in an abort and were retried.
    pub aborted_attempts: u64,
    /// Transactions issued under a Byzantine strategy.
    pub faulty_issued: u64,
    /// Transactions decided on the single-round-trip fast path.
    pub fast_path_decisions: u64,
    /// Transactions that needed the ST2 logging stage.
    pub slow_path_decisions: u64,
    /// Dependency recoveries started.
    pub fallback_invocations: u64,
    /// Fallback leader elections requested (divergent case).
    pub fallback_elections: u64,
    /// Successful equivocations performed (Byzantine clients only).
    pub equivocations: u64,
    /// Streaming histogram of commit latencies (first attempt start to
    /// durable decision) in nanoseconds. Updated in O(1) per commit; the
    /// harness merges and diffs these instead of cloning sample vectors.
    pub latency: LatencyHistogram,
    /// Committed transactions per workload label.
    pub per_label: HashMap<&'static str, u64>,
    /// Remote read operations issued.
    pub reads_issued: u64,
    /// Reads that adopted a prepared (uncommitted) version, acquiring a
    /// dependency.
    pub dependent_reads: u64,
    /// Writeback-forwarded certificates accepted straight from the
    /// validated-cert cache (no re-verification; ~19 µs of signature
    /// checking saved per hit with a cold signature cache).
    pub cert_cache_hits: u64,
    /// Writeback-forwarded certificates that had to be verified because the
    /// cache had no matching entry.
    pub cert_cache_misses: u64,
    /// Transactions the workload offered. Under closed-loop driving this
    /// equals the number of transactions started; under open-loop (Poisson)
    /// driving it counts every arrival, including shed ones.
    pub offered: u64,
    /// Open-loop arrivals dropped because the admission queue was already at
    /// `BasilConfig::admission_bound` (load shedding past saturation).
    pub shed: u64,
}

impl ClientStats {
    /// Mean commit latency in milliseconds (exact: the histogram carries
    /// the exact sum of samples).
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// Commit rate: committed / (committed + aborted attempts).
    pub fn commit_rate(&self) -> f64 {
        let total = self.committed + self.aborted_attempts;
        if total == 0 {
            return 1.0;
        }
        self.committed as f64 / total as f64
    }
}

/// A read in flight during the execution phase.
#[derive(Debug)]
struct PendingRead {
    req_id: u64,
    key: Key,
    /// Delta to apply if this read is part of a read-modify-write op.
    rmw_delta: Option<i64>,
    /// Replies gathered so far, deduplicated by replica, in arrival order
    /// (a small `Vec` — the read quorum waits for `f + 1` ≈ 2 replies, so
    /// a hash map per read was pure allocation overhead).
    replies: Vec<(ReplicaId, ReadReply)>,
    wait_for: u32,
}

/// Execution-phase state.
#[derive(Debug)]
struct Executing {
    builder: TransactionBuilder,
    ops: Vec<Op>,
    op_index: usize,
    pending_read: Option<PendingRead>,
}

/// Prepare-phase (ST1) state.
#[derive(Debug)]
struct Preparing {
    tx: Arc<Transaction>,
    txid: TxId,
    involved: Vec<ShardId>,
    tallies: FastHashMap<ShardId, ShardTally>,
    outcomes: FastHashMap<ShardId, ShardOutcome>,
}

/// Decision-logging (ST2) state.
#[derive(Debug)]
struct Logging {
    tx: Arc<Transaction>,
    txid: TxId,
    decision: ProtoDecision,
    shard_votes: Vec<ShardVotes>,
    slog: ShardId,
    involved: Vec<ShardId>,
    tally: St2Tally,
}

/// Phase of the client's own current transaction.
#[derive(Debug)]
enum Phase {
    Executing(Executing),
    Preparing(Preparing),
    Logging(Logging),
    /// Waiting out the retry backoff after an abort.
    WaitingRetry,
}

/// The client's own in-flight transaction.
#[derive(Debug)]
struct InFlight {
    profile: TxProfile,
    first_started: SimTime,
    attempt: u32,
    faulty: bool,
    phase: Phase,
}

/// Recovery state for a stalled dependency the client is trying to finish.
#[derive(Debug)]
struct Recovery {
    tx: Arc<Transaction>,
    involved: Vec<ShardId>,
    slog: ShardId,
    tallies: FastHashMap<ShardId, ShardTally>,
    outcomes: FastHashMap<ShardId, ShardOutcome>,
    st2_tally: St2Tally,
    /// Whether we have already escalated to a leader election.
    invoked_election: bool,
    resolved: bool,
}

/// A bounded FIFO cache of decision certificates this client has already
/// verified, keyed by transaction id.
///
/// Certificates reach a client twice in the common recovery flows: once
/// attached to a committed read (verified in `conclude_read`) and again when
/// a `Writeback` forwards the decision (previously re-verified from scratch,
/// ~19 µs cold per certificate). A hit requires the *same shared allocation*
/// (`Arc::ptr_eq`), which cannot be spoofed: a Byzantine node replaying the
/// transaction id with different certificate bytes arrives as a different
/// allocation and takes the full verification path. Bounded via the shared
/// `basil_common::BoundedFifoMap` (the same primitive behind
/// `basil_crypto::SignatureCache`).
#[derive(Debug)]
struct ValidatedCertCache {
    certs: basil_common::BoundedFifoMap<TxId, Arc<DecisionCert>>,
}

impl ValidatedCertCache {
    const DEFAULT_CAPACITY: usize = 4096;

    fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Self {
        ValidatedCertCache {
            certs: basil_common::BoundedFifoMap::with_capacity(capacity),
        }
    }

    /// Records a certificate that passed full verification.
    fn insert(&mut self, txid: TxId, cert: Arc<DecisionCert>) {
        self.certs.insert(txid, cert);
    }

    /// Whether `cert` is the exact (same-allocation) certificate previously
    /// verified for `txid`.
    fn contains(&self, txid: &TxId, cert: &Arc<DecisionCert>) -> bool {
        self.certs
            .get(txid)
            .map(|known| Arc::ptr_eq(known, cert))
            .unwrap_or(false)
    }
}

/// Which per-transaction retry timer a backoff attempt counter belongs to.
/// Counted separately so, e.g., prepare retries do not inflate the first
/// ST2 retry of the same transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum RetryKind {
    Prepare,
    St2,
    Fallback,
}

/// The Basil client actor.
pub struct BasilClient {
    id: ClientId,
    cfg: BasilConfig,
    engine: SigEngine,
    generator: Box<dyn TxGenerator>,
    fault: FaultProfile,
    prng: SmallPrng,
    next_req_id: u64,
    last_ts: u64,
    current: Option<InFlight>,
    recoveries: FastHashMap<TxId, Recovery>,
    /// Dependency transactions learned from prepared reads, shared with the
    /// read replies that delivered them, kept so the client can finish them
    /// if they stall.
    dep_txs: FastHashMap<TxId, Arc<Transaction>>,
    /// Certificates already verified by this client (read path), consulted
    /// before re-verifying a `Writeback`-forwarded certificate.
    validated_certs: ValidatedCertCache,
    backoff: Duration,
    /// Dedicated PRNG for retry-timer jitter, seeded independently of
    /// `prng` so that timers backing off on lossy schedules never perturb
    /// the fault-free random stream (replica sampling, abort backoff) that
    /// golden tests pin byte-for-byte.
    retry_prng: SmallPrng,
    /// Consecutive re-arms per (timer kind, transaction), driving the
    /// exponential backoff; cleared when the retried condition resolves.
    retry_attempts: FastHashMap<(RetryKind, TxId), u32>,
    stats: ClientStats,
    stopped: bool,
    /// Whether the generator paces arrivals (open loop). Decided once at
    /// startup from the first `next_arrival_delay` answer.
    open_loop: bool,
    /// Arrival timestamps of admitted-but-not-yet-started transactions
    /// (open loop only), bounded by `cfg.admission_bound`. Latency is
    /// measured from the arrival, so queueing delay shows up in the knee.
    arrivals: std::collections::VecDeque<SimTime>,
}

impl BasilClient {
    /// Creates a client driven by `generator`.
    pub fn new(
        id: ClientId,
        cfg: BasilConfig,
        registry: basil_crypto::KeyRegistry,
        generator: Box<dyn TxGenerator>,
        fault: FaultProfile,
        seed: u64,
    ) -> Self {
        let engine = SigEngine::new(NodeId::Client(id), registry, &cfg);
        let backoff = cfg.retry_backoff;
        BasilClient {
            id,
            cfg,
            engine,
            generator,
            fault,
            prng: SmallPrng::new(seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            next_req_id: 0,
            last_ts: 0,
            current: None,
            recoveries: FastHashMap::default(),
            dep_txs: FastHashMap::default(),
            validated_certs: ValidatedCertCache::new(),
            backoff,
            retry_prng: SmallPrng::new(seed ^ id.0.wrapping_mul(0xD1B5_4A32_D192_ED03)),
            retry_attempts: FastHashMap::default(),
            stats: ClientStats::default(),
            stopped: false,
            open_loop: false,
            arrivals: std::collections::VecDeque::new(),
        }
    }

    /// The client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Whether the client has exhausted its generator.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn replicas_of(&self, shard: ShardId) -> Vec<NodeId> {
        (0..self.cfg.system.shard.n())
            .map(|i| NodeId::Replica(ReplicaId::new(shard, i)))
            .collect()
    }

    fn all_replicas_of(&self, shards: &[ShardId]) -> Vec<NodeId> {
        shards.iter().flat_map(|s| self.replicas_of(*s)).collect()
    }

    fn fresh_timestamp(&mut self, ctx: &Context<BasilMsg>) -> Timestamp {
        let mut t = ctx.local_clock().as_nanos();
        if t <= self.last_ts {
            t = self.last_ts + 1;
        }
        self.last_ts = t;
        Timestamp::from_nanos(t, self.id)
    }

    fn logging_shard(txid: TxId, involved: &[ShardId]) -> ShardId {
        involved[(txid.as_u64() % involved.len() as u64) as usize]
    }

    fn verify_replica_reply<P: crate::crypto_engine::SignedPayload + ?Sized>(
        &mut self,
        ctx: &mut Context<BasilMsg>,
        bytes: &P,
        proof: Option<&basil_crypto::BatchProof>,
        claimed: ReplicaId,
    ) -> bool {
        if !self.engine.enabled() {
            return true;
        }
        let signer_ok = proof
            .map(|p| p.signer() == NodeId::Replica(claimed))
            .unwrap_or(false);
        let (ok, cost) = self.engine.verify(bytes, proof);
        ctx.charge(cost);
        ok && signer_ok
    }

    fn send_signed(&mut self, ctx: &mut Context<BasilMsg>, to: NodeId, msg: BasilMsg) {
        ctx.charge(self.engine.message_cost());
        ctx.send(to, msg);
    }

    // ------------------------------------------------------------------
    // Transaction driving (closed- and open-loop)
    // ------------------------------------------------------------------

    /// Starts the next transaction after the previous one finished. Closed
    /// loop: pull straight from the generator (latency clock starts now).
    /// Open loop: pull the oldest queued arrival, or go idle until the next
    /// arrival timer fires.
    fn start_next_transaction(&mut self, ctx: &mut Context<BasilMsg>) {
        if self.open_loop {
            match self.arrivals.pop_front() {
                Some(arrived) => self.start_transaction(ctx, arrived),
                None => self.current = None,
            }
        } else {
            let now = ctx.now();
            self.start_transaction(ctx, now);
        }
    }

    /// Pulls the next profile from the generator and begins executing it.
    /// `arrived` anchors the latency measurement: for closed-loop clients it
    /// is the current time, for open-loop clients the (possibly earlier)
    /// Poisson arrival instant, so queueing delay counts toward latency.
    fn start_transaction(&mut self, ctx: &mut Context<BasilMsg>, arrived: SimTime) {
        if self.stopped {
            return;
        }
        let Some(profile) = self.generator.next_tx() else {
            self.stopped = true;
            self.current = None;
            return;
        };
        if !self.open_loop {
            self.stats.offered += 1;
        }
        let faulty = profile.faulty || self.fault.sample_faulty(&mut self.prng);
        if faulty {
            self.stats.faulty_issued += 1;
        }
        self.current = Some(InFlight {
            profile,
            first_started: arrived,
            attempt: 0,
            faulty,
            phase: Phase::WaitingRetry, // replaced immediately by begin_attempt
        });
        self.backoff = self.cfg.retry_backoff;
        self.begin_attempt(ctx);
    }

    /// An open-loop arrival timer fired: admit the transaction (start it if
    /// the client is idle, queue it if there is room) or shed it.
    fn handle_open_loop_arrival(&mut self, ctx: &mut Context<BasilMsg>) {
        if self.stopped {
            return;
        }
        // Keep the arrival process ticking independently of completions —
        // that independence is what makes the load open-loop.
        if let Some(delay) = self.generator.next_arrival_delay() {
            ctx.schedule_self(delay, BasilMsg::ClientTimer(ClientTimer::OpenLoopArrival));
        }
        self.stats.offered += 1;
        let now = ctx.now();
        if self.current.is_none() {
            self.start_transaction(ctx, now);
        } else if self.arrivals.len() < self.cfg.admission_bound {
            self.arrivals.push_back(now);
        } else {
            self.stats.shed += 1;
        }
    }

    fn begin_attempt(&mut self, ctx: &mut Context<BasilMsg>) {
        let ts = self.fresh_timestamp(ctx);
        let Some(current) = self.current.as_mut() else {
            return;
        };
        current.attempt += 1;
        let ops = current.profile.ops.clone();
        current.phase = Phase::Executing(Executing {
            builder: TransactionBuilder::new(ts),
            ops,
            op_index: 0,
            pending_read: None,
        });
        self.advance_execution(ctx);
    }

    // ------------------------------------------------------------------
    // Execution phase
    // ------------------------------------------------------------------

    fn advance_execution(&mut self, ctx: &mut Context<BasilMsg>) {
        loop {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            if exec.pending_read.is_some() {
                return; // waiting on a read
            }
            if exec.op_index >= exec.ops.len() {
                self.send_st1(ctx);
                return;
            }
            let op = exec.ops[exec.op_index].clone();
            match op {
                Op::Write(key, value) => {
                    exec.builder.record_write(key, value);
                    exec.op_index += 1;
                }
                Op::Read(key) | Op::RmwAdd { key, .. } => {
                    let rmw_delta = match exec.ops[exec.op_index] {
                        Op::RmwAdd { delta, .. } => Some(delta),
                        _ => None,
                    };
                    // Read-your-writes: a buffered write satisfies the read
                    // locally.
                    if let Some(buffered) = exec.builder.buffered_value(&key).cloned() {
                        if let Some(delta) = rmw_delta {
                            let new = apply_delta(&buffered, delta);
                            exec.builder.record_write(key, new);
                        }
                        exec.op_index += 1;
                        continue;
                    }
                    self.issue_read(ctx, key, rmw_delta);
                    return;
                }
            }
        }
    }

    fn issue_read(&mut self, ctx: &mut Context<BasilMsg>, key: Key, rmw_delta: Option<i64>) {
        self.next_req_id += 1;
        let req_id = self.next_req_id;
        let shard = self.cfg.system.shard_for_key(&key);
        let fanout = self.cfg.system.read_quorum.fanout(&self.cfg.system.shard);
        let wait_for = self.cfg.system.read_quorum.wait_for(&self.cfg.system.shard);
        let n = self.cfg.system.shard.n();
        let start = self.prng.next_below(n as u64) as u32;

        let ts = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            exec.pending_read = Some(PendingRead {
                req_id,
                key: key.clone(),
                rmw_delta,
                replies: Vec::new(),
                wait_for,
            });
            exec.builder.timestamp()
        };

        self.stats.reads_issued += 1;
        let req = ReadRequest {
            req_id,
            key,
            ts,
            auth: None,
        };
        let (auth, cost) = self.engine.sign_request(&req);
        ctx.charge(cost);
        let req = ReadRequest { auth, ..req };
        for i in 0..fanout {
            let replica = NodeId::Replica(ReplicaId::new(shard, (start + i) % n));
            self.send_signed(ctx, replica, BasilMsg::Read(req.clone()));
        }
        ctx.schedule_self(
            self.cfg.read_timeout,
            BasilMsg::ClientTimer(ClientTimer::ReadTimeout { req_id }),
        );
    }

    fn handle_read_reply(&mut self, ctx: &mut Context<BasilMsg>, reply: ReadReply) {
        let claimed = reply.body.committed.as_ref().map(|_| ()).map(|_| ());
        let _ = claimed;
        // Identify the replying replica from the signature (or trust the
        // sender when signatures are off — the simulator delivers `from`
        // faithfully, but we only have the proof here).
        let Some(current) = self.current.as_mut() else {
            return;
        };
        let Phase::Executing(exec) = &mut current.phase else {
            return;
        };
        let Some(pending) = exec.pending_read.as_mut() else {
            return;
        };
        if pending.req_id != reply.body.req_id {
            return;
        }
        let replica = match reply.proof.as_ref().map(|p| p.signer()) {
            Some(NodeId::Replica(r)) => r,
            // Signatures disabled: fall back to a synthetic index based on
            // how many replies we have (each replica answers once).
            _ => ReplicaId::new(
                self.cfg.system.shard_for_key(&pending.key),
                pending.replies.len() as u32,
            ),
        };
        // Verify the reply signature before accepting it.
        if self.engine.enabled() {
            let (ok, cost) = self.engine.verify(&reply.body, reply.proof.as_ref());
            ctx.charge(cost);
            if !ok {
                return;
            }
        }
        let Some(current) = self.current.as_mut() else {
            return;
        };
        let Phase::Executing(exec) = &mut current.phase else {
            return;
        };
        let Some(pending) = exec.pending_read.as_mut() else {
            return;
        };
        match pending.replies.iter_mut().find(|(r, _)| *r == replica) {
            Some((_, existing)) => *existing = reply,
            None => pending.replies.push((replica, reply)),
        }
        if (pending.replies.len() as u32) < pending.wait_for {
            return;
        }
        self.conclude_read(ctx);
    }

    fn conclude_read(&mut self, ctx: &mut Context<BasilMsg>) {
        // Collect what we need, then release the borrow before verification
        // of certificates (which needs &mut self.engine).
        let (key, rmw_delta, replies) = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            let Some(pending) = exec.pending_read.take() else {
                return;
            };
            (pending.key, pending.rmw_delta, pending.replies)
        };

        // Committed candidate: the highest committed version backed by a
        // valid certificate (or the genesis version).
        let mut best_committed: Option<(Timestamp, Value)> = None;
        for (_, reply) in &replies {
            let Some(c) = &reply.body.committed else {
                continue;
            };
            let acceptable = if c.version == Timestamp::ZERO {
                true
            } else if let Some(cert) = &c.cert {
                if self.engine.enabled() {
                    let v = validate_decision_cert(cert, &self.cfg.system.shard, &mut self.engine);
                    ctx.charge(v.cost);
                    let ok = v.valid && cert.txid() == c.txid && cert.decision().is_commit();
                    if ok {
                        // Remember the verified certificate: a Writeback
                        // forwarding the same allocation later skips the
                        // re-verification (see ValidatedCertCache).
                        self.validated_certs.insert(c.txid, Arc::clone(cert));
                    }
                    ok
                } else {
                    true
                }
            } else {
                false
            };
            if !acceptable {
                continue;
            }
            if best_committed
                .as_ref()
                .map(|(v, _)| c.version > *v)
                .unwrap_or(true)
            {
                best_committed = Some((c.version, c.value.clone()));
            }
        }

        // Prepared candidate: a version vouched for by at least f+1 replicas.
        let mut prepared_counts: Vec<(TxId, u32, Arc<Transaction>)> = Vec::new();
        for (_, reply) in &replies {
            if let Some(p) = &reply.body.prepared {
                let txid = p.tx.id();
                match prepared_counts.iter_mut().find(|(t, ..)| *t == txid) {
                    Some((_, count, _)) => *count += 1,
                    None => prepared_counts.push((txid, 1, Arc::clone(&p.tx))),
                }
            }
        }
        let vouch = self.cfg.system.shard.prepared_vouch_quorum();
        let mut best_prepared: Option<(Timestamp, Value, TxId, Arc<Transaction>)> = None;
        for (txid, count, tx) in prepared_counts {
            if count < vouch {
                continue;
            }
            let Some(value) = tx.written_value(&key).cloned() else {
                continue;
            };
            if best_prepared
                .as_ref()
                .map(|(v, ..)| tx.timestamp() > *v)
                .unwrap_or(true)
            {
                best_prepared = Some((tx.timestamp(), value, txid, tx));
            }
        }

        // Choose the highest valid version overall.
        let use_prepared = match (&best_committed, &best_prepared) {
            (Some((cv, _)), Some((pv, ..))) => pv > cv,
            (None, Some(_)) => true,
            _ => false,
        };

        let (version, value) = if use_prepared {
            let (version, value, dep_txid, dep_tx) = best_prepared.expect("checked above");
            self.dep_txs.insert(dep_txid, dep_tx);
            self.stats.dependent_reads += 1;
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            exec.builder
                .record_dependent_read(key.clone(), version, dep_txid);
            (version, value)
        } else {
            let (version, value) = best_committed.unwrap_or((Timestamp::ZERO, Value::empty()));
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            exec.builder.record_read(key.clone(), version);
            (version, value)
        };
        let _ = version;

        // Apply a read-modify-write delta if requested.
        if let Some(delta) = rmw_delta {
            let new = apply_delta(&value, delta);
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            exec.builder.record_write(key, new);
        }

        if let Some(current) = self.current.as_mut() {
            if let Phase::Executing(exec) = &mut current.phase {
                exec.op_index += 1;
            }
        }
        self.advance_execution(ctx);
    }

    fn handle_read_timeout(&mut self, ctx: &mut Context<BasilMsg>, req_id: u64) {
        let resend = {
            let Some(current) = self.current.as_ref() else {
                return;
            };
            let Phase::Executing(exec) = &current.phase else {
                return;
            };
            match &exec.pending_read {
                Some(p) if p.req_id == req_id => Some((p.key.clone(), p.replies.len() as u32)),
                _ => None,
            }
        };
        let Some((key, have)) = resend else {
            return;
        };
        // If we already have enough replies, conclude; otherwise widen the
        // read to every replica of the shard and keep waiting.
        let wait_for = self.cfg.system.read_quorum.wait_for(&self.cfg.system.shard);
        if have >= wait_for {
            self.conclude_read(ctx);
            return;
        }
        let ts = {
            let Some(current) = self.current.as_ref() else {
                return;
            };
            let Phase::Executing(exec) = &current.phase else {
                return;
            };
            exec.builder.timestamp()
        };
        let shard = self.cfg.system.shard_for_key(&key);
        let req = ReadRequest {
            req_id,
            key,
            ts,
            auth: None,
        };
        let (auth, cost) = self.engine.sign_request(&req);
        ctx.charge(cost);
        let req = ReadRequest { auth, ..req };
        for replica in self.replicas_of(shard) {
            self.send_signed(ctx, replica, BasilMsg::Read(req.clone()));
        }
        ctx.schedule_self(
            self.cfg.read_timeout,
            BasilMsg::ClientTimer(ClientTimer::ReadTimeout { req_id }),
        );
    }

    // ------------------------------------------------------------------
    // Prepare phase
    // ------------------------------------------------------------------

    fn send_st1(&mut self, ctx: &mut Context<BasilMsg>) {
        let (tx, faulty, strategy) = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            let builder =
                std::mem::replace(&mut exec.builder, TransactionBuilder::new(Timestamp::ZERO));
            (
                builder.build_shared(),
                current.faulty,
                self.cfg.client_strategy,
            )
        };

        // Transactions that touch nothing commit trivially.
        if tx.is_empty() {
            self.record_commit(ctx, None);
            self.finish_and_continue(ctx);
            return;
        }

        // Prime the encoding memo before the id: this transaction is about
        // to be signed, and `id()` alone deliberately serializes transiently
        // without caching (see `Transaction::id`).
        tx.encoded();
        let txid = tx.id();
        let involved = tx.involved_shards(&self.cfg.system);
        let st1 = St1 {
            tx: Arc::clone(&tx),
            auth: None,
            recovery: false,
        };
        let (auth, cost) = self.engine.sign_request(&st1);
        ctx.charge(cost);
        let st1 = St1 { auth, ..st1 };
        for replica in self.all_replicas_of(&involved) {
            self.send_signed(ctx, replica, BasilMsg::St1(st1.clone()));
        }

        // stall-early Byzantine clients never look at the votes.
        if faulty && strategy == ClientStrategy::StallEarly {
            self.current = None;
            self.start_next_transaction(ctx);
            return;
        }

        let tallies = involved
            .iter()
            .map(|s| (*s, ShardTally::new(txid, *s, self.cfg.system.shard)))
            .collect();
        if let Some(current) = self.current.as_mut() {
            current.phase = Phase::Preparing(Preparing {
                tx,
                txid,
                involved,
                tallies,
                outcomes: FastHashMap::default(),
            });
        }
        ctx.schedule_self(
            self.cfg.prepare_timeout,
            BasilMsg::ClientTimer(ClientTimer::PrepareTimeout { txid }),
        );
    }

    fn handle_st1_reply(&mut self, ctx: &mut Context<BasilMsg>, vote: SignedSt1Reply) {
        if !self.verify_replica_reply(ctx, &vote.body, vote.proof.as_ref(), vote.body.replica) {
            return;
        }
        let txid = vote.body.txid;
        // Dependency recovery votes.
        if self.recoveries.contains_key(&txid) {
            if let Some(rec) = self.recoveries.get_mut(&txid) {
                if let Some(tally) = rec.tallies.get_mut(&vote.body.replica.shard) {
                    tally.add(vote);
                }
            }
            self.advance_recovery(ctx, txid, false);
            return;
        }
        // Own transaction votes.
        let matches = matches!(
            self.current.as_ref().map(|c| &c.phase),
            Some(Phase::Preparing(p)) if p.txid == txid
        );
        if !matches {
            return;
        }
        if let Some(current) = self.current.as_mut() {
            if let Phase::Preparing(prep) = &mut current.phase {
                if let Some(tally) = prep.tallies.get_mut(&vote.body.replica.shard) {
                    tally.add(vote);
                }
            }
        }
        self.try_classify(ctx, false);
    }

    /// Attempts to classify every shard and combine the outcomes into a 2PC
    /// decision. `complete` marks that no further replies are expected
    /// (prepare timer fired).
    fn try_classify(&mut self, ctx: &mut Context<BasilMsg>, complete: bool) {
        let outcome = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Preparing(prep) = &mut current.phase else {
                return;
            };
            let n = self.cfg.system.shard.n();
            for (shard, tally) in prep.tallies.iter() {
                if prep.outcomes.contains_key(shard) {
                    continue;
                }
                let shard_complete = complete || tally.total() >= n;
                if let Some(o) = tally.classify(shard_complete) {
                    prep.outcomes.insert(*shard, o);
                }
            }
            combine_outcomes(&prep.outcomes, &prep.involved)
        };
        let Some(outcome) = outcome else {
            return;
        };

        // Byzantine equivocation happens at the moment the votes are in.
        let (faulty, strategy) = match self.current.as_ref() {
            Some(c) => (c.faulty, self.cfg.client_strategy),
            None => return,
        };
        if faulty && strategy.equivocates() && self.try_equivocate(ctx, strategy) {
            return;
        }

        self.conclude_prepare(ctx, outcome);
    }

    /// Attempts the ST2 equivocation attack; returns true if performed.
    fn try_equivocate(&mut self, ctx: &mut Context<BasilMsg>, strategy: ClientStrategy) -> bool {
        let (txid, involved, commit_votes, abort_votes, can_real) = {
            let Some(current) = self.current.as_ref() else {
                return false;
            };
            let Phase::Preparing(prep) = &current.phase else {
                return false;
            };
            // Use the first involved shard's tally as the equivocation
            // target (stable across runs; map-iteration order would pick a
            // different shard per process).
            let Some(tally) = prep.involved.first().and_then(|s| prep.tallies.get(s)) else {
                return false;
            };
            (
                prep.txid,
                prep.involved.clone(),
                tally.votes_matching(ProtoVote::Commit),
                tally.votes_matching(ProtoVote::Abort),
                tally.can_equivocate(),
            )
        };
        let forced = strategy == ClientStrategy::EquivForced;
        if !forced && !can_real {
            return false;
        }
        let slog = Self::logging_shard(txid, &involved);
        let shard = involved[0];
        let commit_tally = ShardVotes {
            txid,
            shard,
            decision: ProtoDecision::Commit,
            votes: commit_votes,
            conflict: None,
        };
        let abort_tally = ShardVotes {
            txid,
            shard,
            decision: ProtoDecision::Abort,
            votes: abort_votes,
            conflict: None,
        };
        let replicas = self.replicas_of(slog);
        let half = replicas.len() / 2;
        for (i, replica) in replicas.into_iter().enumerate() {
            let (decision, tally) = if i < half {
                (ProtoDecision::Commit, commit_tally.clone())
            } else {
                (ProtoDecision::Abort, abort_tally.clone())
            };
            let st2 = St2 {
                txid,
                decision,
                shard_votes: vec![tally],
                view: 0,
                auth: None,
            };
            let (auth, cost) = self.engine.sign_request(&st2);
            ctx.charge(cost);
            self.send_signed(ctx, replica, BasilMsg::St2(St2 { auth, ..st2 }));
        }
        self.stats.equivocations += 1;
        // Stall: abandon the transaction without writeback.
        self.current = None;
        self.start_next_transaction(ctx);
        true
    }

    fn conclude_prepare(&mut self, ctx: &mut Context<BasilMsg>, outcome: PrepareOutcome) {
        let (tx, txid, involved) = {
            let Some(current) = self.current.as_ref() else {
                return;
            };
            let Phase::Preparing(prep) = &current.phase else {
                return;
            };
            (prep.tx.clone(), prep.txid, prep.involved.clone())
        };

        if outcome.fast || !self.cfg.system.fast_path {
            // Even with the fast path disabled the evidence may be durable;
            // the NoFP ablation always logs, so only treat it as final when
            // the configuration allows the fast path.
        }

        if outcome.fast && self.cfg.system.fast_path {
            self.stats.fast_path_decisions += 1;
            let cert = Arc::new(build_fast_cert(txid, outcome.decision, outcome.shard_votes));
            self.complete_own_transaction(ctx, tx, txid, involved, outcome.decision, cert);
            return;
        }

        // Slow path: log the decision on S_log.
        self.stats.slow_path_decisions += 1;
        let slog = Self::logging_shard(txid, &involved);
        let st2 = St2 {
            txid,
            decision: outcome.decision,
            shard_votes: outcome.shard_votes.clone(),
            view: 0,
            auth: None,
        };
        let (auth, cost) = self.engine.sign_request(&st2);
        ctx.charge(cost);
        let st2 = St2 { auth, ..st2 };
        for replica in self.replicas_of(slog) {
            self.send_signed(ctx, replica, BasilMsg::St2(st2.clone()));
        }
        if let Some(current) = self.current.as_mut() {
            current.phase = Phase::Logging(Logging {
                tx,
                txid,
                decision: outcome.decision,
                shard_votes: outcome.shard_votes,
                slog,
                involved,
                tally: St2Tally::new(txid, slog, self.cfg.system.shard),
            });
        }
        ctx.schedule_self(
            self.cfg.st2_timeout,
            BasilMsg::ClientTimer(ClientTimer::St2Timeout { txid }),
        );
    }

    /// Delay before the next re-arm of a retry timer: the first re-arm keeps
    /// the base period (a single retry is the common lost-message case and
    /// needs no spreading — and fault-free schedules that brush a timeout
    /// stay byte-identical), later consecutive re-arms wait `base * 2^n`
    /// capped at `cfg.max_backoff`, plus up to half that again in jitter
    /// from the dedicated seeded retry PRNG. Doubling stops retry storms —
    /// every client of a stalled transaction re-firing at a fixed period in
    /// lockstep — and the jitter de-synchronizes the survivors, while the
    /// seeded PRNG keeps schedules bit-identical run to run.
    fn retry_delay(&mut self, kind: RetryKind, txid: TxId, base: Duration) -> Duration {
        let attempt = {
            let counter = self.retry_attempts.entry((kind, txid)).or_insert(0);
            let a = *counter;
            *counter = counter.saturating_add(1);
            a
        };
        if attempt == 0 {
            return base;
        }
        let floor = base.as_nanos().max(1);
        let capped = floor
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cfg.max_backoff.as_nanos().max(floor));
        let jitter = self.retry_prng.next_below(capped / 2 + 1);
        Duration::from_nanos(capped.saturating_add(jitter))
    }

    /// Forgets a timer's retry history once the retried condition resolved.
    fn clear_retry(&mut self, kind: RetryKind, txid: TxId) {
        self.retry_attempts.remove(&(kind, txid));
    }

    fn handle_prepare_timeout(&mut self, ctx: &mut Context<BasilMsg>, txid: TxId) {
        let deps: Option<Vec<TxId>> = match self.current.as_ref().map(|c| &c.phase) {
            Some(Phase::Preparing(prep)) if prep.txid == txid => {
                Some(prep.tx.deps().iter().map(|d| d.txid).collect())
            }
            _ => None,
        };
        let Some(deps) = deps else {
            self.clear_retry(RetryKind::Prepare, txid);
            return;
        };
        // First, try to classify with what we have.
        self.try_classify(ctx, true);
        // If still preparing, the transaction is likely blocked on stalled
        // dependencies: try to finish them ourselves (Section 5).
        let still_preparing = matches!(
            self.current.as_ref().map(|c| &c.phase),
            Some(Phase::Preparing(p)) if p.txid == txid
        );
        if still_preparing {
            self.retransmit_st1(ctx, txid);
            for dep in deps {
                self.start_recovery(ctx, dep);
            }
            let delay = self.retry_delay(RetryKind::Prepare, txid, self.cfg.prepare_timeout);
            ctx.schedule_self(
                delay,
                BasilMsg::ClientTimer(ClientTimer::PrepareTimeout { txid }),
            );
        } else {
            self.clear_retry(RetryKind::Prepare, txid);
        }
    }

    /// Re-sends the ST1 to the replicas that have not voted yet: either the
    /// original request or their vote may have been lost in transit.
    /// Replicas answer re-deliveries idempotently with the stored vote, so
    /// this is safe to repeat on every prepare timeout; replicas that
    /// already voted are not contacted again, which keeps the message
    /// stream untouched whenever nothing was actually lost.
    fn retransmit_st1(&mut self, ctx: &mut Context<BasilMsg>, txid: TxId) {
        let (tx, targets) = {
            let Some(current) = self.current.as_ref() else {
                return;
            };
            let Phase::Preparing(prep) = &current.phase else {
                return;
            };
            if prep.txid != txid {
                return;
            }
            let mut targets: Vec<NodeId> = Vec::new();
            for shard in &prep.involved {
                if let Some(tally) = prep.tallies.get(shard) {
                    for i in tally.missing() {
                        targets.push(NodeId::Replica(ReplicaId::new(*shard, i)));
                    }
                }
            }
            (Arc::clone(&prep.tx), targets)
        };
        if targets.is_empty() {
            return;
        }
        let st1 = St1 {
            tx,
            auth: None,
            recovery: false,
        };
        let (auth, cost) = self.engine.sign_request(&st1);
        ctx.charge(cost);
        let st1 = St1 { auth, ..st1 };
        for replica in targets {
            self.send_signed(ctx, replica, BasilMsg::St1(st1.clone()));
        }
    }

    // ------------------------------------------------------------------
    // ST2 handling
    // ------------------------------------------------------------------

    fn handle_st2_reply(&mut self, ctx: &mut Context<BasilMsg>, reply: SignedSt2Reply) {
        if !self.verify_replica_reply(ctx, &reply.body, reply.proof.as_ref(), reply.body.replica) {
            return;
        }
        let txid = reply.body.txid;
        if self.recoveries.contains_key(&txid) {
            if let Some(rec) = self.recoveries.get_mut(&txid) {
                rec.st2_tally.add(reply);
            }
            self.advance_recovery(ctx, txid, false);
            return;
        }
        let matches = matches!(
            self.current.as_ref().map(|c| &c.phase),
            Some(Phase::Logging(l)) if l.txid == txid
        );
        if !matches {
            return;
        }
        let outcome = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Logging(log) = &mut current.phase else {
                return;
            };
            log.tally.add(reply);
            log.tally.classify()
        };
        match outcome {
            Some(St2Outcome::Certified(vote_cert)) => {
                let (tx, involved, decision) = {
                    let Some(current) = self.current.as_ref() else {
                        return;
                    };
                    let Phase::Logging(log) = &current.phase else {
                        return;
                    };
                    (log.tx.clone(), log.involved.clone(), log.decision)
                };
                // The certified decision is what the replicas logged; a
                // correct client logged its own decision so they agree.
                let cert = Arc::new(build_slow_cert(txid, vote_cert));
                self.complete_own_transaction(ctx, tx, txid, involved, decision, cert);
            }
            Some(St2Outcome::Divergent { .. }) | None => {}
        }
    }

    fn handle_st2_timeout(&mut self, ctx: &mut Context<BasilMsg>, txid: TxId) {
        let resend = {
            match self.current.as_ref().map(|c| &c.phase) {
                Some(Phase::Logging(l)) if l.txid == txid => Some((
                    l.decision,
                    l.shard_votes.clone(),
                    l.slog,
                    Arc::clone(&l.tx),
                    l.tally.missing(),
                )),
                _ => None,
            }
        };
        let Some((decision, shard_votes, slog, tx, missing)) = resend else {
            self.clear_retry(RetryKind::St2, txid);
            return;
        };
        // A logging replica that never acknowledged may have missed the ST1
        // itself — in which case it is buffering our ST2 until the
        // transaction body arrives — so the body is re-sent alongside the
        // decision. Replicas that already acknowledged are left alone.
        if !missing.is_empty() {
            let st1 = St1 {
                tx,
                auth: None,
                recovery: false,
            };
            let (auth, cost) = self.engine.sign_request(&st1);
            ctx.charge(cost);
            let st1 = St1 { auth, ..st1 };
            for i in missing {
                self.send_signed(
                    ctx,
                    NodeId::Replica(ReplicaId::new(slog, i)),
                    BasilMsg::St1(st1.clone()),
                );
            }
        }
        let st2 = St2 {
            txid,
            decision,
            shard_votes,
            view: 0,
            auth: None,
        };
        let (auth, cost) = self.engine.sign_request(&st2);
        ctx.charge(cost);
        let st2 = St2 { auth, ..st2 };
        for replica in self.replicas_of(slog) {
            self.send_signed(ctx, replica, BasilMsg::St2(st2.clone()));
        }
        let delay = self.retry_delay(RetryKind::St2, txid, self.cfg.st2_timeout);
        ctx.schedule_self(
            delay,
            BasilMsg::ClientTimer(ClientTimer::St2Timeout { txid }),
        );
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    fn record_commit(&mut self, ctx: &mut Context<BasilMsg>, label: Option<&'static str>) {
        self.stats.committed += 1;
        if let Some(current) = self.current.as_ref() {
            let latency = ctx.now() - current.first_started;
            self.stats.latency.record(latency.as_nanos());
            let label = label.unwrap_or(current.profile.label);
            *self.stats.per_label.entry(label).or_insert(0) += 1;
        }
    }

    fn finish_and_continue(&mut self, ctx: &mut Context<BasilMsg>) {
        self.current = None;
        self.start_next_transaction(ctx);
    }

    fn complete_own_transaction(
        &mut self,
        ctx: &mut Context<BasilMsg>,
        tx: Arc<Transaction>,
        txid: TxId,
        involved: Vec<ShardId>,
        decision: ProtoDecision,
        cert: Arc<DecisionCert>,
    ) {
        let (faulty, strategy, label) = match self.current.as_ref() {
            Some(c) => (c.faulty, self.cfg.client_strategy, c.profile.label),
            None => return,
        };
        let _ = txid;

        // The client's latency ends here: the decision is durable.
        let committed = decision.is_commit();
        if committed {
            self.record_commit(ctx, Some(label));
        } else {
            self.stats.aborted_attempts += 1;
        }

        // stall-late (and equiv-real when equivocation was impossible)
        // withholds the writeback.
        let withhold_writeback = faulty
            && matches!(
                strategy,
                ClientStrategy::StallLate | ClientStrategy::EquivReal | ClientStrategy::EquivForced
            );
        if !withhold_writeback {
            let wb = Writeback { cert, tx: Some(tx) };
            for replica in self.all_replicas_of(&involved) {
                self.send_signed(ctx, replica, BasilMsg::Writeback(wb.clone()));
            }
        }

        if committed || faulty {
            self.finish_and_continue(ctx);
        } else {
            // Honest aborted transactions are retried with exponential
            // backoff.
            let jitter_ns = self.prng.next_below(self.backoff.as_nanos().max(1));
            let delay = self.backoff + Duration::from_nanos(jitter_ns);
            self.backoff = Duration::from_nanos(
                (self.backoff.as_nanos() * 2).min(self.cfg.max_backoff.as_nanos()),
            );
            if let Some(current) = self.current.as_mut() {
                current.phase = Phase::WaitingRetry;
            }
            ctx.schedule_self(delay, BasilMsg::ClientTimer(ClientTimer::RetryBackoff));
        }
    }

    /// A writeback (decision certificate) arriving at the client: either the
    /// resolution of a recovery, or someone else finished our transaction.
    fn handle_incoming_cert(&mut self, ctx: &mut Context<BasilMsg>, wb: Writeback) {
        let txid = wb.cert.txid();
        if self.engine.enabled() {
            if self.validated_certs.contains(&txid, &wb.cert) {
                // Already verified on the read path: the cache hit is a map
                // lookup plus a pointer comparison, so nothing is charged.
                self.stats.cert_cache_hits += 1;
            } else {
                self.stats.cert_cache_misses += 1;
                let v = validate_decision_cert(&wb.cert, &self.cfg.system.shard, &mut self.engine);
                ctx.charge(v.cost);
                if !v.valid {
                    return;
                }
                self.validated_certs.insert(txid, Arc::clone(&wb.cert));
            }
        }
        // Recovery resolution: broadcast the certificate so every replica
        // learns the outcome, then mark the recovery finished.
        if let Some(rec) = self.recoveries.get_mut(&txid) {
            if !rec.resolved {
                rec.resolved = true;
                let involved = rec.involved.clone();
                let tx = rec.tx.clone();
                let wb_out = Writeback {
                    cert: Arc::clone(&wb.cert),
                    tx: Some(tx),
                };
                for replica in self.all_replicas_of(&involved) {
                    self.send_signed(ctx, replica, BasilMsg::Writeback(wb_out.clone()));
                }
            }
            return;
        }
        // Someone completed our own in-flight transaction (e.g. another
        // client recovering it): adopt the decision.
        let own = match self.current.as_ref().map(|c| &c.phase) {
            Some(Phase::Preparing(p)) if p.txid == txid => Some((p.tx.clone(), p.involved.clone())),
            Some(Phase::Logging(l)) if l.txid == txid => Some((l.tx.clone(), l.involved.clone())),
            _ => None,
        };
        if let Some((tx, involved)) = own {
            let decision = wb.cert.decision();
            self.complete_own_transaction(ctx, tx, txid, involved, decision, wb.cert);
        }
    }

    // ------------------------------------------------------------------
    // Dependency recovery (fallback, Section 5)
    // ------------------------------------------------------------------

    fn start_recovery(&mut self, ctx: &mut Context<BasilMsg>, dep: TxId) {
        if self
            .recoveries
            .get(&dep)
            .map(|r| !r.resolved)
            .unwrap_or(false)
        {
            return; // already recovering
        }
        let Some(tx) = self.dep_txs.get(&dep).cloned() else {
            return; // nothing known about this dependency
        };
        let involved = tx.involved_shards(&self.cfg.system);
        if involved.is_empty() {
            return;
        }
        let slog = Self::logging_shard(dep, &involved);
        self.stats.fallback_invocations += 1;
        let tallies = involved
            .iter()
            .map(|s| (*s, ShardTally::new(dep, *s, self.cfg.system.shard)))
            .collect();
        self.recoveries.insert(
            dep,
            Recovery {
                tx: tx.clone(),
                involved: involved.clone(),
                slog,
                tallies,
                outcomes: FastHashMap::default(),
                st2_tally: St2Tally::new(dep, slog, self.cfg.system.shard),
                invoked_election: false,
                resolved: false,
            },
        );
        // RP: a recovery prepare to every replica of every involved shard.
        let st1 = St1 {
            tx,
            auth: None,
            recovery: true,
        };
        let (auth, cost) = self.engine.sign_request(&st1);
        ctx.charge(cost);
        let st1 = St1 { auth, ..st1 };
        for replica in self.all_replicas_of(&involved) {
            self.send_signed(ctx, replica, BasilMsg::St1(st1.clone()));
        }
        ctx.schedule_self(
            self.cfg.fallback_timeout,
            BasilMsg::ClientTimer(ClientTimer::FallbackTimeout { txid: dep }),
        );
    }

    /// Drives a recovery forward based on the evidence gathered so far.
    fn advance_recovery(&mut self, ctx: &mut Context<BasilMsg>, txid: TxId, complete: bool) {
        let action = {
            let Some(rec) = self.recoveries.get_mut(&txid) else {
                return;
            };
            if rec.resolved {
                return;
            }
            // 1. A durable logging-shard quorum finishes the recovery.
            match rec.st2_tally.classify() {
                Some(St2Outcome::Certified(vote_cert)) => {
                    Some(RecoveryAction::Certified(vote_cert))
                }
                Some(St2Outcome::Divergent { replies }) if !rec.invoked_election => {
                    rec.invoked_election = true;
                    Some(RecoveryAction::Diverged(replies))
                }
                _ => {
                    // 2. Otherwise aggregate ST1 votes like a normal prepare.
                    let n = self.cfg.system.shard.n();
                    for (shard, tally) in rec.tallies.iter() {
                        if rec.outcomes.contains_key(shard) {
                            continue;
                        }
                        let shard_complete = complete || tally.total() >= n;
                        if let Some(o) = tally.classify(shard_complete) {
                            rec.outcomes.insert(*shard, o);
                        }
                    }
                    combine_outcomes(&rec.outcomes, &rec.involved).map(RecoveryAction::Voted)
                }
            }
        };
        let Some(action) = action else {
            return;
        };
        match action {
            RecoveryAction::Certified(vote_cert) => {
                let Some(rec) = self.recoveries.get_mut(&txid) else {
                    return;
                };
                rec.resolved = true;
                let decision = vote_cert.decision;
                let cert = Arc::new(match decision {
                    ProtoDecision::Commit => DecisionCert::Commit(CommitCert {
                        txid,
                        fast_votes: vec![],
                        slow: Some(vote_cert),
                    }),
                    ProtoDecision::Abort => DecisionCert::Abort(AbortCert {
                        txid,
                        fast_votes: None,
                        slow: Some(vote_cert),
                    }),
                });
                let tx = rec.tx.clone();
                let involved = rec.involved.clone();
                let wb = Writeback { cert, tx: Some(tx) };
                for replica in self.all_replicas_of(&involved) {
                    self.send_signed(ctx, replica, BasilMsg::Writeback(wb.clone()));
                }
            }
            RecoveryAction::Diverged(replies) => {
                // Divergent case: elect a fallback leader on the logging
                // shard.
                self.stats.fallback_elections += 1;
                let slog = match self.recoveries.get(&txid) {
                    Some(r) => r.slog,
                    None => return,
                };
                let ifb = InvokeFb {
                    txid,
                    views: replies,
                    auth: None,
                };
                let (auth, cost) = self.engine.sign_request(&ifb);
                ctx.charge(cost);
                let ifb = InvokeFb { auth, ..ifb };
                for replica in self.replicas_of(slog) {
                    self.send_signed(ctx, replica, BasilMsg::InvokeFb(ifb.clone()));
                }
                ctx.schedule_self(
                    self.cfg.fallback_timeout,
                    BasilMsg::ClientTimer(ClientTimer::FallbackTimeout { txid }),
                );
            }
            RecoveryAction::Voted(outcome) => {
                // We gathered enough ST1 votes to decide the stalled
                // transaction ourselves; finish it exactly as its original
                // client would have.
                let Some(rec) = self.recoveries.get_mut(&txid) else {
                    return;
                };
                let tx = rec.tx.clone();
                let involved = rec.involved.clone();
                let slog = rec.slog;
                if outcome.fast {
                    rec.resolved = true;
                    let cert =
                        Arc::new(build_fast_cert(txid, outcome.decision, outcome.shard_votes));
                    let wb = Writeback { cert, tx: Some(tx) };
                    for replica in self.all_replicas_of(&involved) {
                        self.send_signed(ctx, replica, BasilMsg::Writeback(wb.clone()));
                    }
                } else {
                    // Log the reconciled decision on S_log (view 0).
                    let st2 = St2 {
                        txid,
                        decision: outcome.decision,
                        shard_votes: outcome.shard_votes,
                        view: 0,
                        auth: None,
                    };
                    let (auth, cost) = self.engine.sign_request(&st2);
                    ctx.charge(cost);
                    let st2 = St2 { auth, ..st2 };
                    for replica in self.replicas_of(slog) {
                        self.send_signed(ctx, replica, BasilMsg::St2(st2.clone()));
                    }
                    ctx.schedule_self(
                        self.cfg.fallback_timeout,
                        BasilMsg::ClientTimer(ClientTimer::FallbackTimeout { txid }),
                    );
                }
            }
        }
    }

    fn handle_fallback_timeout(&mut self, ctx: &mut Context<BasilMsg>, txid: TxId) {
        let unresolved = self
            .recoveries
            .get(&txid)
            .map(|r| !r.resolved)
            .unwrap_or(false);
        if !unresolved {
            self.clear_retry(RetryKind::Fallback, txid);
            return;
        }
        self.advance_recovery(ctx, txid, true);
        let still_unresolved = self
            .recoveries
            .get(&txid)
            .map(|r| !r.resolved)
            .unwrap_or(false);
        if still_unresolved {
            // Re-send the recovery prepare in case messages were lost, and
            // keep the timer alive.
            if let Some(rec) = self.recoveries.get(&txid) {
                let tx = rec.tx.clone();
                let involved = rec.involved.clone();
                let st1 = St1 {
                    tx,
                    auth: None,
                    recovery: true,
                };
                let (auth, cost) = self.engine.sign_request(&st1);
                ctx.charge(cost);
                let st1 = St1 { auth, ..st1 };
                for replica in self.all_replicas_of(&involved) {
                    self.send_signed(ctx, replica, BasilMsg::St1(st1.clone()));
                }
            }
            let delay = self.retry_delay(RetryKind::Fallback, txid, self.cfg.fallback_timeout);
            ctx.schedule_self(
                delay,
                BasilMsg::ClientTimer(ClientTimer::FallbackTimeout { txid }),
            );
        } else {
            self.clear_retry(RetryKind::Fallback, txid);
        }
    }

    fn handle_retry_backoff(&mut self, ctx: &mut Context<BasilMsg>) {
        let waiting = matches!(
            self.current.as_ref().map(|c| &c.phase),
            Some(Phase::WaitingRetry)
        );
        if waiting {
            self.begin_attempt(ctx);
        }
    }
}

/// What a recovery step decided to do next.
enum RecoveryAction {
    Certified(VoteCert),
    Diverged(Vec<SignedSt2Reply>),
    Voted(PrepareOutcome),
}

fn apply_delta(value: &Value, delta: i64) -> Value {
    let current = value.as_u64().unwrap_or(0);
    let new = if delta >= 0 {
        current.saturating_add(delta as u64)
    } else {
        current.saturating_sub(delta.unsigned_abs())
    };
    Value::from_u64(new)
}

fn build_fast_cert(
    txid: TxId,
    decision: ProtoDecision,
    shard_votes: Vec<ShardVotes>,
) -> DecisionCert {
    match decision {
        ProtoDecision::Commit => DecisionCert::Commit(CommitCert {
            txid,
            fast_votes: shard_votes,
            slow: None,
        }),
        ProtoDecision::Abort => DecisionCert::Abort(AbortCert {
            txid,
            fast_votes: shard_votes.into_iter().next(),
            slow: None,
        }),
    }
}

fn build_slow_cert(txid: TxId, vote_cert: VoteCert) -> DecisionCert {
    match vote_cert.decision {
        ProtoDecision::Commit => DecisionCert::Commit(CommitCert {
            txid,
            fast_votes: vec![],
            slow: Some(vote_cert),
        }),
        ProtoDecision::Abort => DecisionCert::Abort(AbortCert {
            txid,
            fast_votes: None,
            slow: Some(vote_cert),
        }),
    }
}

impl Actor<BasilMsg> for BasilClient {
    fn on_start(&mut self, ctx: &mut Context<BasilMsg>) {
        match self.generator.next_arrival_delay() {
            Some(delay) => {
                self.open_loop = true;
                ctx.schedule_self(delay, BasilMsg::ClientTimer(ClientTimer::OpenLoopArrival));
            }
            None => self.start_next_transaction(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<BasilMsg>, _from: NodeId, msg: BasilMsg) {
        ctx.charge(self.engine.message_cost());
        self.engine.set_now(ctx.now());
        match msg {
            BasilMsg::ReadReply(reply) => self.handle_read_reply(ctx, reply),
            BasilMsg::St1Reply(vote) => self.handle_st1_reply(ctx, vote),
            BasilMsg::St2Reply(reply) => self.handle_st2_reply(ctx, reply),
            BasilMsg::Writeback(wb) => self.handle_incoming_cert(ctx, wb),
            BasilMsg::ClientTimer(timer) => match timer {
                ClientTimer::ReadTimeout { req_id } => self.handle_read_timeout(ctx, req_id),
                ClientTimer::PrepareTimeout { txid } => self.handle_prepare_timeout(ctx, txid),
                ClientTimer::St2Timeout { txid } => self.handle_st2_timeout(ctx, txid),
                ClientTimer::FallbackTimeout { txid } => self.handle_fallback_timeout(ctx, txid),
                ClientTimer::RetryBackoff => self.handle_retry_backoff(ctx),
                ClientTimer::OpenLoopArrival => self.handle_open_loop_arrival(ctx),
            },
            // Messages meant for replicas are ignored if misrouted.
            BasilMsg::Read(_)
            | BasilMsg::St1(_)
            | BasilMsg::St2(_)
            | BasilMsg::RtsRelease { .. }
            | BasilMsg::InvokeFb(_)
            | BasilMsg::ElectFb(_)
            | BasilMsg::DecFb(_)
            | BasilMsg::CatchUpRequest(_)
            | BasilMsg::CatchUpReply(_)
            | BasilMsg::ReplicaTimer(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ScriptedGenerator;

    fn cfg() -> BasilConfig {
        BasilConfig::test_single_shard()
    }

    fn registry() -> basil_crypto::KeyRegistry {
        basil_crypto::KeyRegistry::from_seed(5)
    }

    fn client_with(profiles: Vec<TxProfile>) -> BasilClient {
        BasilClient::new(
            ClientId(1),
            cfg(),
            registry(),
            Box::new(ScriptedGenerator::new(profiles)),
            FaultProfile::honest(),
            99,
        )
    }

    fn ctx_at(ms: u64) -> Context<BasilMsg> {
        Context::new(
            NodeId::Client(ClientId(1)),
            SimTime::from_millis(ms),
            SimTime::from_millis(ms),
        )
    }

    fn sent_messages(ctx: &Context<BasilMsg>) -> Vec<(NodeId, BasilMsg)> {
        ctx.outputs()
            .iter()
            .filter_map(|o| match o {
                basil_simnet::actor::Output::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn write_only_transaction_goes_straight_to_prepare() {
        let profile = TxProfile::new("w", vec![Op::Write(Key::new("x"), Value::from_u64(1))]);
        let mut client = client_with(vec![profile]);
        let mut ctx = ctx_at(1);
        client.on_start(&mut ctx);
        let msgs = sent_messages(&ctx);
        // No reads needed: ST1 goes to all 6 replicas of the single shard.
        let st1s: Vec<_> = msgs
            .iter()
            .filter(|(_, m)| matches!(m, BasilMsg::St1(_)))
            .collect();
        assert_eq!(st1s.len(), 6);
        assert!(matches!(
            client.current.as_ref().map(|c| &c.phase),
            Some(Phase::Preparing(_))
        ));
    }

    #[test]
    fn read_op_fans_out_to_read_quorum() {
        let profile = TxProfile::new("r", vec![Op::Read(Key::new("x"))]);
        let mut client = client_with(vec![profile]);
        let mut ctx = ctx_at(1);
        client.on_start(&mut ctx);
        let msgs = sent_messages(&ctx);
        let reads: Vec<_> = msgs
            .iter()
            .filter(|(_, m)| matches!(m, BasilMsg::Read(_)))
            .collect();
        // Default read quorum: send to 2f + 1 = 3 replicas.
        assert_eq!(reads.len(), 3);
        assert_eq!(client.stats().reads_issued, 1);
    }

    #[test]
    fn empty_transaction_commits_immediately() {
        let mut client = client_with(vec![TxProfile::new("empty", vec![])]);
        let mut ctx = ctx_at(1);
        client.on_start(&mut ctx);
        assert_eq!(client.stats().committed, 1);
        assert!(client.is_stopped());
    }

    #[test]
    fn generator_exhaustion_stops_the_client() {
        let mut client = client_with(vec![]);
        let mut ctx = ctx_at(1);
        client.on_start(&mut ctx);
        assert!(client.is_stopped());
        assert!(sent_messages(&ctx).is_empty());
    }

    #[test]
    fn timestamps_are_strictly_monotonic() {
        let mut client = client_with(vec![]);
        let ctx = ctx_at(5);
        let a = client.fresh_timestamp(&ctx);
        let b = client.fresh_timestamp(&ctx);
        let c = client.fresh_timestamp(&ctx);
        assert!(a < b && b < c);
        assert_eq!(a.client, ClientId(1));
    }

    #[test]
    fn rmw_applies_delta_to_buffered_value() {
        assert_eq!(apply_delta(&Value::from_u64(10), 5), Value::from_u64(15));
        assert_eq!(apply_delta(&Value::from_u64(10), -4), Value::from_u64(6));
        assert_eq!(apply_delta(&Value::from_u64(3), -10), Value::from_u64(0));
        assert_eq!(apply_delta(&Value::empty(), 7), Value::from_u64(7));
    }

    #[test]
    fn read_your_own_write_does_not_hit_the_network() {
        let profile = TxProfile::new(
            "rw",
            vec![
                Op::Write(Key::new("x"), Value::from_u64(3)),
                Op::RmwAdd {
                    key: Key::new("x"),
                    delta: 4,
                },
            ],
        );
        let mut client = client_with(vec![profile]);
        let mut ctx = ctx_at(1);
        client.on_start(&mut ctx);
        // No read requests: the RMW was satisfied from the write buffer, and
        // the transaction went straight to prepare with x = 7.
        assert_eq!(client.stats().reads_issued, 0);
        let st1 = sent_messages(&ctx)
            .into_iter()
            .find_map(|(_, m)| match m {
                BasilMsg::St1(st1) => Some(st1),
                _ => None,
            })
            .expect("prepare sent");
        assert_eq!(
            st1.tx.written_value(&Key::new("x")),
            Some(&Value::from_u64(7))
        );
    }

    #[test]
    fn logging_shard_is_deterministic_and_among_involved() {
        let involved = vec![ShardId(0), ShardId(1), ShardId(2)];
        let txid = TxId::from_bytes([7; 32]);
        let a = BasilClient::logging_shard(txid, &involved);
        let b = BasilClient::logging_shard(txid, &involved);
        assert_eq!(a, b);
        assert!(involved.contains(&a));
    }

    /// A fast-path commit certificate for `tx` signed by all six replicas of
    /// shard 0 under the test registry.
    fn valid_commit_cert(tx: &Transaction, votes_n: u32) -> Arc<DecisionCert> {
        let votes: Vec<SignedSt1Reply> = (0..votes_n)
            .map(|i| {
                let rid = ReplicaId::new(ShardId(0), i);
                let body = crate::messages::St1ReplyBody {
                    txid: tx.id(),
                    replica: rid,
                    vote: ProtoVote::Commit,
                };
                let mut engine = SigEngine::new(NodeId::Replica(rid), registry(), &cfg());
                let (proof, _) = engine.sign(&body.signed_bytes());
                SignedSt1Reply {
                    body,
                    proof,
                    conflict: None,
                }
            })
            .collect();
        Arc::new(DecisionCert::Commit(CommitCert {
            txid: tx.id(),
            fast_votes: vec![ShardVotes {
                txid: tx.id(),
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                votes,
                conflict: None,
            }],
            slow: None,
        }))
    }

    #[test]
    fn writeback_cert_skips_reverification_only_for_the_cached_allocation() {
        let mut client = client_with(vec![]);
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(1_000, ClientId(7)));
        b.record_write(Key::new("x"), Value::from_u64(1));
        let tx = b.build_shared();
        let cert = valid_commit_cert(&tx, 6);

        // First arrival: full verification (cache miss), then cached.
        let mut ctx = ctx_at(1);
        client.handle_incoming_cert(
            &mut ctx,
            Writeback {
                cert: Arc::clone(&cert),
                tx: Some(Arc::clone(&tx)),
            },
        );
        assert_eq!(client.stats().cert_cache_misses, 1);
        assert_eq!(client.stats().cert_cache_hits, 0);

        // Same shared allocation again: accepted from the cache, free.
        let mut ctx2 = ctx_at(2);
        client.handle_incoming_cert(
            &mut ctx2,
            Writeback {
                cert: Arc::clone(&cert),
                tx: Some(Arc::clone(&tx)),
            },
        );
        assert_eq!(client.stats().cert_cache_hits, 1);
        assert!(
            ctx2.outputs().is_empty(),
            "cache hit charges no verification cost"
        );

        // Equal content in a different allocation does not hit: ptr identity
        // is the spoof-proof condition.
        let clone_alloc = valid_commit_cert(&tx, 6);
        let mut ctx3 = ctx_at(3);
        client.handle_incoming_cert(
            &mut ctx3,
            Writeback {
                cert: clone_alloc,
                tx: Some(Arc::clone(&tx)),
            },
        );
        assert_eq!(client.stats().cert_cache_misses, 2);

        // A bogus certificate reusing a cached txid is still rejected: it is
        // a different allocation, so it takes (and fails) full verification.
        let bogus = valid_commit_cert(&tx, 2);
        let mut ctx4 = ctx_at(4);
        client.handle_incoming_cert(
            &mut ctx4,
            Writeback {
                cert: bogus,
                tx: Some(Arc::clone(&tx)),
            },
        );
        assert_eq!(client.stats().cert_cache_misses, 3);
        assert_eq!(client.stats().cert_cache_hits, 1, "no spoofed hit");
    }

    #[test]
    fn validated_cert_cache_evicts_fifo() {
        let mut cache = ValidatedCertCache::with_capacity(2);
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(1, ClientId(1)));
        b.record_write(Key::new("x"), Value::from_u64(1));
        let cert = valid_commit_cert(&b.build(), 6);
        let ids: Vec<TxId> = (0u8..3).map(|i| TxId::from_bytes([i; 32])).collect();
        for id in &ids {
            cache.insert(*id, Arc::clone(&cert));
        }
        assert!(!cache.contains(&ids[0], &cert), "oldest entry evicted");
        assert!(cache.contains(&ids[1], &cert));
        assert!(cache.contains(&ids[2], &cert));
        // Re-inserting an existing key refreshes the value without growing.
        cache.insert(ids[1], Arc::clone(&cert));
        assert_eq!(cache.certs.len(), 2);
    }

    #[test]
    fn client_stats_latency_and_commit_rate() {
        let mut stats = ClientStats::default();
        assert_eq!(stats.mean_latency_ms(), 0.0);
        assert_eq!(stats.commit_rate(), 1.0);
        stats.latency.record(2_000_000);
        stats.latency.record(4_000_000);
        stats.committed = 2;
        stats.aborted_attempts = 2;
        assert!((stats.mean_latency_ms() - 3.0).abs() < 1e-9);
        assert!((stats.commit_rate() - 0.5).abs() < 1e-9);
    }
}
