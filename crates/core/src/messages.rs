//! The Basil wire protocol.
//!
//! Naming follows the paper: `READ`/read replies for the execution phase,
//! `ST1`/`ST1R` for stage one of the prepare phase, `ST2`/`ST2R` for the
//! decision-logging stage, writeback messages carrying commit/abort
//! certificates, and the fallback messages `RP` (recovery prepare),
//! `InvokeFB`, `ElectFB`, and `DecFB` of Section 5.
//!
//! Every reply that may end up inside a certificate carries a
//! [`basil_crypto::BatchProof`], which covers both individually signed and
//! batch-signed replies (Section 4.4). Client-originated requests carry a
//! single-leaf proof. When signatures are disabled deployment-wide
//! (`Basil-NoProofs`) the proofs are absent.

use crate::certs::DecisionCert;
use crate::crypto_engine::SignedPayload;
use basil_common::{Key, ReplicaId, Timestamp, TxId, Value};
use basil_crypto::BatchProof;
use basil_store::Transaction;
use std::sync::Arc;

/// A fallback view number (per transaction).
pub type View = u64;

/// A replica's vote on a transaction in stage ST1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoVote {
    /// Commit vote.
    Commit,
    /// Abort vote (optionally justified by a conflict certificate carried
    /// alongside in the reply).
    Abort,
}

impl ProtoVote {
    /// True for [`ProtoVote::Commit`].
    pub fn is_commit(&self) -> bool {
        matches!(self, ProtoVote::Commit)
    }

    fn tag(&self) -> u8 {
        match self {
            ProtoVote::Commit => 1,
            ProtoVote::Abort => 2,
        }
    }
}

/// A two-phase-commit decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtoDecision {
    /// The transaction commits.
    Commit,
    /// The transaction aborts.
    Abort,
}

impl ProtoDecision {
    /// True for [`ProtoDecision::Commit`].
    pub fn is_commit(&self) -> bool {
        matches!(self, ProtoDecision::Commit)
    }

    fn tag(&self) -> u8 {
        match self {
            ProtoDecision::Commit => 1,
            ProtoDecision::Abort => 2,
        }
    }
}

// ---------------------------------------------------------------------------
// Execution phase
// ---------------------------------------------------------------------------

/// Client read request (`READ` in the paper).
#[derive(Clone, Debug)]
pub struct ReadRequest {
    /// Client-chosen request identifier, echoed in the reply.
    pub req_id: u64,
    /// Key to read.
    pub key: Key,
    /// The reading transaction's timestamp (used for version selection and
    /// recorded as the key's RTS).
    pub ts: Timestamp,
    /// Client authentication.
    pub auth: Option<BatchProof>,
}

impl SignedPayload for ReadRequest {
    fn encoded_len(&self) -> usize {
        4 + 8 + 8 + 8 + self.key.len()
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl ReadRequest {
    /// Canonical bytes covered by the client's signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.key.len());
        out.extend_from_slice(b"READ");
        out.extend_from_slice(&self.req_id.to_be_bytes());
        out.extend_from_slice(&self.ts.time.to_be_bytes());
        out.extend_from_slice(&self.ts.client.0.to_be_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out
    }
}

/// The committed half of a read reply: the newest committed version visible
/// to the reader, together with the certificate proving it committed.
#[derive(Clone, Debug)]
pub struct CommittedRead {
    /// Version timestamp (the writer's transaction timestamp).
    pub version: Timestamp,
    /// The value.
    pub value: Value,
    /// The writing transaction.
    pub txid: TxId,
    /// Commit certificate for the writing transaction, shared with the
    /// replica's certificate table (a reference-count bump per reply, not a
    /// deep copy). `None` only for the initial (genesis) versions loaded at
    /// deployment time.
    pub cert: Option<Arc<DecisionCert>>,
}

/// The prepared half of a read reply: the newest prepared-but-uncommitted
/// version visible to the reader. The full transaction is included so that
/// any reader can later take it upon itself to finish the transaction
/// (Section 5: "ST1 messages contain all of T's planned writes").
#[derive(Clone, Debug)]
pub struct PreparedRead {
    /// The preparing transaction (its timestamp is the version), shared with
    /// the replica's prepared set.
    pub tx: Arc<Transaction>,
}

/// Reply to a [`ReadRequest`].
#[derive(Clone, Debug)]
pub struct ReadReplyBody {
    /// Echo of the request identifier.
    pub req_id: u64,
    /// The key read.
    pub key: Key,
    /// Newest committed version below the reader's timestamp.
    pub committed: Option<CommittedRead>,
    /// Newest prepared version below the reader's timestamp.
    pub prepared: Option<PreparedRead>,
}

impl SignedPayload for ReadReplyBody {
    fn encoded_len(&self) -> usize {
        let committed = match &self.committed {
            Some(c) => 1 + 8 + 8 + 32 + c.value.len(),
            None => 1,
        };
        let prepared = match &self.prepared {
            Some(_) => 1 + 32,
            None => 1,
        };
        5 + 8 + self.key.len() + committed + prepared
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl ReadReplyBody {
    /// Canonical bytes covered by the replica's (batched) signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(b"READR");
        out.extend_from_slice(&self.req_id.to_be_bytes());
        out.extend_from_slice(self.key.as_bytes());
        match &self.committed {
            Some(c) => {
                out.push(1);
                out.extend_from_slice(&c.version.time.to_be_bytes());
                out.extend_from_slice(&c.version.client.0.to_be_bytes());
                out.extend_from_slice(c.txid.as_bytes());
                out.extend_from_slice(c.value.as_bytes());
            }
            None => out.push(0),
        }
        match &self.prepared {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(p.tx.id().as_bytes());
            }
            None => out.push(0),
        }
        out
    }
}

/// A signed read reply.
#[derive(Clone, Debug)]
pub struct ReadReply {
    /// Reply payload.
    pub body: ReadReplyBody,
    /// Replica signature (batched).
    pub proof: Option<BatchProof>,
}

// ---------------------------------------------------------------------------
// Prepare phase
// ---------------------------------------------------------------------------

/// Stage ST1: the prepare request carrying the full transaction.
#[derive(Clone, Debug)]
pub struct St1 {
    /// The transaction to prepare. Shared: the fan-out to every replica of
    /// every involved shard clones the `Arc`, not the read/write sets, and
    /// the replica indexes the same allocation into its store.
    pub tx: Arc<Transaction>,
    /// Client authentication over the transaction encoding.
    pub auth: Option<BatchProof>,
    /// True when this ST1 is a recovery prepare (`RP`) sent by a client
    /// trying to finish someone else's stalled transaction; replicas register
    /// the sender as an interested client and reply with whatever state they
    /// already have.
    pub recovery: bool,
}

impl SignedPayload for St1 {
    fn encoded_len(&self) -> usize {
        self.tx.encoded().len() + 3
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl St1 {
    /// Canonical bytes covered by the client's signature. The transaction
    /// part is the memoized canonical encoding, so only the first call per
    /// transaction serializes; the rest are copies.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let encoded = self.tx.encoded();
        let mut out = Vec::with_capacity(encoded.len() + 3);
        out.extend_from_slice(encoded);
        out.extend_from_slice(b"ST1");
        out
    }
}

/// Body of an `ST1R` vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct St1ReplyBody {
    /// The transaction voted on.
    pub txid: TxId,
    /// The voting replica (also bound by the signature).
    pub replica: ReplicaId,
    /// The replica's vote.
    pub vote: ProtoVote,
}

impl SignedPayload for St1ReplyBody {
    fn encoded_len(&self) -> usize {
        4 + 32 + 4 + 4 + 1
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl St1ReplyBody {
    /// Canonical bytes covered by the replica's (batched) signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(b"ST1R");
        out.extend_from_slice(self.txid.as_bytes());
        out.extend_from_slice(&self.replica.shard.0.to_be_bytes());
        out.extend_from_slice(&self.replica.index.to_be_bytes());
        out.push(self.vote.tag());
        out
    }
}

/// A signed `ST1R` vote, as aggregated into vote tallies and certificates.
#[derive(Clone, Debug)]
pub struct SignedSt1Reply {
    /// Vote payload.
    pub body: St1ReplyBody,
    /// Replica signature (batched).
    pub proof: Option<BatchProof>,
    /// Optional evidence for an abort vote: a commit certificate of a
    /// conflicting transaction (fast-abort case 5 of Section 4.2), shared
    /// with the replica's certificate table.
    pub conflict: Option<Arc<DecisionCert>>,
}

/// Stage ST2: the client logs its tentative 2PC decision on the logging
/// shard `S_log`.
#[derive(Clone, Debug)]
pub struct St2 {
    /// The transaction the decision is for.
    pub txid: TxId,
    /// The decision being logged.
    pub decision: ProtoDecision,
    /// The per-shard vote tallies justifying the decision.
    pub shard_votes: Vec<crate::certs::ShardVotes>,
    /// View in which the decision is proposed (`0` for the original client).
    pub view: View,
    /// Client authentication.
    pub auth: Option<BatchProof>,
}

impl SignedPayload for St2 {
    fn encoded_len(&self) -> usize {
        3 + 32 + 1 + 8
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl St2 {
    /// Canonical bytes covered by the client's signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(b"ST2");
        out.extend_from_slice(self.txid.as_bytes());
        out.push(self.decision.tag());
        out.extend_from_slice(&self.view.to_be_bytes());
        out
    }
}

/// Body of an `ST2R` acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct St2ReplyBody {
    /// The transaction.
    pub txid: TxId,
    /// The acknowledging replica (also bound by the signature).
    pub replica: ReplicaId,
    /// The decision this replica has logged.
    pub decision: ProtoDecision,
    /// The view in which the logged decision was adopted.
    pub view_decision: View,
    /// The replica's current view for this transaction.
    pub view_current: View,
}

impl SignedPayload for St2ReplyBody {
    fn encoded_len(&self) -> usize {
        4 + 32 + 4 + 4 + 1 + 8 + 8
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl St2ReplyBody {
    /// Canonical bytes covered by the replica's signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(56);
        out.extend_from_slice(b"ST2R");
        out.extend_from_slice(self.txid.as_bytes());
        out.extend_from_slice(&self.replica.shard.0.to_be_bytes());
        out.extend_from_slice(&self.replica.index.to_be_bytes());
        out.push(self.decision.tag());
        out.extend_from_slice(&self.view_decision.to_be_bytes());
        out.extend_from_slice(&self.view_current.to_be_bytes());
        out
    }
}

/// A signed `ST2R`.
#[derive(Clone, Debug)]
pub struct SignedSt2Reply {
    /// Acknowledgement payload.
    pub body: St2ReplyBody,
    /// Replica signature.
    pub proof: Option<BatchProof>,
}

// ---------------------------------------------------------------------------
// Writeback phase
// ---------------------------------------------------------------------------

/// Asynchronous writeback: the client forwards the decision certificate to
/// every participating shard.
#[derive(Clone, Debug)]
pub struct Writeback {
    /// The decision certificate (`C-CERT` or `A-CERT`). Shared: the
    /// per-shard fan-out, the replica's certificate table, and forwards to
    /// interested clients all hold the same allocation.
    pub cert: Arc<DecisionCert>,
    /// The transaction body, included so that replicas that never received
    /// the `ST1` (e.g. they were partitioned during prepare) can still apply
    /// the writes.
    pub tx: Option<Arc<Transaction>>,
}

// ---------------------------------------------------------------------------
// Fallback (Section 5)
// ---------------------------------------------------------------------------

/// `InvokeFB`: a client asks the logging shard to elect a fallback leader for
/// a stalled transaction whose ST2 state has diverged.
#[derive(Clone, Debug)]
pub struct InvokeFb {
    /// The stalled transaction.
    pub txid: TxId,
    /// The signed current views the client gathered from `RP` replies; these
    /// justify the view the replicas should move to (rules R1/R2).
    pub views: Vec<SignedSt2Reply>,
    /// Client authentication.
    pub auth: Option<BatchProof>,
}

impl SignedPayload for InvokeFb {
    fn encoded_len(&self) -> usize {
        3 + 32 + 4
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl InvokeFb {
    /// Canonical bytes covered by the client's signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(b"IFB");
        out.extend_from_slice(self.txid.as_bytes());
        out.extend_from_slice(&(self.views.len() as u32).to_be_bytes());
        out
    }
}

/// Body of an `ElectFB` message: a replica nominates the fallback leader of
/// its current view and reports its logged decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectFbBody {
    /// The stalled transaction.
    pub txid: TxId,
    /// The nominating replica (also bound by the signature).
    pub replica: ReplicaId,
    /// The decision this replica has logged, if any.
    pub decision: Option<ProtoDecision>,
    /// The view the replica is electing a leader for.
    pub view: View,
}

impl SignedPayload for ElectFbBody {
    fn encoded_len(&self) -> usize {
        7 + 32 + 4 + 4 + 1 + 8
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl ElectFbBody {
    /// Canonical bytes covered by the replica's signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(b"ELECTFB");
        out.extend_from_slice(self.txid.as_bytes());
        out.extend_from_slice(&self.replica.shard.0.to_be_bytes());
        out.extend_from_slice(&self.replica.index.to_be_bytes());
        match self.decision {
            Some(d) => out.push(d.tag()),
            None => out.push(0),
        }
        out.extend_from_slice(&self.view.to_be_bytes());
        out
    }
}

/// A signed `ElectFB`.
#[derive(Clone, Debug)]
pub struct SignedElectFb {
    /// Election payload.
    pub body: ElectFbBody,
    /// Replica signature.
    pub proof: Option<BatchProof>,
}

/// `DecFB`: the elected fallback leader proposes a reconciled decision,
/// justified by the quorum of `ElectFB` messages that elected it.
#[derive(Clone, Debug)]
pub struct DecFb {
    /// The stalled transaction.
    pub txid: TxId,
    /// The reconciled decision (majority of the reported logged decisions).
    pub decision: ProtoDecision,
    /// The view in which this leader was elected.
    pub view: View,
    /// The `ElectFB` messages proving the sender's leadership.
    pub elect_proof: Vec<SignedElectFb>,
    /// Leader signature.
    pub auth: Option<BatchProof>,
}

impl SignedPayload for DecFb {
    fn encoded_len(&self) -> usize {
        5 + 32 + 1 + 8
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.signed_bytes()
    }
}

impl DecFb {
    /// Canonical bytes covered by the leader's signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(b"DECFB");
        out.extend_from_slice(self.txid.as_bytes());
        out.push(self.decision.tag());
        out.extend_from_slice(&self.view.to_be_bytes());
        out
    }
}

// ---------------------------------------------------------------------------
// Crash-recovery catch-up
// ---------------------------------------------------------------------------

/// Replica -> shard peers: a replica that lost its memory (amnesia restart)
/// has replayed its WAL and asks for the decisions it missed. Unsigned: the
/// reply carries self-validating certificates, so a forged request can at
/// worst waste a peer's bandwidth, never poison state.
#[derive(Clone, Debug)]
pub struct CatchUpRequest {
    /// The recovering replica (replies are addressed back to it).
    pub from: ReplicaId,
}

/// Shard peer -> recovering replica: every decision certificate the peer has
/// applied, each with the transaction body when the peer still holds it
/// (commits need the body to re-install writes). The recovering replica
/// validates every certificate before applying it — a Byzantine peer can
/// send garbage, but not a certificate that verifies.
#[derive(Clone, Debug)]
pub struct CatchUpReply {
    /// The responding peer.
    pub from: ReplicaId,
    /// Applied decisions: `(certificate, transaction body if available)`.
    pub entries: Vec<(Arc<DecisionCert>, Option<Arc<Transaction>>)>,
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// Client-side timers (delivered as self-messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientTimer {
    /// A read has not gathered enough replies.
    ReadTimeout {
        /// The outstanding request.
        req_id: u64,
    },
    /// The prepare phase (ST1) has not completed.
    PrepareTimeout {
        /// The transaction being prepared.
        txid: TxId,
    },
    /// The decision-logging stage (ST2) has not completed.
    St2Timeout {
        /// The transaction being logged.
        txid: TxId,
    },
    /// A dependency recovery attempt should be (re)driven.
    FallbackTimeout {
        /// The stalled dependency.
        txid: TxId,
    },
    /// The retry backoff after an abort has elapsed.
    RetryBackoff,
    /// An open-loop transaction arrival is due (Poisson pacing). Carries no
    /// payload: the client pulls the next profile from its generator and the
    /// next gap from the arrival distribution when the timer fires.
    OpenLoopArrival,
}

/// Replica-side timers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaTimer {
    /// Flush a partially filled reply batch (Section 4.4).
    BatchFlush,
    /// Run a periodic store garbage-collection sweep (enabled by
    /// `BasilConfig::gc_interval`; see `BasilReplica` for the watermark
    /// rule).
    GcSweep,
    /// The post-amnesia catch-up window has elapsed: stop waiting for
    /// further `CatchUpReply` messages and resume normal service with
    /// whatever decisions were gathered.
    CatchUpDeadline,
}

// ---------------------------------------------------------------------------
// Top-level message enum
// ---------------------------------------------------------------------------

/// Every message exchanged in a Basil deployment.
#[derive(Clone, Debug)]
pub enum BasilMsg {
    /// Client -> replica: versioned read.
    Read(ReadRequest),
    /// Replica -> client: read reply.
    ReadReply(ReadReply),
    /// Client -> replica: stage ST1 prepare (also used as `RP`).
    St1(St1),
    /// Replica -> client: ST1 vote.
    St1Reply(SignedSt1Reply),
    /// Client -> replica (logging shard): stage ST2 decision logging.
    St2(St2),
    /// Replica -> client: ST2 acknowledgement.
    St2Reply(SignedSt2Reply),
    /// Client -> replica: writeback of the decision certificate.
    Writeback(Writeback),
    /// Client -> replica: remove the RTS left by an abandoned execution-phase
    /// read (client-side `Abort()`).
    RtsRelease {
        /// Key whose RTS should be dropped.
        key: Key,
        /// The timestamp to remove.
        ts: Timestamp,
    },
    /// Client -> replica (logging shard): start fallback leader election.
    InvokeFb(InvokeFb),
    /// Replica -> fallback leader: leader nomination.
    ElectFb(SignedElectFb),
    /// Fallback leader -> replicas: reconciled decision.
    DecFb(DecFb),
    /// Recovering replica -> shard peers: request missed decisions after an
    /// amnesia restart.
    CatchUpRequest(CatchUpRequest),
    /// Shard peer -> recovering replica: applied decision certificates.
    CatchUpReply(CatchUpReply),
    /// Client self-message timers.
    ClientTimer(ClientTimer),
    /// Replica self-message timers.
    ReplicaTimer(ReplicaTimer),
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{ClientId, ShardId};
    use basil_store::TransactionBuilder;

    fn ts(t: u64, c: u64) -> Timestamp {
        Timestamp::from_nanos(t, ClientId(c))
    }

    fn rep(i: u32) -> ReplicaId {
        ReplicaId::new(ShardId(0), i)
    }

    #[test]
    fn vote_and_decision_tags_are_distinct() {
        assert_ne!(ProtoVote::Commit.tag(), ProtoVote::Abort.tag());
        assert_ne!(ProtoDecision::Commit.tag(), ProtoDecision::Abort.tag());
        assert!(ProtoVote::Commit.is_commit());
        assert!(!ProtoVote::Abort.is_commit());
        assert!(ProtoDecision::Commit.is_commit());
        assert!(!ProtoDecision::Abort.is_commit());
    }

    #[test]
    fn signed_bytes_bind_the_vote() {
        let a = St1ReplyBody {
            txid: TxId::from_bytes([1; 32]),
            replica: rep(0),
            vote: ProtoVote::Commit,
        };
        let b = St1ReplyBody {
            txid: TxId::from_bytes([1; 32]),
            replica: rep(0),
            vote: ProtoVote::Abort,
        };
        assert_ne!(a.signed_bytes(), b.signed_bytes());
        let c = St1ReplyBody {
            txid: TxId::from_bytes([2; 32]),
            replica: rep(0),
            vote: ProtoVote::Commit,
        };
        assert_ne!(a.signed_bytes(), c.signed_bytes());
        let d = St1ReplyBody {
            txid: TxId::from_bytes([1; 32]),
            replica: rep(1),
            vote: ProtoVote::Commit,
        };
        assert_ne!(a.signed_bytes(), d.signed_bytes());
    }

    #[test]
    fn st2r_bytes_bind_views_and_decision() {
        let base = St2ReplyBody {
            txid: TxId::from_bytes([3; 32]),
            replica: rep(2),
            decision: ProtoDecision::Commit,
            view_decision: 0,
            view_current: 0,
        };
        let mut other = base.clone();
        other.view_current = 1;
        assert_ne!(base.signed_bytes(), other.signed_bytes());
        let mut flipped = base.clone();
        flipped.decision = ProtoDecision::Abort;
        assert_ne!(base.signed_bytes(), flipped.signed_bytes());
    }

    #[test]
    fn read_request_and_reply_bytes_are_content_sensitive() {
        let req = ReadRequest {
            req_id: 9,
            key: Key::new("x"),
            ts: ts(100, 1),
            auth: None,
        };
        let mut req2 = req.clone();
        req2.ts = ts(101, 1);
        assert_ne!(req.signed_bytes(), req2.signed_bytes());

        let reply = ReadReplyBody {
            req_id: 9,
            key: Key::new("x"),
            committed: Some(CommittedRead {
                version: ts(50, 2),
                value: Value::from_u64(5),
                txid: TxId::from_bytes([4; 32]),
                cert: None,
            }),
            prepared: None,
        };
        let mut reply2 = reply.clone();
        reply2.committed.as_mut().expect("present").value = Value::from_u64(6);
        assert_ne!(reply.signed_bytes(), reply2.signed_bytes());
    }

    #[test]
    fn electfb_bytes_distinguish_absent_decision() {
        let body = |d: Option<ProtoDecision>| ElectFbBody {
            txid: TxId::from_bytes([7; 32]),
            replica: rep(4),
            decision: d,
            view: 3,
        };
        let none = body(None).signed_bytes();
        let commit = body(Some(ProtoDecision::Commit)).signed_bytes();
        let abort = body(Some(ProtoDecision::Abort)).signed_bytes();
        assert_ne!(none, commit);
        assert_ne!(commit, abort);
    }

    /// `encoded_len` feeds the cost model in simulated-crypto runs, so it
    /// must equal the materialized encoding's length *exactly* — a drift
    /// would silently change simulated results.
    #[test]
    fn encoded_len_matches_signed_bytes_exactly() {
        fn check<P: SignedPayload>(p: &P, what: &str) {
            assert_eq!(
                p.encoded_len(),
                p.signed_like_len(),
                "{what}: encoded_len drifted from signed_bytes"
            );
        }
        trait SignedLike: SignedPayload {
            fn signed_like_len(&self) -> usize {
                self.to_bytes().len()
            }
        }
        impl<T: SignedPayload> SignedLike for T {}

        let read = ReadRequest {
            req_id: 9,
            key: Key::new("some-longer-key-17"),
            ts: ts(100, 1),
            auth: None,
        };
        check(&read, "ReadRequest");

        let mut b = TransactionBuilder::new(ts(10, 1));
        b.record_write(Key::new("k"), Value::from_u64(1));
        b.record_read(Key::new("r"), ts(3, 2));
        let tx = b.build_shared();
        for (committed, prepared) in [
            (None, None),
            (
                Some(CommittedRead {
                    version: ts(50, 2),
                    value: Value::from_u64(5),
                    txid: TxId::from_bytes([4; 32]),
                    cert: None,
                }),
                Some(PreparedRead {
                    tx: std::sync::Arc::clone(&tx),
                }),
            ),
        ] {
            let reply = ReadReplyBody {
                req_id: 9,
                key: Key::new("x"),
                committed,
                prepared,
            };
            check(&reply, "ReadReplyBody");
        }

        let st1 = St1 {
            tx: std::sync::Arc::clone(&tx),
            auth: None,
            recovery: false,
        };
        check(&st1, "St1");
        check(
            &St1ReplyBody {
                txid: tx.id(),
                replica: rep(1),
                vote: ProtoVote::Commit,
            },
            "St1ReplyBody",
        );
        check(
            &St2 {
                txid: tx.id(),
                decision: ProtoDecision::Abort,
                shard_votes: Vec::new(),
                view: 3,
                auth: None,
            },
            "St2",
        );
        check(
            &St2ReplyBody {
                txid: tx.id(),
                replica: rep(2),
                decision: ProtoDecision::Commit,
                view_decision: 1,
                view_current: 2,
            },
            "St2ReplyBody",
        );
        check(
            &InvokeFb {
                txid: tx.id(),
                views: Vec::new(),
                auth: None,
            },
            "InvokeFb",
        );
        check(
            &ElectFbBody {
                txid: tx.id(),
                replica: rep(3),
                decision: Some(ProtoDecision::Abort),
                view: 7,
            },
            "ElectFbBody",
        );
        check(
            &DecFb {
                txid: tx.id(),
                decision: ProtoDecision::Commit,
                view: 7,
                elect_proof: Vec::new(),
                auth: None,
            },
            "DecFb",
        );
    }

    #[test]
    fn st1_signed_bytes_cover_transaction() {
        let mut b = TransactionBuilder::new(ts(10, 1));
        b.record_write(Key::new("k"), Value::from_u64(1));
        let st1 = St1 {
            tx: b.build_shared(),
            auth: None,
            recovery: false,
        };
        let mut b2 = TransactionBuilder::new(ts(10, 1));
        b2.record_write(Key::new("k"), Value::from_u64(2));
        let st1_other = St1 {
            tx: b2.build_shared(),
            auth: None,
            recovery: false,
        };
        assert_ne!(st1.signed_bytes(), st1_other.signed_bytes());
    }
}
