//! Signing and verification with CPU-cost accounting.
//!
//! Every protocol participant owns a [`SigEngine`]. The engine produces and
//! checks [`BatchProof`]s (single-leaf proofs for unbatched messages) and
//! returns, alongside each artifact or verdict, the CPU [`Duration`] the
//! operation would cost on the paper's testbed, which the caller charges to
//! its simulated node. In [`CryptoMode::Simulated`] the arithmetic is skipped
//! but the cost is still charged, keeping benchmark wall-clock time low
//! without changing simulated results.

use crate::config::{BasilConfig, CryptoMode};
use basil_common::{Duration, NodeId, SimTime};
use basil_crypto::batch::BatchVerifyOutcome;
use basil_crypto::merkle::MerkleProof;
use basil_crypto::sig::Signature;
use basil_crypto::{
    BatchProof, CostModel, Digest, KeyPair, KeyRegistry, MerkleFrontier, SignatureCache,
};
use std::collections::HashMap;

/// A canonical signable encoding, producible lazily.
///
/// The engine charges CPU costs from the payload *length* and only hashes
/// the payload bytes when the deployment runs real cryptography
/// ([`CryptoMode::Real`]). Message bodies implement this with an exact
/// `encoded_len` (unit-tested against `signed_bytes().len()`), so the
/// simulated-crypto hot path — every figure experiment — never materializes
/// an encoding at all. Costs are computed from the same lengths either
/// way, so simulated results are bit-identical.
pub trait SignedPayload {
    /// Exact length of [`SignedPayload::to_bytes`]'s result.
    fn encoded_len(&self) -> usize;
    /// Materializes the canonical encoding.
    fn to_bytes(&self) -> Vec<u8>;
}

impl SignedPayload for [u8] {
    fn encoded_len(&self) -> usize {
        self.len()
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.to_vec()
    }
}

impl SignedPayload for Vec<u8> {
    fn encoded_len(&self) -> usize {
        self.len()
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.clone()
    }
}

impl<const N: usize> SignedPayload for [u8; N] {
    fn encoded_len(&self) -> usize {
        N
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.to_vec()
    }
}

impl<P: SignedPayload + ?Sized> SignedPayload for &P {
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
    fn to_bytes(&self) -> Vec<u8> {
        (**self).to_bytes()
    }
}

/// A node's signing/verification facility.
pub struct SigEngine {
    keypair: KeyPair,
    registry: KeyRegistry,
    cache: SignatureCache,
    cost: CostModel,
    mode: CryptoMode,
    enabled: bool,
    /// Counter used to give each simulated-mode signature (or batch of
    /// signatures) a distinct root, so the verifier-side signature cache
    /// behaves as it would with real batches.
    dummy_counter: u64,
    /// Scratch Merkle accumulator reused across [`SigEngine::sign_batch`]
    /// calls, so real-crypto batch signing pays no per-flush tree rebuild
    /// and no steady-state allocation.
    frontier: MerkleFrontier,
    /// Current simulated time, advanced by the owning actor via
    /// [`SigEngine::set_now`]; anchors the grouped-verification window.
    now: SimTime,
    /// Width of the same-signer root co-verification window
    /// (`Duration::ZERO` disables grouping).
    verify_group_window: Duration,
    /// Per-signer timestamp of the most recent *uncached* root signature
    /// verification; a subsequent uncached root from the same signer within
    /// the window joins its ed25519 batch-verification group.
    verify_groups: HashMap<NodeId, SimTime>,
    /// How many verifications were charged at the grouped (amortized) rate.
    grouped_verifies: u64,
}

impl SigEngine {
    /// Creates an engine for `node` under the given configuration.
    pub fn new(node: NodeId, registry: KeyRegistry, cfg: &BasilConfig) -> Self {
        SigEngine {
            keypair: registry.keypair(node),
            registry,
            cache: SignatureCache::new(),
            cost: cfg.cost,
            mode: cfg.crypto_mode,
            enabled: cfg.signatures_enabled(),
            dummy_counter: 0,
            frontier: MerkleFrontier::new(),
            now: SimTime::ZERO,
            verify_group_window: cfg.verify_group_window,
            verify_groups: HashMap::new(),
            grouped_verifies: 0,
        }
    }

    /// Whether signatures are produced at all (`false` in `NoProofs` runs).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Advances the engine's notion of simulated time. Actors call this when
    /// they start processing a message so that verification grouping windows
    /// track the simulation clock.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Number of verifications charged at the grouped (ed25519
    /// batch-verification) rate rather than as standalone checks.
    pub fn grouped_verifies(&self) -> u64 {
        self.grouped_verifies
    }

    /// Whether an uncached root signature from `signer` joins an open
    /// co-verification group (another uncached root from the same signer was
    /// verified within the window). Always records the event as the newest
    /// group anchor.
    fn join_verify_group(&mut self, signer: NodeId) -> bool {
        if self.verify_group_window == Duration::ZERO {
            return false;
        }
        let now = self.now;
        let grouped = match self.verify_groups.insert(signer, now) {
            Some(last) => now.since(last) <= self.verify_group_window,
            None => false,
        };
        if grouped {
            self.grouped_verifies += 1;
        }
        grouped
    }

    /// Signs a single payload. Returns `None` (at zero cost) when signatures
    /// are disabled. The payload is only materialized under real crypto.
    pub fn sign<P: SignedPayload + ?Sized>(
        &mut self,
        payload: &P,
    ) -> (Option<BatchProof>, Duration) {
        if !self.enabled {
            return (None, Duration::ZERO);
        }
        let cost = self.cost.sign_cost() + self.cost.hash_cost(payload.encoded_len());
        let proof = match self.mode {
            CryptoMode::Real => BatchProof::sign_single(&self.keypair, &payload.to_bytes()),
            CryptoMode::Simulated => {
                self.dummy_counter += 1;
                dummy_proof(self.keypair.node(), self.dummy_counter, 1)
            }
        };
        (Some(proof), cost)
    }

    /// Authenticates a client request. Requests only need point-to-point
    /// authentication (a MAC), not transferability, so the CPU cost charged
    /// is the MAC cost rather than a full signature.
    pub fn sign_request<P: SignedPayload + ?Sized>(
        &mut self,
        payload: &P,
    ) -> (Option<BatchProof>, Duration) {
        if !self.enabled {
            return (None, Duration::ZERO);
        }
        let proof = match self.mode {
            CryptoMode::Real => BatchProof::sign_single(&self.keypair, &payload.to_bytes()),
            CryptoMode::Simulated => {
                self.dummy_counter += 1;
                dummy_proof(self.keypair.node(), self.dummy_counter, 1)
            }
        };
        (Some(proof), self.cost.mac_cost())
    }

    /// Verifies a client request MAC. The payload is only materialized
    /// under real crypto.
    pub fn verify_request<P: SignedPayload + ?Sized>(
        &mut self,
        payload: &P,
        proof: Option<&BatchProof>,
    ) -> (bool, Duration) {
        if !self.enabled {
            return (true, Duration::ZERO);
        }
        let Some(proof) = proof else {
            return (false, Duration::ZERO);
        };
        match self.mode {
            CryptoMode::Real => {
                let outcome = proof.verify(&payload.to_bytes(), &self.registry, &mut self.cache);
                (outcome.valid, self.cost.mac_cost())
            }
            CryptoMode::Simulated => (true, self.cost.mac_cost()),
        }
    }

    /// Signs a batch of payloads (replica reply batching). Returns one proof
    /// per payload plus the total CPU cost of building and signing the
    /// batch. Payloads are only materialized under real crypto.
    pub fn sign_batch<P: SignedPayload>(
        &mut self,
        payloads: &[P],
    ) -> (Vec<Option<BatchProof>>, Duration) {
        if payloads.is_empty() {
            return (Vec::new(), Duration::ZERO);
        }
        if !self.enabled {
            return (vec![None; payloads.len()], Duration::ZERO);
        }
        let avg_len = payloads.iter().map(P::encoded_len).sum::<usize>() / payloads.len();
        let cost = self.cost.batch_sign_cost(payloads.len(), avg_len.max(1));
        match self.mode {
            CryptoMode::Real => {
                // Incremental frontier instead of a full tree rebuild: each
                // payload's leaf is folded in as it is encoded, and sealing
                // only materializes the O(log b) right edge. The scratch
                // frontier's allocations are recycled across batches.
                self.frontier.reset();
                for payload in payloads {
                    self.frontier.append(&payload.to_bytes());
                }
                let sealed = self.frontier.seal();
                let root = sealed.root();
                let root_signature = self.keypair.sign(root.as_bytes());
                let proofs = (0..payloads.len())
                    .map(|i| {
                        Some(BatchProof {
                            root,
                            root_signature,
                            inclusion: sealed.prove(i),
                            batch_size: payloads.len(),
                        })
                    })
                    .collect();
                (proofs, cost)
            }
            CryptoMode::Simulated => {
                self.dummy_counter += 1;
                (
                    vec![
                        Some(dummy_proof(
                            self.keypair.node(),
                            self.dummy_counter,
                            payloads.len()
                        ));
                        payloads.len()
                    ],
                    cost,
                )
            }
        }
    }

    /// Verifies a signed payload. When `proof` is `None` the message is
    /// accepted only if signatures are disabled deployment-wide. The
    /// payload is only materialized under real crypto; the charged cost is
    /// computed from the same exact length either way.
    pub fn verify<P: SignedPayload + ?Sized>(
        &mut self,
        payload: &P,
        proof: Option<&BatchProof>,
    ) -> (bool, Duration) {
        if !self.enabled {
            return (true, Duration::ZERO);
        }
        let Some(proof) = proof else {
            return (false, Duration::ZERO);
        };
        match self.mode {
            CryptoMode::Real => {
                let before_hits = self.cache.hits();
                let outcome: BatchVerifyOutcome =
                    proof.verify(&payload.to_bytes(), &self.registry, &mut self.cache);
                let cached = self.cache.hits() > before_hits;
                let cost = self.verify_charge(
                    proof,
                    payload.encoded_len().max(1),
                    cached && outcome.valid,
                    outcome.valid,
                );
                (outcome.valid, cost)
            }
            CryptoMode::Simulated => {
                // Structural acceptance; model the cache by root identity
                // (one fused lookup: hit check + miss insert).
                let cached = self.cache.check_insert(proof.root, proof.root_signature);
                let cost = self.verify_charge(proof, payload.encoded_len().max(1), cached, true);
                (true, cost)
            }
        }
    }

    /// Computes the cost of one batched-reply verification: a hash-only check
    /// on a signature-cache hit, the grouped (ed25519 batch-verification)
    /// rate when another uncached root from the same signer was verified
    /// within the flush window, and a standalone verification otherwise.
    fn verify_charge(
        &mut self,
        proof: &BatchProof,
        reply_bytes: usize,
        cached: bool,
        valid: bool,
    ) -> Duration {
        if cached {
            return self
                .cost
                .batch_verify_cost(proof.batch_size, reply_bytes, true);
        }
        if valid && self.join_verify_group(proof.signer()) {
            self.cost
                .grouped_batch_verify_cost(proof.batch_size, reply_bytes)
        } else {
            self.cost
                .batch_verify_cost(proof.batch_size, reply_bytes, false)
        }
    }

    /// Verifies a set of signed payloads (certificate validation); returns
    /// whether all were valid and the summed cost.
    pub fn verify_all<'a, P: SignedPayload + ?Sized + 'a>(
        &mut self,
        items: impl IntoIterator<Item = (&'a P, Option<&'a BatchProof>)>,
    ) -> (bool, Duration) {
        let mut all_valid = true;
        let mut total = Duration::ZERO;
        for (payload, proof) in items {
            let (ok, cost) = self.verify(payload, proof);
            all_valid &= ok;
            total += cost;
        }
        (all_valid, total)
    }

    /// The per-message (de)serialization overhead from the cost model.
    pub fn message_cost(&self) -> Duration {
        self.cost.message_cost()
    }

    /// The identity this engine signs as.
    pub fn node(&self) -> NodeId {
        self.keypair.node()
    }
}

/// A placeholder proof used in [`CryptoMode::Simulated`]: structurally valid,
/// never actually checked. The root encodes the signer and a per-engine batch
/// counter so that distinct batches have distinct roots (the verifier-side
/// signature cache then amortizes exactly as it would with real batches).
fn dummy_proof(signer: NodeId, counter: u64, batch_size: usize) -> BatchProof {
    let mut root_bytes = [0u8; 32];
    root_bytes[..8].copy_from_slice(&counter.to_be_bytes());
    match signer {
        NodeId::Client(c) => {
            root_bytes[8] = 1;
            root_bytes[9..17].copy_from_slice(&c.0.to_be_bytes());
        }
        NodeId::Replica(r) => {
            root_bytes[8] = 2;
            root_bytes[9..13].copy_from_slice(&r.shard.0.to_be_bytes());
            root_bytes[13..17].copy_from_slice(&r.index.to_be_bytes());
        }
    }
    BatchProof {
        root: Digest(root_bytes),
        root_signature: Signature {
            signer,
            tag: Digest::ZERO,
        },
        // A single-leaf inclusion proof is structurally empty (the leaf is
        // the root); building it directly skips the per-signature SHA-256
        // a MerkleTree construction would spend hashing a constant.
        inclusion: MerkleProof {
            leaf_index: 0,
            leaf_count: 1,
            siblings: Vec::new(),
        },
        batch_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BasilConfig;
    use basil_common::{ClientId, ReplicaId, ShardId};

    fn replica(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId::new(ShardId(0), i))
    }

    fn engine(mode: CryptoMode, signatures: bool) -> (SigEngine, SigEngine) {
        let mut cfg = BasilConfig::test_single_shard();
        cfg.crypto_mode = mode;
        cfg.system.signatures = signatures;
        if !signatures {
            cfg.cost = CostModel::no_proofs();
        }
        let registry = KeyRegistry::from_seed(7);
        (
            SigEngine::new(replica(0), registry.clone(), &cfg),
            SigEngine::new(NodeId::Client(ClientId(1)), registry, &cfg),
        )
    }

    /// Engines with grouped root verification opted in (it is off by
    /// default so golden scenarios keep their pinned timing).
    fn grouped_engine(mode: CryptoMode) -> (SigEngine, SigEngine) {
        let mut cfg = BasilConfig::test_single_shard();
        cfg.crypto_mode = mode;
        cfg.verify_group_window = cfg.system.batch_timeout;
        let registry = KeyRegistry::from_seed(7);
        (
            SigEngine::new(replica(0), registry.clone(), &cfg),
            SigEngine::new(NodeId::Client(ClientId(1)), registry, &cfg),
        )
    }

    #[test]
    fn real_mode_signs_and_verifies() {
        let (mut signer, mut verifier) = engine(CryptoMode::Real, true);
        let (proof, sign_cost) = signer.sign(b"vote");
        assert!(sign_cost > Duration::ZERO);
        let (ok, verify_cost) = verifier.verify(b"vote", proof.as_ref());
        assert!(ok);
        assert!(verify_cost > Duration::ZERO);
        let (bad, _) = verifier.verify(b"other", proof.as_ref());
        assert!(!bad);
    }

    #[test]
    fn missing_proof_is_rejected_when_signatures_enabled() {
        let (_, mut verifier) = engine(CryptoMode::Real, true);
        let (ok, _) = verifier.verify(b"vote", None);
        assert!(!ok);
    }

    #[test]
    fn disabled_signatures_cost_nothing_and_accept_everything() {
        let (mut signer, mut verifier) = engine(CryptoMode::Real, false);
        let (proof, cost) = signer.sign(b"vote");
        assert!(proof.is_none());
        assert_eq!(cost, Duration::ZERO);
        let (ok, vcost) = verifier.verify(b"vote", None);
        assert!(ok);
        assert_eq!(vcost, Duration::ZERO);
    }

    #[test]
    fn simulated_mode_charges_but_accepts() {
        let (mut signer, mut verifier) = engine(CryptoMode::Simulated, true);
        let (proof, cost) = signer.sign(b"vote");
        assert!(proof.is_some());
        assert!(cost > Duration::ZERO);
        let (ok, vcost) = verifier.verify(b"anything", proof.as_ref());
        assert!(ok);
        assert!(vcost > Duration::ZERO);
    }

    #[test]
    fn batch_signing_amortizes_cost_per_reply() {
        let (mut signer, mut verifier) = engine(CryptoMode::Real, true);
        let payloads: Vec<Vec<u8>> = (0..16).map(|i| format!("reply {i}").into_bytes()).collect();
        let (proofs, batch_cost) = signer.sign_batch(&payloads);
        assert_eq!(proofs.len(), 16);
        let (single, single_cost) = signer.sign(b"reply 0");
        assert!(single.is_some());
        assert!(
            batch_cost < single_cost * 16,
            "batch {batch_cost:?} should be cheaper than 16 individual signatures {:?}",
            single_cost * 16
        );
        // All proofs verify, and the second verification of the same batch
        // hits the signature cache (cheaper).
        let (ok, first_cost) = verifier.verify(&payloads[0], proofs[0].as_ref());
        assert!(ok);
        let (ok, second_cost) = verifier.verify(&payloads[1], proofs[1].as_ref());
        assert!(ok);
        assert!(second_cost < first_cost);
    }

    #[test]
    fn same_signer_roots_within_window_verify_at_the_grouped_rate() {
        let (mut signer, mut verifier) = grouped_engine(CryptoMode::Real);
        let (p1, _) = signer.sign(b"batch root a");
        let (p2, _) = signer.sign(b"batch root b");
        let (p3, _) = signer.sign(b"batch root c");

        verifier.set_now(SimTime::from_micros(100));
        let (ok, first) = verifier.verify(b"batch root a", p1.as_ref());
        assert!(ok);
        assert_eq!(verifier.grouped_verifies(), 0, "first root anchors a group");

        // Second distinct root from the same replica, inside the window:
        // co-verified at the amortized rate.
        verifier.set_now(SimTime::from_micros(300));
        let (ok, second) = verifier.verify(b"batch root b", p2.as_ref());
        assert!(ok);
        assert!(second < first, "grouped {second:?} vs standalone {first:?}");
        assert_eq!(verifier.grouped_verifies(), 1);

        // Past the window the group is closed: full price again.
        verifier.set_now(SimTime::from_micros(5_000));
        let (ok, third) = verifier.verify(b"batch root c", p3.as_ref());
        assert!(ok);
        assert_eq!(third, first);
        assert_eq!(verifier.grouped_verifies(), 1);
    }

    #[test]
    fn different_signers_never_share_a_verification_group() {
        let mut cfg = BasilConfig::test_single_shard();
        cfg.crypto_mode = CryptoMode::Simulated;
        cfg.verify_group_window = cfg.system.batch_timeout;
        let registry = KeyRegistry::from_seed(7);
        let mut a = SigEngine::new(replica(0), registry.clone(), &cfg);
        let mut b = SigEngine::new(replica(1), registry.clone(), &cfg);
        let mut verifier = SigEngine::new(NodeId::Client(ClientId(1)), registry, &cfg);
        let (pa, _) = a.sign(b"x");
        let (pb, _) = b.sign(b"y");
        verifier.set_now(SimTime::from_micros(10));
        let (_, first) = verifier.verify(b"x", pa.as_ref());
        verifier.set_now(SimTime::from_micros(20));
        let (_, second) = verifier.verify(b"y", pb.as_ref());
        assert_eq!(first, second, "cross-signer roots stay standalone");
        assert_eq!(verifier.grouped_verifies(), 0);
    }

    #[test]
    fn verify_grouping_is_off_by_default() {
        // Default configurations leave the window at zero; every uncached
        // root pays the standalone verification price.
        let mut cfg = BasilConfig::test_single_shard();
        cfg.crypto_mode = CryptoMode::Real;
        let registry = KeyRegistry::from_seed(7);
        let mut signer = SigEngine::new(replica(0), registry.clone(), &cfg);
        let mut verifier = SigEngine::new(NodeId::Client(ClientId(1)), registry, &cfg);
        let (p1, _) = signer.sign(b"a");
        let (p2, _) = signer.sign(b"b");
        verifier.set_now(SimTime::from_micros(10));
        let (_, first) = verifier.verify(b"a", p1.as_ref());
        verifier.set_now(SimTime::from_micros(11));
        let (_, second) = verifier.verify(b"b", p2.as_ref());
        assert_eq!(first, second);
        assert_eq!(verifier.grouped_verifies(), 0);
    }

    #[test]
    fn sign_batch_frontier_matches_one_shot_tree() {
        use basil_crypto::MerkleTree;
        let (mut signer, _) = engine(CryptoMode::Real, true);
        let payloads: Vec<Vec<u8>> = (0..13).map(|i| format!("reply {i}").into_bytes()).collect();
        let (proofs, _) = signer.sign_batch(&payloads);
        let tree = MerkleTree::build(&payloads);
        for (i, proof) in proofs.iter().enumerate() {
            let proof = proof.as_ref().expect("signed");
            assert_eq!(proof.root, tree.root());
            assert_eq!(proof.inclusion, tree.prove(i));
        }
        // The scratch frontier resets cleanly between batches.
        let (proofs2, _) = signer.sign_batch(&payloads[..5]);
        let tree2 = MerkleTree::build(&payloads[..5]);
        assert_eq!(proofs2[0].as_ref().expect("signed").root, tree2.root());
    }

    #[test]
    fn verify_all_aggregates() {
        let (mut signer, mut verifier) = engine(CryptoMode::Real, true);
        let (p1, _) = signer.sign(b"a");
        let (p2, _) = signer.sign(b"b");
        let (ok, cost) = verifier.verify_all([
            (b"a".as_slice(), p1.as_ref()),
            (b"b".as_slice(), p2.as_ref()),
        ]);
        assert!(ok);
        assert!(cost > Duration::ZERO);
        let (ok, _) = verifier.verify_all([
            (b"a".as_slice(), p1.as_ref()),
            (b"tampered".as_slice(), p2.as_ref()),
        ]);
        assert!(!ok);
    }
}
