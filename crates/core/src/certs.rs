//! Vote tallies and decision certificates (`V-CERT`, `C-CERT`, `A-CERT`).
//!
//! A shard's vote on a transaction is made durable in one of two ways
//! (Section 4.2): on the fast path the raw set of `ST1R` votes is itself a
//! vote certificate (unanimous commit, `3f+1` abort, or one abort backed by a
//! conflicting commit certificate); on the slow path the client logs its
//! 2PC decision on a single logging shard and the `n-f` matching `ST2R`
//! acknowledgements form the certificate. Decision certificates bundle this
//! evidence and travel in writeback messages, read replies (committed
//! versions), and conflict-abort votes.

use crate::crypto_engine::SigEngine;
use crate::messages::{ProtoDecision, SignedSt1Reply, SignedSt2Reply, View};
use basil_common::{Duration, NodeId, ShardConfig, ShardId, TxId};
use std::collections::HashSet;
use std::sync::Arc;

/// Allocation-free set of replica indices for quorum counting. Shards have
/// `n = 5f + 1` replicas, so a 64-bit mask covers every deployment up to
/// `f = 12`; larger indices (only reachable with hand-built configs) spill
/// into a heap set.
#[derive(Default)]
pub(crate) struct ReplicaIndexSet {
    mask: u64,
    spill: Option<HashSet<u32>>,
    count: u32,
}

impl ReplicaIndexSet {
    /// Inserts `index`; returns `false` if it was already present.
    pub(crate) fn insert(&mut self, index: u32) -> bool {
        if index < 64 {
            let bit = 1u64 << index;
            if self.mask & bit != 0 {
                return false;
            }
            self.mask |= bit;
        } else {
            if !self.spill.get_or_insert_with(HashSet::new).insert(index) {
                return false;
            }
        }
        self.count += 1;
        true
    }

    pub(crate) fn contains(&self, index: u32) -> bool {
        if index < 64 {
            self.mask & (1u64 << index) != 0
        } else {
            self.spill.as_ref().is_some_and(|s| s.contains(&index))
        }
    }

    pub(crate) fn len(&self) -> u32 {
        self.count
    }
}

/// The votes a client gathered from one shard in stage ST1: either a durable
/// fast-path certificate or a slow-path tally that still needs logging.
#[derive(Clone, Debug)]
pub struct ShardVotes {
    /// The transaction voted on.
    pub txid: TxId,
    /// The shard these votes come from.
    pub shard: ShardId,
    /// The shard-level decision the votes support.
    pub decision: ProtoDecision,
    /// The signed `ST1R` votes.
    pub votes: Vec<SignedSt1Reply>,
    /// For the conflict-abort fast path: a commit certificate of a
    /// conflicting transaction, in which case a single abort vote suffices.
    /// Shared (`Arc`) so tallies and certificates carrying the same conflict
    /// evidence do not deep-copy it.
    pub conflict: Option<Arc<DecisionCert>>,
}

/// The logging-shard certificate produced by stage ST2: `n - f` matching
/// acknowledgements.
#[derive(Clone, Debug)]
pub struct VoteCert {
    /// The transaction.
    pub txid: TxId,
    /// The logging shard.
    pub shard: ShardId,
    /// The logged decision.
    pub decision: ProtoDecision,
    /// The view in which the decision was logged (0 unless the fallback ran).
    pub view: View,
    /// The matching signed `ST2R` acknowledgements.
    pub replies: Vec<SignedSt2Reply>,
}

/// A commit certificate (`C-CERT`).
#[derive(Clone, Debug)]
pub struct CommitCert {
    /// The committed transaction.
    pub txid: TxId,
    /// Fast path: the unanimous vote sets of every involved shard.
    /// Slow path: empty.
    pub fast_votes: Vec<ShardVotes>,
    /// Slow path: the logging-shard certificate. Fast path: `None`.
    pub slow: Option<VoteCert>,
}

/// An abort certificate (`A-CERT`).
#[derive(Clone, Debug)]
pub struct AbortCert {
    /// The aborted transaction.
    pub txid: TxId,
    /// Fast path: one shard's abort vote set (either `3f+1` abort votes, or a
    /// single vote backed by a conflicting commit certificate).
    pub fast_votes: Option<ShardVotes>,
    /// Slow path: the logging-shard certificate.
    pub slow: Option<VoteCert>,
}

/// Either kind of decision certificate.
#[derive(Clone, Debug)]
pub enum DecisionCert {
    /// Commit certificate.
    Commit(CommitCert),
    /// Abort certificate.
    Abort(AbortCert),
}

impl DecisionCert {
    /// The transaction this certificate decides.
    pub fn txid(&self) -> TxId {
        match self {
            DecisionCert::Commit(c) => c.txid,
            DecisionCert::Abort(a) => a.txid,
        }
    }

    /// The decision carried by the certificate.
    pub fn decision(&self) -> ProtoDecision {
        match self {
            DecisionCert::Commit(_) => ProtoDecision::Commit,
            DecisionCert::Abort(_) => ProtoDecision::Abort,
        }
    }
}

/// Outcome of validating a certificate: whether it is acceptable and how much
/// CPU the validation cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Validation {
    /// Whether the certificate (or tally) is valid.
    pub valid: bool,
    /// CPU cost of the signature checks performed.
    pub cost: Duration,
}

impl Validation {
    fn invalid(cost: Duration) -> Self {
        Validation { valid: false, cost }
    }
}

/// Counts the distinct replicas of `shard` among `votes` whose vote matches
/// `want`, verifying each signature, and returns `(count, all_signatures_ok,
/// cost)`.
fn count_valid_st1_votes(
    txid: TxId,
    shard: ShardId,
    want: &crate::messages::ProtoVote,
    votes: &[SignedSt1Reply],
    engine: &mut SigEngine,
) -> (u32, Duration) {
    let mut seen = ReplicaIndexSet::default();
    let mut cost = Duration::ZERO;
    for v in votes {
        if v.body.txid != txid || v.body.replica.shard != shard || &v.body.vote != want {
            continue;
        }
        if seen.contains(v.body.replica.index) {
            continue;
        }
        if engine.enabled() {
            // The claimed replica identity must match the signer.
            let signer_ok = v
                .proof
                .as_ref()
                .map(|p| p.signer() == NodeId::Replica(v.body.replica))
                .unwrap_or(false);
            let (ok, c) = engine.verify(&v.body, v.proof.as_ref());
            cost += c;
            if !ok || !signer_ok {
                continue;
            }
        }
        seen.insert(v.body.replica.index);
    }
    (seen.len(), cost)
}

/// Counts the distinct replicas of `shard` among `replies` whose decision and
/// decision view match, verifying signatures.
fn count_valid_st2_replies(
    txid: TxId,
    shard: ShardId,
    decision: ProtoDecision,
    view: View,
    replies: &[SignedSt2Reply],
    engine: &mut SigEngine,
) -> (u32, Duration) {
    let mut seen = ReplicaIndexSet::default();
    let mut cost = Duration::ZERO;
    for r in replies {
        if r.body.txid != txid
            || r.body.replica.shard != shard
            || r.body.decision != decision
            || r.body.view_decision != view
        {
            continue;
        }
        if seen.contains(r.body.replica.index) {
            continue;
        }
        if engine.enabled() {
            let signer_ok = r
                .proof
                .as_ref()
                .map(|p| p.signer() == NodeId::Replica(r.body.replica))
                .unwrap_or(false);
            let (ok, c) = engine.verify(&r.body, r.proof.as_ref());
            cost += c;
            if !ok || !signer_ok {
                continue;
            }
        }
        seen.insert(r.body.replica.index);
    }
    (seen.len(), cost)
}

/// Validates a slow-path logging certificate: `n - f` matching, correctly
/// signed `ST2R` acknowledgements from distinct replicas of the logging
/// shard.
pub fn validate_vote_cert(
    cert: &VoteCert,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    let (count, cost) = count_valid_st2_replies(
        cert.txid,
        cert.shard,
        cert.decision,
        cert.view,
        &cert.replies,
        engine,
    );
    Validation {
        valid: count >= cfg.st2_quorum(),
        cost,
    }
}

/// Validates one shard's vote set as *fast-path* evidence for `decision`.
///
/// * Commit: all `5f + 1` replicas voted commit.
/// * Abort: either `3f + 1` abort votes, or one abort vote accompanied by a
///   valid commit certificate of a conflicting transaction.
pub fn validate_fast_shard_votes(
    sv: &ShardVotes,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    let mut total_cost = Duration::ZERO;
    match sv.decision {
        ProtoDecision::Commit => {
            let (count, cost) = count_valid_st1_votes(
                sv.txid,
                sv.shard,
                &crate::messages::ProtoVote::Commit,
                &sv.votes,
                engine,
            );
            total_cost += cost;
            Validation {
                valid: count >= cfg.fast_commit_quorum(),
                cost: total_cost,
            }
        }
        ProtoDecision::Abort => {
            if let Some(conflict) = &sv.conflict {
                // Conflict-abort: the conflicting transaction's commit
                // certificate must itself be valid and must be for a
                // *different* transaction.
                if conflict.txid() == sv.txid || !conflict.decision().is_commit() {
                    return Validation::invalid(total_cost);
                }
                let v = validate_decision_cert(conflict, cfg, engine);
                total_cost += v.cost;
                let (count, cost) = count_valid_st1_votes(
                    sv.txid,
                    sv.shard,
                    &crate::messages::ProtoVote::Abort,
                    &sv.votes,
                    engine,
                );
                total_cost += cost;
                return Validation {
                    valid: v.valid && count >= 1,
                    cost: total_cost,
                };
            }
            let (count, cost) = count_valid_st1_votes(
                sv.txid,
                sv.shard,
                &crate::messages::ProtoVote::Abort,
                &sv.votes,
                engine,
            );
            total_cost += cost;
            Validation {
                valid: count >= cfg.fast_abort_quorum(),
                cost: total_cost,
            }
        }
    }
}

/// Validates one shard's vote set as *slow-path justification* for a 2PC
/// decision being logged in ST2: a commit decision needs a commit quorum
/// (`3f + 1`) from every shard; an abort decision needs an abort quorum
/// (`f + 1`) or a conflict certificate from at least one shard.
pub fn validate_tally_for_decision(
    sv: &ShardVotes,
    decision: ProtoDecision,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    match decision {
        ProtoDecision::Commit => {
            let (count, cost) = count_valid_st1_votes(
                sv.txid,
                sv.shard,
                &crate::messages::ProtoVote::Commit,
                &sv.votes,
                engine,
            );
            Validation {
                valid: count >= cfg.commit_quorum(),
                cost,
            }
        }
        ProtoDecision::Abort => {
            if sv.conflict.is_some() {
                return validate_fast_shard_votes(sv, cfg, engine);
            }
            let (count, cost) = count_valid_st1_votes(
                sv.txid,
                sv.shard,
                &crate::messages::ProtoVote::Abort,
                &sv.votes,
                engine,
            );
            Validation {
                valid: count >= cfg.abort_quorum(),
                cost,
            }
        }
    }
}

/// Validates an ST2 message's justification: the decision must be supported
/// by the attached tallies. `expected_shards`, when known (the replica has
/// the transaction), lets the validator insist that *every* involved shard
/// voted commit for a commit decision.
pub fn validate_st2_justification(
    txid: TxId,
    decision: ProtoDecision,
    shard_votes: &[ShardVotes],
    expected_shards: Option<&[ShardId]>,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    let mut cost = Duration::ZERO;
    match decision {
        ProtoDecision::Commit => {
            let mut supported: HashSet<ShardId> = HashSet::new();
            for sv in shard_votes {
                if sv.txid != txid || !sv.decision.is_commit() {
                    continue;
                }
                let v = validate_tally_for_decision(sv, ProtoDecision::Commit, cfg, engine);
                cost += v.cost;
                if v.valid {
                    supported.insert(sv.shard);
                }
            }
            let valid = match expected_shards {
                Some(shards) => shards.iter().all(|s| supported.contains(s)),
                None => !supported.is_empty(),
            };
            Validation { valid, cost }
        }
        ProtoDecision::Abort => {
            for sv in shard_votes {
                if sv.txid != txid || sv.decision.is_commit() {
                    continue;
                }
                let v = validate_tally_for_decision(sv, ProtoDecision::Abort, cfg, engine);
                cost += v.cost;
                if v.valid {
                    return Validation { valid: true, cost };
                }
            }
            Validation { valid: false, cost }
        }
    }
}

/// Validates a commit certificate.
pub fn validate_commit_cert(
    cert: &CommitCert,
    expected_shards: Option<&[ShardId]>,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    let mut cost = Duration::ZERO;
    if let Some(slow) = &cert.slow {
        if slow.txid != cert.txid || !slow.decision.is_commit() {
            return Validation::invalid(cost);
        }
        let v = validate_vote_cert(slow, cfg, engine);
        return Validation {
            valid: v.valid,
            cost: cost + v.cost,
        };
    }
    // Fast path: every involved shard must have a unanimous vote set.
    let mut supported: HashSet<ShardId> = HashSet::new();
    for sv in &cert.fast_votes {
        if sv.txid != cert.txid || !sv.decision.is_commit() {
            continue;
        }
        let v = validate_fast_shard_votes(sv, cfg, engine);
        cost += v.cost;
        if v.valid {
            supported.insert(sv.shard);
        }
    }
    let valid = match expected_shards {
        Some(shards) => !shards.is_empty() && shards.iter().all(|s| supported.contains(s)),
        None => !supported.is_empty(),
    };
    Validation { valid, cost }
}

/// Validates an abort certificate.
pub fn validate_abort_cert(
    cert: &AbortCert,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    if let Some(slow) = &cert.slow {
        if slow.txid != cert.txid || slow.decision.is_commit() {
            return Validation::invalid(Duration::ZERO);
        }
        return validate_vote_cert(slow, cfg, engine);
    }
    match &cert.fast_votes {
        Some(sv) => {
            if sv.txid != cert.txid || sv.decision.is_commit() {
                return Validation::invalid(Duration::ZERO);
            }
            validate_fast_shard_votes(sv, cfg, engine)
        }
        None => Validation::invalid(Duration::ZERO),
    }
}

/// Validates either kind of decision certificate.
pub fn validate_decision_cert(
    cert: &DecisionCert,
    cfg: &ShardConfig,
    engine: &mut SigEngine,
) -> Validation {
    match cert {
        DecisionCert::Commit(c) => validate_commit_cert(c, None, cfg, engine),
        DecisionCert::Abort(a) => validate_abort_cert(a, cfg, engine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BasilConfig;
    use crate::messages::{ProtoVote, St1ReplyBody, St2ReplyBody};
    use basil_common::{ClientId, ReplicaId};
    use basil_crypto::KeyRegistry;

    fn cfg() -> BasilConfig {
        BasilConfig::test_single_shard()
    }

    fn registry() -> KeyRegistry {
        KeyRegistry::from_seed(11)
    }

    fn engine_for(node: NodeId) -> SigEngine {
        SigEngine::new(node, registry(), &cfg())
    }

    fn client_engine() -> SigEngine {
        engine_for(NodeId::Client(ClientId(0)))
    }

    fn txid() -> TxId {
        TxId::from_bytes([42; 32])
    }

    fn signed_vote(replica_index: u32, vote: ProtoVote, id: TxId) -> SignedSt1Reply {
        let replica = ReplicaId::new(ShardId(0), replica_index);
        let body = St1ReplyBody {
            txid: id,
            replica,
            vote,
        };
        let mut engine = engine_for(NodeId::Replica(replica));
        let (proof, _) = engine.sign(&body.signed_bytes());
        SignedSt1Reply {
            body,
            proof,
            conflict: None,
        }
    }

    fn signed_st2(
        replica_index: u32,
        decision: ProtoDecision,
        id: TxId,
        view: View,
    ) -> SignedSt2Reply {
        let replica = ReplicaId::new(ShardId(0), replica_index);
        let body = St2ReplyBody {
            txid: id,
            replica,
            decision,
            view_decision: view,
            view_current: view,
        };
        let mut engine = engine_for(NodeId::Replica(replica));
        let (proof, _) = engine.sign(&body.signed_bytes());
        SignedSt2Reply { body, proof }
    }

    fn commit_votes(n: u32) -> Vec<SignedSt1Reply> {
        (0..n)
            .map(|i| signed_vote(i, ProtoVote::Commit, txid()))
            .collect()
    }

    fn abort_votes(n: u32) -> Vec<SignedSt1Reply> {
        (0..n)
            .map(|i| signed_vote(i, ProtoVote::Abort, txid()))
            .collect()
    }

    fn shard_votes(decision: ProtoDecision, votes: Vec<SignedSt1Reply>) -> ShardVotes {
        ShardVotes {
            txid: txid(),
            shard: ShardId(0),
            decision,
            votes,
            conflict: None,
        }
    }

    #[test]
    fn fast_commit_requires_unanimity() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let sv = shard_votes(ProtoDecision::Commit, commit_votes(6));
        assert!(validate_fast_shard_votes(&sv, &shard_cfg, &mut engine).valid);

        let sv5 = shard_votes(ProtoDecision::Commit, commit_votes(5));
        assert!(!validate_fast_shard_votes(&sv5, &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn duplicate_votes_do_not_inflate_the_count() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let mut votes = commit_votes(3);
        // Replica 0's vote repeated three more times.
        votes.extend(std::iter::repeat_n(
            signed_vote(0, ProtoVote::Commit, txid()),
            3,
        ));
        let sv = shard_votes(ProtoDecision::Commit, votes);
        assert!(!validate_fast_shard_votes(&sv, &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn forged_signature_is_not_counted() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let mut votes = commit_votes(5);
        // A vote whose body claims replica 5 but is signed by replica 0.
        let mut forged = signed_vote(0, ProtoVote::Commit, txid());
        forged.body.replica = ReplicaId::new(ShardId(0), 5);
        votes.push(forged);
        let sv = shard_votes(ProtoDecision::Commit, votes);
        assert!(!validate_fast_shard_votes(&sv, &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn fast_abort_needs_3f_plus_1() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let sv = shard_votes(ProtoDecision::Abort, abort_votes(4));
        assert!(validate_fast_shard_votes(&sv, &shard_cfg, &mut engine).valid);
        let sv3 = shard_votes(ProtoDecision::Abort, abort_votes(3));
        assert!(!validate_fast_shard_votes(&sv3, &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn slow_tallies_use_smaller_quorums() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let commit_tally = shard_votes(ProtoDecision::Commit, commit_votes(4));
        assert!(
            validate_tally_for_decision(
                &commit_tally,
                ProtoDecision::Commit,
                &shard_cfg,
                &mut engine
            )
            .valid
        );
        let commit_small = shard_votes(ProtoDecision::Commit, commit_votes(3));
        assert!(
            !validate_tally_for_decision(
                &commit_small,
                ProtoDecision::Commit,
                &shard_cfg,
                &mut engine
            )
            .valid
        );

        let abort_tally = shard_votes(ProtoDecision::Abort, abort_votes(2));
        assert!(
            validate_tally_for_decision(
                &abort_tally,
                ProtoDecision::Abort,
                &shard_cfg,
                &mut engine
            )
            .valid
        );
        let abort_small = shard_votes(ProtoDecision::Abort, abort_votes(1));
        assert!(
            !validate_tally_for_decision(
                &abort_small,
                ProtoDecision::Abort,
                &shard_cfg,
                &mut engine
            )
            .valid
        );
    }

    #[test]
    fn vote_cert_requires_n_minus_f_matching_acks() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let cert = VoteCert {
            txid: txid(),
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            view: 0,
            replies: (0..5)
                .map(|i| signed_st2(i, ProtoDecision::Commit, txid(), 0))
                .collect(),
        };
        assert!(validate_vote_cert(&cert, &shard_cfg, &mut engine).valid);

        let mut short = cert.clone();
        short.replies.truncate(4);
        assert!(!validate_vote_cert(&short, &shard_cfg, &mut engine).valid);

        // A mismatching decision view breaks the match.
        let mut mixed = cert.clone();
        mixed.replies[0] = signed_st2(0, ProtoDecision::Commit, txid(), 1);
        assert!(!validate_vote_cert(&mixed, &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn st2_justification_commit_needs_every_expected_shard() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let tally = shard_votes(ProtoDecision::Commit, commit_votes(4));
        let ok = validate_st2_justification(
            txid(),
            ProtoDecision::Commit,
            std::slice::from_ref(&tally),
            Some(&[ShardId(0)]),
            &shard_cfg,
            &mut engine,
        );
        assert!(ok.valid);
        let missing_shard = validate_st2_justification(
            txid(),
            ProtoDecision::Commit,
            &[tally],
            Some(&[ShardId(0), ShardId(1)]),
            &shard_cfg,
            &mut engine,
        );
        assert!(!missing_shard.valid);
    }

    #[test]
    fn st2_justification_abort_needs_one_abort_quorum() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let tally = shard_votes(ProtoDecision::Abort, abort_votes(2));
        let ok = validate_st2_justification(
            txid(),
            ProtoDecision::Abort,
            &[tally],
            Some(&[ShardId(0)]),
            &shard_cfg,
            &mut engine,
        );
        assert!(ok.valid);
        let not_ok = validate_st2_justification(
            txid(),
            ProtoDecision::Abort,
            &[],
            Some(&[ShardId(0)]),
            &shard_cfg,
            &mut engine,
        );
        assert!(!not_ok.valid);
    }

    #[test]
    fn commit_cert_fast_and_slow_paths() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        let fast = CommitCert {
            txid: txid(),
            fast_votes: vec![shard_votes(ProtoDecision::Commit, commit_votes(6))],
            slow: None,
        };
        assert!(validate_commit_cert(&fast, Some(&[ShardId(0)]), &shard_cfg, &mut engine).valid);

        let slow = CommitCert {
            txid: txid(),
            fast_votes: vec![],
            slow: Some(VoteCert {
                txid: txid(),
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                view: 0,
                replies: (0..5)
                    .map(|i| signed_st2(i, ProtoDecision::Commit, txid(), 0))
                    .collect(),
            }),
        };
        assert!(validate_commit_cert(&slow, Some(&[ShardId(0)]), &shard_cfg, &mut engine).valid);

        // A slow cert whose inner decision is abort cannot prove a commit.
        let bogus = CommitCert {
            txid: txid(),
            fast_votes: vec![],
            slow: Some(VoteCert {
                txid: txid(),
                shard: ShardId(0),
                decision: ProtoDecision::Abort,
                view: 0,
                replies: (0..5)
                    .map(|i| signed_st2(i, ProtoDecision::Abort, txid(), 0))
                    .collect(),
            }),
        };
        assert!(!validate_commit_cert(&bogus, Some(&[ShardId(0)]), &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn abort_cert_via_conflicting_commit_cert() {
        let shard_cfg = cfg().system.shard;
        let mut engine = client_engine();
        // A valid commit certificate for some other transaction.
        let other_tx = TxId::from_bytes([9; 32]);
        let other_votes: Vec<SignedSt1Reply> = (0..6)
            .map(|i| signed_vote(i, ProtoVote::Commit, other_tx))
            .collect();
        let conflicting_cert = DecisionCert::Commit(CommitCert {
            txid: other_tx,
            fast_votes: vec![ShardVotes {
                txid: other_tx,
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                votes: other_votes,
                conflict: None,
            }],
            slow: None,
        });

        let cert = AbortCert {
            txid: txid(),
            fast_votes: Some(ShardVotes {
                txid: txid(),
                shard: ShardId(0),
                decision: ProtoDecision::Abort,
                votes: abort_votes(1),
                conflict: Some(Arc::new(conflicting_cert)),
            }),
            slow: None,
        };
        assert!(validate_abort_cert(&cert, &shard_cfg, &mut engine).valid);

        // Without the conflict certificate a single abort vote is not enough.
        let weak = AbortCert {
            txid: txid(),
            fast_votes: Some(shard_votes(ProtoDecision::Abort, abort_votes(1))),
            slow: None,
        };
        assert!(!validate_abort_cert(&weak, &shard_cfg, &mut engine).valid);
    }

    #[test]
    fn validation_is_free_and_permissive_when_signatures_disabled() {
        let mut no_sig_cfg = cfg().without_proofs();
        no_sig_cfg.crypto_mode = crate::config::CryptoMode::Real;
        let mut engine = SigEngine::new(NodeId::Client(ClientId(0)), registry(), &no_sig_cfg);
        // Unsigned votes (proof = None) are still counted by replica identity.
        let votes: Vec<SignedSt1Reply> = (0..6)
            .map(|i| SignedSt1Reply {
                body: St1ReplyBody {
                    txid: txid(),
                    replica: ReplicaId::new(ShardId(0), i),
                    vote: ProtoVote::Commit,
                },
                proof: None,
                conflict: None,
            })
            .collect();
        let sv = shard_votes(ProtoDecision::Commit, votes);
        let shard_cfg = no_sig_cfg.system.shard;
        let v = validate_fast_shard_votes(&sv, &shard_cfg, &mut engine);
        assert!(v.valid);
        assert_eq!(v.cost, Duration::ZERO);
    }
}
