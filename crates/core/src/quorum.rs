//! Client-side vote aggregation: classifying a shard's `ST1R` votes into the
//! fast/slow commit/abort paths of Section 4.2, and collecting `ST2R`
//! acknowledgements.

use crate::certs::{ShardVotes, VoteCert};
use crate::messages::{ProtoDecision, ProtoVote, SignedSt1Reply, SignedSt2Reply, View};
use basil_common::{FastHashMap, ShardConfig, ShardId, TxId};
use std::collections::HashMap;

/// How a shard's stage-1 votes were classified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardPath {
    /// All `5f + 1` replicas voted commit; the shard's vote is already
    /// durable.
    FastCommit,
    /// `3f + 1` abort votes; the shard can never produce a commit quorum.
    FastAbort,
    /// One abort vote carried a commit certificate for a conflicting
    /// transaction; durable immediately.
    FastAbortConflict,
    /// At least `3f + 1` commit votes but not unanimous: the decision must be
    /// logged in stage ST2 before it is durable.
    SlowCommit,
    /// At least `f + 1` abort votes but fewer than `3f + 1`: must be logged.
    SlowAbort,
}

impl ShardPath {
    /// The shard-level decision this classification supports.
    pub fn decision(&self) -> ProtoDecision {
        match self {
            ShardPath::FastCommit | ShardPath::SlowCommit => ProtoDecision::Commit,
            _ => ProtoDecision::Abort,
        }
    }

    /// Whether the shard's vote is already durable without ST2.
    pub fn is_fast(&self) -> bool {
        matches!(
            self,
            ShardPath::FastCommit | ShardPath::FastAbort | ShardPath::FastAbortConflict
        )
    }
}

/// A classified shard outcome together with the evidence backing it.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The classification.
    pub path: ShardPath,
    /// The votes (a `V-CERT` when fast, a vote tally when slow).
    pub votes: ShardVotes,
}

/// Accumulates one shard's `ST1R` votes for a transaction.
#[derive(Clone, Debug)]
pub struct ShardTally {
    txid: TxId,
    shard: ShardId,
    cfg: ShardConfig,
    /// Deduplicated votes by replica index.
    votes: FastHashMap<u32, SignedSt1Reply>,
}

impl ShardTally {
    /// Creates an empty tally for `shard`.
    pub fn new(txid: TxId, shard: ShardId, cfg: ShardConfig) -> Self {
        ShardTally {
            txid,
            shard,
            cfg,
            votes: FastHashMap::default(),
        }
    }

    /// Adds a (pre-verified) vote. Votes for other transactions or shards and
    /// duplicate votes from the same replica are ignored. Returns `true` if
    /// the vote was recorded.
    pub fn add(&mut self, vote: SignedSt1Reply) -> bool {
        if vote.body.txid != self.txid || vote.body.replica.shard != self.shard {
            return false;
        }
        if vote.body.replica.index >= self.cfg.n() {
            return false;
        }
        if self.votes.contains_key(&vote.body.replica.index) {
            return false;
        }
        self.votes.insert(vote.body.replica.index, vote);
        true
    }

    /// Number of votes received so far.
    pub fn total(&self) -> u32 {
        self.votes.len() as u32
    }

    /// Replica indices of the shard that have not voted yet, in index order
    /// (the retransmission targets when the prepare timer fires).
    pub fn missing(&self) -> Vec<u32> {
        (0..self.cfg.n())
            .filter(|i| !self.votes.contains_key(i))
            .collect()
    }

    /// Number of commit votes received so far.
    pub fn commits(&self) -> u32 {
        self.votes
            .values()
            .filter(|v| v.body.vote.is_commit())
            .count() as u32
    }

    /// Number of abort votes received so far.
    pub fn aborts(&self) -> u32 {
        self.total() - self.commits()
    }

    /// Whether both a commit quorum (`3f+1`) and an abort quorum (`f+1`) are
    /// simultaneously present — the precondition for a Byzantine client to
    /// equivocate its ST2 decision (Section 6.4, `equiv-real`).
    pub fn can_equivocate(&self) -> bool {
        self.commits() >= self.cfg.commit_quorum() && self.aborts() >= self.cfg.abort_quorum()
    }

    /// The abort vote carrying a conflict certificate, if one was received.
    fn conflict_vote(&self) -> Option<&SignedSt1Reply> {
        self.votes
            .values()
            .find(|v| !v.body.vote.is_commit() && v.conflict.is_some())
    }

    /// Tries to classify the shard's vote.
    ///
    /// `complete` indicates that the client does not expect further replies
    /// (all `n` arrived, or its prepare timer fired after at least `n - f`):
    /// only then are the slow paths taken, because earlier a unanimous fast
    /// path might still materialize.
    pub fn classify(&self, complete: bool) -> Option<ShardOutcome> {
        let commits = self.commits();
        let aborts = self.aborts();

        // Fast paths can be recognized as soon as their thresholds are met.
        if let Some(conflict_vote) = self.conflict_vote() {
            return Some(self.outcome(
                ShardPath::FastAbortConflict,
                ProtoDecision::Abort,
                Some(conflict_vote.clone()),
            ));
        }
        if commits >= self.cfg.fast_commit_quorum() {
            return Some(self.outcome(ShardPath::FastCommit, ProtoDecision::Commit, None));
        }
        if aborts >= self.cfg.fast_abort_quorum() {
            return Some(self.outcome(ShardPath::FastAbort, ProtoDecision::Abort, None));
        }
        if !complete {
            return None;
        }
        if commits >= self.cfg.commit_quorum() {
            return Some(self.outcome(ShardPath::SlowCommit, ProtoDecision::Commit, None));
        }
        if aborts >= self.cfg.abort_quorum() {
            return Some(self.outcome(ShardPath::SlowAbort, ProtoDecision::Abort, None));
        }
        None
    }

    fn outcome(
        &self,
        path: ShardPath,
        decision: ProtoDecision,
        conflict_vote: Option<SignedSt1Reply>,
    ) -> ShardOutcome {
        let wanted = match decision {
            ProtoDecision::Commit => ProtoVote::Commit,
            ProtoDecision::Abort => ProtoVote::Abort,
        };
        let votes: Vec<SignedSt1Reply> = match &conflict_vote {
            Some(v) => vec![v.clone()],
            None => self
                .votes
                .values()
                .filter(|v| v.body.vote == wanted)
                .cloned()
                .collect(),
        };
        let conflict = conflict_vote.and_then(|v| v.conflict);
        ShardOutcome {
            path,
            votes: ShardVotes {
                txid: self.txid,
                shard: self.shard,
                decision,
                votes,
                conflict,
            },
        }
    }

    /// The raw commit-vote set (used by Byzantine clients that equivocate: a
    /// commit tally for some replicas, an abort tally for others).
    pub fn votes_matching(&self, vote: ProtoVote) -> Vec<SignedSt1Reply> {
        self.votes
            .values()
            .filter(|v| v.body.vote == vote)
            .cloned()
            .collect()
    }
}

/// Result of combining all shards' classifications into a 2PC decision.
#[derive(Clone, Debug)]
pub struct PrepareOutcome {
    /// The 2PC decision.
    pub decision: ProtoDecision,
    /// Whether the decision is already durable without stage ST2 (all shards
    /// fast, or one fast shard aborted).
    pub fast: bool,
    /// Evidence from each shard (tallies or certificates).
    pub shard_votes: Vec<ShardVotes>,
}

/// Combines per-shard outcomes into the transaction's 2PC decision
/// (Section 4.2, end of stage 1). Returns `None` until every involved shard
/// has been classified — except that a single *fast* abort shard decides the
/// transaction immediately.
pub fn combine_outcomes(
    outcomes: &FastHashMap<ShardId, ShardOutcome>,
    involved: &[ShardId],
) -> Option<PrepareOutcome> {
    // A fast abort from any shard is final on its own. Scan in `involved`
    // order (not map-iteration order) so the shard whose votes end up in the
    // A-CERT is the same on every run — map iteration order would make the
    // certificate contents, and hence downstream validation cost,
    // nondeterministic.
    if let Some(outcome) = involved
        .iter()
        .filter_map(|s| outcomes.get(s))
        .find(|o| o.path.is_fast() && o.path.decision() == ProtoDecision::Abort)
    {
        return Some(PrepareOutcome {
            decision: ProtoDecision::Abort,
            fast: true,
            shard_votes: vec![outcome.votes.clone()],
        });
    }
    if !involved.iter().all(|s| outcomes.contains_key(s)) {
        return None;
    }
    let decision = if involved
        .iter()
        .all(|s| outcomes[s].path.decision() == ProtoDecision::Commit)
    {
        ProtoDecision::Commit
    } else {
        ProtoDecision::Abort
    };
    let fast = involved.iter().all(|s| outcomes[s].path.is_fast());
    Some(PrepareOutcome {
        decision,
        fast,
        shard_votes: involved.iter().map(|s| outcomes[s].votes.clone()).collect(),
    })
}

/// Accumulates `ST2R` acknowledgements from the logging shard.
#[derive(Clone, Debug)]
pub struct St2Tally {
    txid: TxId,
    shard: ShardId,
    cfg: ShardConfig,
    replies: FastHashMap<u32, SignedSt2Reply>,
}

/// What the collected `ST2R` acknowledgements amount to.
#[derive(Clone, Debug)]
pub enum St2Outcome {
    /// `n - f` acknowledgements match: the decision is durable.
    Certified(VoteCert),
    /// Enough replies arrived to rule out a matching quorum for any single
    /// (decision, view): the log has diverged and the fallback must run.
    Divergent {
        /// The acknowledgements seen (used to build `InvokeFB.views`).
        replies: Vec<SignedSt2Reply>,
    },
}

impl St2Tally {
    /// Creates an empty tally for the logging shard.
    pub fn new(txid: TxId, shard: ShardId, cfg: ShardConfig) -> Self {
        St2Tally {
            txid,
            shard,
            cfg,
            replies: FastHashMap::default(),
        }
    }

    /// Adds a (pre-verified) acknowledgement; ignores duplicates and replies
    /// for other transactions/shards. Returns `true` if recorded.
    pub fn add(&mut self, reply: SignedSt2Reply) -> bool {
        if reply.body.txid != self.txid
            || reply.body.replica.shard != self.shard
            || reply.body.replica.index >= self.cfg.n()
        {
            return false;
        }
        // A newer reply from the same replica replaces the old one (views
        // may have advanced).
        self.replies.insert(reply.body.replica.index, reply);
        true
    }

    /// Number of acknowledgements collected.
    pub fn total(&self) -> u32 {
        self.replies.len() as u32
    }

    /// Replica indices of the logging shard that have not acknowledged yet,
    /// in index order (the retransmission targets when the ST2 timer fires).
    pub fn missing(&self) -> Vec<u32> {
        (0..self.cfg.n())
            .filter(|i| !self.replies.contains_key(i))
            .collect()
    }

    /// The replies themselves (for `InvokeFB.views`).
    pub fn replies(&self) -> Vec<SignedSt2Reply> {
        self.replies.values().cloned().collect()
    }

    /// Tries to conclude stage ST2.
    pub fn classify(&self) -> Option<St2Outcome> {
        // Group by (decision, view_decision).
        let mut groups: HashMap<(ProtoDecision, View), Vec<&SignedSt2Reply>> = HashMap::new();
        for r in self.replies.values() {
            groups
                .entry((r.body.decision, r.body.view_decision))
                .or_default()
                .push(r);
        }
        let quorum = self.cfg.st2_quorum();
        for ((decision, view), members) in &groups {
            if members.len() as u32 >= quorum {
                return Some(St2Outcome::Certified(VoteCert {
                    txid: self.txid,
                    shard: self.shard,
                    decision: *decision,
                    view: *view,
                    replies: members.iter().map(|r| (*r).clone()).collect(),
                }));
            }
        }
        // Divergence: even if every missing replica joined the largest group,
        // no quorum could form.
        let largest = groups.values().map(Vec::len).max().unwrap_or(0) as u32;
        let outstanding = self.cfg.n() - self.total();
        if largest + outstanding < quorum {
            return Some(St2Outcome::Divergent {
                replies: self.replies(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::DecisionCert;
    use crate::messages::{St1ReplyBody, St2ReplyBody};
    use basil_common::ReplicaId;

    fn cfg() -> ShardConfig {
        ShardConfig::new(1) // n = 6
    }

    fn txid() -> TxId {
        TxId::from_bytes([1; 32])
    }

    fn vote(i: u32, v: ProtoVote) -> SignedSt1Reply {
        SignedSt1Reply {
            body: St1ReplyBody {
                txid: txid(),
                replica: ReplicaId::new(ShardId(0), i),
                vote: v,
            },
            proof: None,
            conflict: None,
        }
    }

    fn st2r(i: u32, d: ProtoDecision, view: View) -> SignedSt2Reply {
        SignedSt2Reply {
            body: St2ReplyBody {
                txid: txid(),
                replica: ReplicaId::new(ShardId(0), i),
                decision: d,
                view_decision: view,
                view_current: view,
            },
            proof: None,
        }
    }

    fn tally_with(votes: impl IntoIterator<Item = SignedSt1Reply>) -> ShardTally {
        let mut t = ShardTally::new(txid(), ShardId(0), cfg());
        for v in votes {
            t.add(v);
        }
        t
    }

    #[test]
    fn unanimous_commit_is_fast() {
        let t = tally_with((0..6).map(|i| vote(i, ProtoVote::Commit)));
        let o = t.classify(false).expect("classified");
        assert_eq!(o.path, ShardPath::FastCommit);
        assert_eq!(o.votes.votes.len(), 6);
    }

    #[test]
    fn commit_quorum_without_unanimity_is_slow_and_waits_for_completion() {
        let t = tally_with((0..4).map(|i| vote(i, ProtoVote::Commit)));
        assert!(t.classify(false).is_none(), "might still reach fast path");
        let o = t.classify(true).expect("slow classification");
        assert_eq!(o.path, ShardPath::SlowCommit);
        assert_eq!(o.votes.decision, ProtoDecision::Commit);
    }

    #[test]
    fn three_f_plus_one_aborts_is_fast_abort() {
        let t = tally_with((0..4).map(|i| vote(i, ProtoVote::Abort)));
        let o = t.classify(false).expect("classified");
        assert_eq!(o.path, ShardPath::FastAbort);
    }

    #[test]
    fn f_plus_one_aborts_is_slow_abort() {
        let mut votes: Vec<_> = (0..2).map(|i| vote(i, ProtoVote::Abort)).collect();
        votes.extend((2..5).map(|i| vote(i, ProtoVote::Commit)));
        let t = tally_with(votes);
        assert!(t.classify(false).is_none());
        let o = t.classify(true).expect("classified");
        assert_eq!(o.path, ShardPath::SlowAbort);
        assert_eq!(o.votes.votes.len(), 2, "only abort votes in the tally");
    }

    #[test]
    fn conflict_certified_abort_is_fast_with_single_vote() {
        let mut conflicted = vote(3, ProtoVote::Abort);
        conflicted.conflict = Some(std::sync::Arc::new(DecisionCert::Commit(
            crate::certs::CommitCert {
                txid: TxId::from_bytes([9; 32]),
                fast_votes: vec![],
                slow: None,
            },
        )));
        let t = tally_with([vote(0, ProtoVote::Commit), conflicted]);
        let o = t.classify(false).expect("classified");
        assert_eq!(o.path, ShardPath::FastAbortConflict);
        assert_eq!(o.votes.votes.len(), 1);
        assert!(o.votes.conflict.is_some());
    }

    #[test]
    fn duplicate_and_foreign_votes_are_ignored() {
        let mut t = ShardTally::new(txid(), ShardId(0), cfg());
        assert!(t.add(vote(0, ProtoVote::Commit)));
        assert!(!t.add(vote(0, ProtoVote::Abort)), "duplicate replica");
        let mut foreign = vote(1, ProtoVote::Commit);
        foreign.body.txid = TxId::from_bytes([8; 32]);
        assert!(!t.add(foreign));
        let mut out_of_range = vote(1, ProtoVote::Commit);
        out_of_range.body.replica.index = 17;
        assert!(!t.add(out_of_range));
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn equivocation_precondition() {
        // 4 commits + 2 aborts: both CQ (4) and AQ (2) present.
        let mut votes: Vec<_> = (0..4).map(|i| vote(i, ProtoVote::Commit)).collect();
        votes.extend((4..6).map(|i| vote(i, ProtoVote::Abort)));
        let t = tally_with(votes);
        assert!(t.can_equivocate());
        assert_eq!(t.votes_matching(ProtoVote::Commit).len(), 4);
        assert_eq!(t.votes_matching(ProtoVote::Abort).len(), 2);

        let t2 = tally_with((0..6).map(|i| vote(i, ProtoVote::Commit)));
        assert!(!t2.can_equivocate());
    }

    #[test]
    fn combine_requires_all_shards_unless_fast_abort() {
        let commit_outcome = |shard: u32| ShardOutcome {
            path: ShardPath::FastCommit,
            votes: ShardVotes {
                txid: txid(),
                shard: ShardId(shard),
                decision: ProtoDecision::Commit,
                votes: vec![],
                conflict: None,
            },
        };
        let involved = vec![ShardId(0), ShardId(1)];
        let mut outcomes = FastHashMap::default();
        outcomes.insert(ShardId(0), commit_outcome(0));
        assert!(combine_outcomes(&outcomes, &involved).is_none());

        outcomes.insert(ShardId(1), commit_outcome(1));
        let combined = combine_outcomes(&outcomes, &involved).expect("both shards in");
        assert_eq!(combined.decision, ProtoDecision::Commit);
        assert!(combined.fast);
        assert_eq!(combined.shard_votes.len(), 2);

        // A fast abort from one shard decides immediately even if the other
        // shard has not been classified.
        let mut with_abort = FastHashMap::default();
        with_abort.insert(
            ShardId(1),
            ShardOutcome {
                path: ShardPath::FastAbort,
                votes: ShardVotes {
                    txid: txid(),
                    shard: ShardId(1),
                    decision: ProtoDecision::Abort,
                    votes: vec![],
                    conflict: None,
                },
            },
        );
        let combined = combine_outcomes(&with_abort, &involved).expect("fast abort decides");
        assert_eq!(combined.decision, ProtoDecision::Abort);
        assert!(combined.fast);
    }

    #[test]
    fn slow_shard_makes_combined_outcome_slow() {
        let outcomes: FastHashMap<ShardId, ShardOutcome> = [
            (
                ShardId(0),
                ShardOutcome {
                    path: ShardPath::SlowCommit,
                    votes: ShardVotes {
                        txid: txid(),
                        shard: ShardId(0),
                        decision: ProtoDecision::Commit,
                        votes: vec![],
                        conflict: None,
                    },
                },
            ),
            (
                ShardId(1),
                ShardOutcome {
                    path: ShardPath::FastCommit,
                    votes: ShardVotes {
                        txid: txid(),
                        shard: ShardId(1),
                        decision: ProtoDecision::Commit,
                        votes: vec![],
                        conflict: None,
                    },
                },
            ),
        ]
        .into_iter()
        .collect();
        let combined = combine_outcomes(&outcomes, &[ShardId(0), ShardId(1)]).expect("classified");
        assert_eq!(combined.decision, ProtoDecision::Commit);
        assert!(!combined.fast);
    }

    #[test]
    fn st2_tally_certifies_matching_quorum() {
        let mut t = St2Tally::new(txid(), ShardId(0), cfg());
        for i in 0..5 {
            t.add(st2r(i, ProtoDecision::Commit, 0));
        }
        match t.classify() {
            Some(St2Outcome::Certified(cert)) => {
                assert_eq!(cert.decision, ProtoDecision::Commit);
                assert_eq!(cert.replies.len(), 5);
                assert_eq!(cert.view, 0);
            }
            other => panic!("expected certification, got {other:?}"),
        }
    }

    #[test]
    fn st2_tally_detects_divergence() {
        let mut t = St2Tally::new(txid(), ShardId(0), cfg());
        // 3 commit, 3 abort: even the missing 0 replicas cannot complete a
        // quorum of 5 for either group.
        for i in 0..3 {
            t.add(st2r(i, ProtoDecision::Commit, 0));
        }
        for i in 3..6 {
            t.add(st2r(i, ProtoDecision::Abort, 0));
        }
        match t.classify() {
            Some(St2Outcome::Divergent { replies }) => assert_eq!(replies.len(), 6),
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn st2_tally_waits_while_quorum_still_possible() {
        let mut t = St2Tally::new(txid(), ShardId(0), cfg());
        for i in 0..3 {
            t.add(st2r(i, ProtoDecision::Commit, 0));
        }
        t.add(st2r(3, ProtoDecision::Abort, 0));
        // 3 commit + 1 abort, 2 replicas outstanding: commit could still
        // reach 5.
        assert!(t.classify().is_none());
    }

    #[test]
    fn st2_replaces_stale_reply_from_same_replica() {
        let mut t = St2Tally::new(txid(), ShardId(0), cfg());
        t.add(st2r(0, ProtoDecision::Commit, 0));
        t.add(st2r(0, ProtoDecision::Commit, 1));
        assert_eq!(t.total(), 1);
        let replies = t.replies();
        assert_eq!(replies[0].body.view_decision, 1);
    }
}
