//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace-local shim
//! implements the API subset the `basil-bench` crate uses:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::throughput`], and [`Bencher::iter`] /
//! [`Bencher::iter_batched`].
//!
//! It is a plain wall-clock harness: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill the configured measurement
//! time, and mean ns/iter is printed. There is no statistical analysis or
//! HTML report — the goal is that `cargo bench` builds, runs, and produces
//! comparable numbers offline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the shim
/// re-runs the setup closure per batch regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark (printed next to the timing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled in by the timing loop.
    elapsed_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement window
    /// is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.measurement_time / 10 || warmup_iters < 1 {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target_iters = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target_iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / target_iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        // One warmup pass.
        std::hint::black_box(routine(setup()));
        while measured < self.measurement_time && iters < 10_000_000 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.elapsed_ns_per_iter = measured.as_secs_f64() * 1e9 / iters.max(1) as f64;
    }
}

fn run_one(
    label: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        measurement_time,
        elapsed_ns_per_iter: 0.0,
    };
    f(&mut bencher);
    let ns = bencher.elapsed_ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (ns / 1e9))
        }
        _ => String::new(),
    };
    println!("{label:<50} time: {:>12.1} ns/iter{rate}", ns);
}

/// The benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // The real default is 5 s per benchmark; the shim keeps runs
            // short so `cargo bench` over the whole workspace stays quick.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted for API compatibility; the
    /// shim times one aggregate sample).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.measurement_time, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            measurement_time,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &vec![1u8; 64], |b, data| {
            b.iter(|| data.iter().map(|x| *x as u64).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(Vec::<u64>::new, |mut v| v.push(1), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
