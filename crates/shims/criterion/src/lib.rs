//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace-local shim
//! implements the API subset the `basil-bench` crate uses:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::throughput`], and [`Bencher::iter`] /
//! [`Bencher::iter_batched`].
//!
//! It is a plain wall-clock harness: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill the configured measurement
//! time, and mean ns/iter is printed. There is no statistical analysis or
//! HTML report — the goal is that `cargo bench` builds, runs, and produces
//! comparable numbers offline.
//!
//! Like real criterion, the generated `main` understands a subset of the
//! CLI: positional arguments are substring filters on benchmark labels, and
//! `--test` runs each selected benchmark exactly once without timing (the
//! mode CI smoke steps use: `cargo bench --bench foo -- --test zipf`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Runtime options parsed from the benchmark binary's CLI arguments.
#[derive(Clone, Debug, Default)]
pub struct CliOptions {
    /// Run each benchmark once, untimed (criterion's `--test` smoke mode).
    pub test_mode: bool,
    /// Substring filters; a benchmark runs when any filter matches its
    /// label (all run when empty).
    pub filters: Vec<String>,
}

static CLI_OPTIONS: OnceLock<CliOptions> = OnceLock::new();
static BENCHES_RUN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
/// `(label, mean ns/iter)` of every benchmark this process ran; `None` ns
/// for untimed `--test` passes. Serialized to `BENCH_<bin>.json` when
/// `BASIL_BENCH_JSON` names a directory (see [`finish_cli`]).
static RESULTS: std::sync::Mutex<Vec<(String, Option<f64>)>> = std::sync::Mutex::new(Vec::new());

/// Criterion flags that consume the next argument; their values must not be
/// mistaken for label filters.
fn takes_value(flag: &str) -> bool {
    matches!(
        flag,
        "--profile-time"
            | "--sample-size"
            | "--measurement-time"
            | "--warm-up-time"
            | "--save-baseline"
            | "--baseline"
            | "--load-baseline"
            | "--color"
    )
}

/// Parses `std::env::args` into the global [`CliOptions`]. Called by the
/// `main` that [`criterion_main!`] generates; calling it again is a no-op.
pub fn init_cli_from_args() {
    let mut options = CliOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => options.test_mode = true,
            // Flags real criterion accepts but the shim times its own way.
            "--bench" | "--noplot" | "--quiet" | "--verbose" => {}
            flag if takes_value(flag) => {
                let _ = args.next();
            }
            other => {
                if !other.starts_with('-') {
                    options.filters.push(other.to_string());
                }
            }
        }
    }
    let _ = CLI_OPTIONS.set(options);
}

/// Called by the generated `main` after all groups ran: a filter that
/// selected nothing is an error, not a silent success — otherwise a renamed
/// benchmark would turn a CI smoke gate into a no-op that still passes.
/// Additionally, when `BASIL_BENCH_JSON` names a directory, writes the
/// machine-readable results file (`BENCH_<bin>.json`) CI archives to track
/// the perf trajectory across PRs.
pub fn finish_cli() {
    let options = cli_options();
    let ran = BENCHES_RUN.load(std::sync::atomic::Ordering::Relaxed);
    if no_selection(options, ran) {
        eprintln!(
            "error: filter(s) {:?} matched no benchmark — nothing was run",
            options.filters
        );
        std::process::exit(1);
    }
    if let Ok(dir) = std::env::var("BASIL_BENCH_JSON") {
        if let Err(e) = write_json_results(&dir) {
            eprintln!("error: failed to write BENCH json to {dir}: {e}");
            std::process::exit(1);
        }
    }
}

/// The benchmark binary's stem with cargo's trailing `-<hash>` stripped:
/// `target/release/deps/protocol_bench-1a2b3c` -> `protocol_bench`.
fn bench_bin_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem,
    }
}

/// Resolves a `BASIL_BENCH_JSON` directory. `cargo bench` runs benchmark
/// binaries with the *package* directory as cwd, so a relative path would
/// silently land under `crates/bench/` while CI and humans expect it at the
/// workspace root; relative paths are therefore anchored at the nearest
/// enclosing directory with a `Cargo.lock` (the workspace root), falling
/// back to the cwd when none is found.
fn resolve_json_dir(dir: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(dir);
    if path.is_absolute() {
        return path.to_path_buf();
    }
    let mut probe = std::env::current_dir().unwrap_or_default();
    loop {
        if probe.join("Cargo.lock").is_file() {
            return probe.join(path);
        }
        if !probe.pop() {
            return path.to_path_buf();
        }
    }
}

/// Serializes the run's results as `BENCH_<bin>.json` under `dir` (relative
/// paths resolve against the workspace root, see [`resolve_json_dir`]):
/// `{"bin": ..., "mode": "timed"|"test", "results": {label: ns_per_iter|null}}`.
/// Hand-rolled JSON (labels are plain ASCII benchmark ids; quotes and
/// backslashes escaped defensively), so the offline shim needs no serde.
fn write_json_results(dir: &str) -> std::io::Result<()> {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let results = RESULTS.lock().expect("results poisoned");
    let bin = bench_bin_name();
    let mode = if cli_options().test_mode {
        "test"
    } else {
        "timed"
    };
    let mut body = String::new();
    body.push_str(&format!(
        "{{\n  \"bin\": \"{}\",\n  \"mode\": \"{mode}\",\n  \"results\": {{\n",
        escape(&bin)
    ));
    for (i, (label, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        match ns {
            Some(ns) => body.push_str(&format!("    \"{}\": {ns:.1}{sep}\n", escape(label))),
            None => body.push_str(&format!("    \"{}\": null{sep}\n", escape(label))),
        }
    }
    body.push_str("  }\n}\n");
    let dir = resolve_json_dir(dir);
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("BENCH_{bin}.json")), body)
}

/// Whether a run with `options` that executed `ran` benchmarks constitutes
/// a zero-match filter error.
fn no_selection(options: &CliOptions, ran: usize) -> bool {
    !options.filters.is_empty() && ran == 0
}

fn cli_options() -> &'static CliOptions {
    CLI_OPTIONS.get_or_init(CliOptions::default)
}

fn label_selected(label: &str) -> bool {
    let filters = &cli_options().filters;
    filters.is_empty() || filters.iter().any(|f| label.contains(f.as_str()))
}

/// How batched inputs are sized (accepted for API compatibility; the shim
/// re-runs the setup closure per batch regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark (printed next to the timing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    /// Run the routine once, untimed (`--test` smoke mode).
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled in by the timing loop.
    elapsed_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement window
    /// is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warmup and per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.measurement_time / 10 || warmup_iters < 1 {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target_iters = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target_iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / target_iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        // One warmup pass.
        std::hint::black_box(routine(setup()));
        while measured < self.measurement_time && iters < 10_000_000 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.elapsed_ns_per_iter = measured.as_secs_f64() * 1e9 / iters.max(1) as f64;
    }
}

fn run_one(
    label: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if !label_selected(label) {
        return;
    }
    BENCHES_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let test_mode = cli_options().test_mode;
    let mut bencher = Bencher {
        measurement_time,
        test_mode,
        elapsed_ns_per_iter: 0.0,
    };
    f(&mut bencher);
    if test_mode {
        RESULTS
            .lock()
            .expect("results poisoned")
            .push((label.to_string(), None));
        println!("{label:<50} test: ok (one untimed pass)");
        return;
    }
    let ns = bencher.elapsed_ns_per_iter;
    RESULTS
        .lock()
        .expect("results poisoned")
        .push((label.to_string(), Some(ns)));
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (ns / 1e9))
        }
        _ => String::new(),
    };
    println!("{label:<50} time: {:>12.1} ns/iter{rate}", ns);
}

/// The benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // The real default is 5 s per benchmark; the shim keeps runs
            // short so `cargo bench` over the whole workspace stays quick.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted for API compatibility; the
    /// shim times one aggregate sample).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.measurement_time, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            measurement_time,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_cli_from_args();
            $( $group(); )+
            $crate::finish_cli();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &vec![1u8; 64], |b, data| {
            b.iter(|| data.iter().map(|x| *x as u64).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(Vec::<u64>::new, |mut v| v.push(1), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn test_mode_runs_routine_exactly_once() {
        let mut bencher = Bencher {
            measurement_time: Duration::from_secs(60),
            test_mode: true,
            elapsed_ns_per_iter: 0.0,
        };
        let mut runs = 0u32;
        bencher.iter(|| runs += 1);
        assert_eq!(runs, 1, "untimed single pass");

        let mut batched_runs = 0u32;
        bencher.iter_batched(|| 1u32, |x| batched_runs += x, BatchSize::SmallInput);
        assert_eq!(batched_runs, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        // The global options default to "run everything" when main never
        // parsed arguments (e.g. under `cargo test`).
        assert!(label_selected("anything/at-all"));
        let opts = CliOptions {
            test_mode: false,
            filters: vec!["zipf".into()],
        };
        assert!(opts
            .filters
            .iter()
            .any(|f| "store/prepare_zipf_hot".contains(f.as_str())));
        assert!(!opts
            .filters
            .iter()
            .any(|f| "store/gc_sweep".contains(f.as_str())));
    }

    #[test]
    fn zero_match_filters_are_an_error_not_a_silent_pass() {
        let filtered = CliOptions {
            test_mode: true,
            filters: vec!["zipf".into()],
        };
        assert!(no_selection(&filtered, 0), "filter matched nothing: error");
        assert!(!no_selection(&filtered, 2), "filter matched: fine");
        let unfiltered = CliOptions::default();
        assert!(
            !no_selection(&unfiltered, 0),
            "no filters given: an empty bench binary is not an error"
        );
    }

    #[test]
    fn value_taking_flags_do_not_become_filters() {
        assert!(takes_value("--sample-size"));
        assert!(takes_value("--profile-time"));
        assert!(!takes_value("--test"));
        assert!(!takes_value("--bench"));
    }

    #[test]
    fn bench_bin_name_strips_cargo_hash() {
        // The parsing only strips a 16-hex-digit cargo hash suffix.
        // (bench_bin_name itself reads argv; exercise the rule directly.)
        let strip = |stem: &str| -> String {
            match stem.rsplit_once('-') {
                Some((name, hash))
                    if !name.is_empty()
                        && hash.len() == 16
                        && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                {
                    name.to_string()
                }
                _ => stem.to_string(),
            }
        };
        assert_eq!(strip("protocol_bench-1a2b3c4d5e6f7081"), "protocol_bench");
        assert_eq!(strip("store_bench"), "store_bench");
        assert_eq!(strip("my-bench-notahash"), "my-bench-notahash");
    }

    #[test]
    fn json_results_file_is_written_and_well_formed() {
        RESULTS
            .lock()
            .expect("results")
            .push(("group/case_a".to_string(), Some(123.4)));
        RESULTS
            .lock()
            .expect("results")
            .push(("group/case_b".to_string(), None));
        let dir = std::env::temp_dir().join(format!("bench-json-{}", std::process::id()));
        let dir_s = dir.to_str().expect("utf8 temp dir");
        write_json_results(dir_s).expect("written");
        let bin = bench_bin_name();
        let body =
            std::fs::read_to_string(dir.join(format!("BENCH_{bin}.json"))).expect("file exists");
        assert!(body.contains("\"group/case_a\": 123.4"));
        assert!(body.contains("\"group/case_b\": null"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
