//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so this workspace-local
//! shim implements the API subset the workspace's property tests use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`sample::Index`], [`any`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics: each test function runs `ProptestConfig::cases` random cases
//! from a deterministic per-test seed. Failing cases panic with the values'
//! debug representation. There is **no shrinking** — a failure reports the
//! raw case that triggered it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful random cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is skipped.
    Reject,
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving value production.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed | 1, // never all-zero
        }
    }

    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = end.wrapping_sub(start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// An inclusive-exclusive bound on generated collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Produces vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of a priori unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolves the index against a collection of `size` elements.
        /// Panics if `size` is zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.raw % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// Runs `case` until `config.cases` cases succeed; used by the
/// [`proptest!`] macro expansion.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test name: deterministic across runs and platforms.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(20).max(1_000),
                    "{test_name}: too many rejected cases ({rejected}); \
                     prop_assume! conditions are too restrictive"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed after {passed} passing case(s): {msg}")
            }
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;) => {};
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                let ($($arg,)+) = (
                    $($crate::Strategy::new_value(&($strategy), __proptest_rng),)+
                );
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { $config; $($rest)* }
    };
}

/// Asserts a condition inside a property test; failure fails the case with
/// the generated inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                left,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case when a precondition on the generated inputs does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The common imports of a property test.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated integers respect their range strategies.
        #[test]
        fn ranges_hold(a in 1u64..100, b in 0u8..12, c in 5usize..=9) {
            prop_assert!((1..100).contains(&a));
            prop_assert!(b < 12);
            prop_assert!((5..=9).contains(&c));
        }

        /// Vectors respect the size strategy; indexes resolve in bounds.
        #[test]
        fn vecs_and_indexes(v in crate::collection::vec(0u8..255, 1..40),
                            idx in any::<crate::sample::Index>()) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            let i = idx.index(v.len());
            prop_assert!(i < v.len());
        }

        /// prop_map and tuple strategies compose.
        #[test]
        fn mapping_works(pair in (1u64..10, 1u64..10).prop_map(|(x, y)| x + y)) {
            prop_assert!((2..=18).contains(&pair));
            prop_assume!(pair != 2); // exercise the reject path
            prop_assert_ne!(pair, 2);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_cases(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
