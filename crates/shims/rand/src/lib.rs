//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace-local
//! shim provides the exact API subset the codebase consumes: the
//! [`rngs::SmallRng`] generator, [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically sound for simulation workloads. It does not aim
//! for value-compatibility with the real `rand` crate, only for API
//! compatibility and reproducibility under a fixed seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of 64-bit outputs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values that can be sampled from the "standard" distribution of a type
/// (full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples one value uniformly from the range. Panics if it is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = end.wrapping_sub(start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<Ra: SampleRange>(&mut self, range: Ra) -> Ra::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!((0..10u64).contains(&rng.gen_range(0..10u64)));
            assert!((1..=10u32).contains(&rng.gen_range(1..=10u32)));
            let v = rng.gen_range(-50..100i64);
            assert!((-50..100).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            assert!((0..5usize).contains(&rng.gen_range(0..5usize)));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn degenerate_inclusive_range_is_ok() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(5..=5u64), 5);
        // Full-width range must not overflow.
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
