//! The discrete-event simulation engine.

use crate::actor::{Actor, Context, Output};
use crate::metrics::Metrics;
use crate::network::{NetworkConfig, Partition};
use basil_common::{Duration, NodeId, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Static properties of a simulated node.
#[derive(Clone, Copy, Debug)]
pub struct NodeProps {
    /// Number of CPU cores available for message processing.
    pub cores: u32,
    /// Offset of this node's local clock from global simulation time, in
    /// nanoseconds (positive = clock runs ahead). Models NTP skew.
    pub clock_skew_ns: i64,
}

impl NodeProps {
    /// A client node: clients in the paper's closed-loop benchmark drive a
    /// handful of outstanding requests, so a few cores suffice.
    pub fn client() -> Self {
        NodeProps {
            cores: 2,
            clock_skew_ns: 0,
        }
    }

    /// A replica node matching the paper's m510 servers (8 cores).
    pub fn replica() -> Self {
        NodeProps {
            cores: 8,
            clock_skew_ns: 0,
        }
    }

    /// Overrides the core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Overrides the clock skew.
    pub fn with_skew_ns(mut self, skew: i64) -> Self {
        self.clock_skew_ns = skew;
        self
    }
}

impl Default for NodeProps {
    fn default() -> Self {
        NodeProps {
            cores: 1,
            clock_skew_ns: 0,
        }
    }
}

struct NodeSlot<M> {
    actor: Box<dyn Actor<M>>,
    props: NodeProps,
    core_free: Vec<SimTime>,
    crashed: bool,
}

impl<M> NodeSlot<M> {
    fn local_clock(&self, now: SimTime) -> SimTime {
        let ns = now.as_nanos() as i64 + self.props.clock_skew_ns;
        SimTime::from_nanos(ns.max(0) as u64)
    }

    /// Index of the core that frees up earliest.
    fn earliest_core(&self) -> usize {
        self.core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("nodes have at least one core")
    }
}

#[derive(Debug)]
struct Event<M> {
    at: SimTime,
    seq: u64,
    to: NodeId,
    from: NodeId,
    msg: M,
    is_timer: bool,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulator.
///
/// Generic over the message type `M` exchanged by the actors registered in
/// it. All randomness (latency jitter, message loss) flows from the seed
/// passed to [`Simulation::new`], so runs are reproducible.
pub struct Simulation<M> {
    nodes: HashMap<NodeId, NodeSlot<M>>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    now: SimTime,
    seq: u64,
    network: NetworkConfig,
    partitions: Vec<Partition>,
    rng: SmallRng,
    metrics: Metrics,
    started: bool,
}

impl<M: Clone + 'static> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(seed: u64, network: NetworkConfig) -> Self {
        Simulation {
            nodes: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            network,
            partitions: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            started: false,
        }
    }

    /// Registers an actor under `id`. Panics if the id is already taken.
    pub fn add_node(&mut self, id: NodeId, props: NodeProps, actor: Box<dyn Actor<M>>) {
        assert!(
            !self.nodes.contains_key(&id),
            "node {id:?} registered twice"
        );
        let cores = props.cores.max(1) as usize;
        self.nodes.insert(
            id,
            NodeSlot {
                actor,
                props,
                core_free: vec![SimTime::ZERO; cores],
                crashed: false,
            },
        );
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulation-wide metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// All registered node identifiers.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Immutable access to a registered actor, downcast to its concrete type.
    pub fn actor<A: Actor<M>>(&self, id: NodeId) -> Option<&A> {
        self.nodes
            .get(&id)
            .and_then(|slot| slot.actor.as_any().downcast_ref::<A>())
    }

    /// Mutable access to a registered actor, downcast to its concrete type.
    pub fn actor_mut<A: Actor<M>>(&mut self, id: NodeId) -> Option<&mut A> {
        self.nodes
            .get_mut(&id)
            .and_then(|slot| slot.actor.as_any_mut().downcast_mut::<A>())
    }

    /// Marks a node as crashed: all subsequent deliveries to it are dropped.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.crashed = true;
        }
    }

    /// Restarts a crashed node (its actor state is preserved).
    pub fn restart(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.crashed = false;
        }
    }

    /// Installs a network partition. Returns its index for later healing.
    pub fn add_partition(&mut self, partition: Partition) -> usize {
        self.partitions.push(partition);
        self.partitions.len() - 1
    }

    /// Mutable access to an installed partition (to activate or heal it).
    pub fn partition_mut(&mut self, index: usize) -> Option<&mut Partition> {
        self.partitions.get_mut(index)
    }

    /// Injects a message from the outside world (e.g. the benchmark harness)
    /// to be delivered to `to` at time `at`.
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: M, at: SimTime) {
        let seq = self.next_seq();
        self.queue.push(Reverse(Event {
            at,
            seq,
            to,
            from,
            msg,
            is_timer: false,
        }));
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids = self.node_ids();
        for id in ids {
            let slot = self.nodes.get_mut(&id).expect("listed node exists");
            let local = slot.local_clock(SimTime::ZERO);
            let mut ctx = Context::new(id, SimTime::ZERO, local);
            slot.actor.on_start(&mut ctx);
            let (outputs, charged) = ctx.finish();
            let completion = SimTime::ZERO + charged;
            if charged > Duration::ZERO {
                let core = slot.earliest_core();
                slot.core_free[core] = completion;
                self.metrics.node_mut(id).cpu_busy += charged;
            }
            self.apply_outputs(id, completion, outputs);
        }
    }

    /// Runs until the event queue is exhausted or `deadline` is reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event exists");
            self.now = ev.at;
            self.dispatch(ev);
        }
        self.now = deadline.max(self.now);
    }

    /// Runs for `d` of simulated time past the current time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                self.now = ev.at;
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch(&mut self, ev: Event<M>) {
        self.metrics.events_processed += 1;
        self.metrics.last_event_at = ev.at;

        let Some(slot) = self.nodes.get_mut(&ev.to) else {
            // Message to an unknown node: drop.
            self.metrics.messages_dropped += 1;
            return;
        };
        if slot.crashed {
            self.metrics.messages_dropped += 1;
            return;
        }

        // Queue for a free core.
        let core = slot.earliest_core();
        let start = slot.core_free[core].max(ev.at);
        let wait = start - ev.at;
        let local = slot.local_clock(start);

        let mut ctx = Context::new(ev.to, start, local);
        if ev.is_timer {
            slot.actor.on_timer(&mut ctx, ev.msg);
        } else {
            slot.actor.on_message(&mut ctx, ev.from, ev.msg);
        }
        let (outputs, charged) = ctx.finish();
        let completion = start + charged;
        slot.core_free[core] = completion;

        {
            let nm = self.metrics.node_mut(ev.to);
            if ev.is_timer {
                nm.timers_fired += 1;
            } else {
                nm.messages_processed += 1;
            }
            nm.cpu_busy += charged;
            nm.queue_wait += wait;
        }
        self.metrics.messages_delivered += u64::from(!ev.is_timer);

        self.apply_outputs(ev.to, completion, outputs);
    }

    fn apply_outputs(&mut self, from: NodeId, completion: SimTime, outputs: Vec<Output<M>>) {
        for out in outputs {
            match out {
                Output::Send { to, msg } => {
                    self.metrics.messages_sent += 1;
                    self.metrics.node_mut(from).messages_sent += 1;
                    if self.partitions.iter().any(|p| p.blocks(from, to)) {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                    if self.network.sample_drop(&mut self.rng) {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                    let latency = self.network.sample_latency(from, to, &mut self.rng);
                    let seq = self.next_seq();
                    self.queue.push(Reverse(Event {
                        at: completion + latency,
                        seq,
                        to,
                        from,
                        msg,
                        is_timer: false,
                    }));
                }
                Output::Timer { delay, msg } => {
                    let seq = self.next_seq();
                    self.queue.push(Reverse(Event {
                        at: completion + delay,
                        seq,
                        to: from,
                        from,
                        msg,
                        is_timer: true,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;
    use std::any::Any;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    /// Sends `count` pings to a peer on start, counts pongs.
    struct Pinger {
        peer: NodeId,
        count: u32,
        pongs_received: Vec<u32>,
        completion_times: Vec<SimTime>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            for i in 0..self.count {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(i) = msg {
                self.pongs_received.push(i);
                self.completion_times.push(ctx.now());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Echoes pings as pongs, charging a fixed CPU cost per ping.
    struct Echoer {
        cpu_per_ping: Duration,
        handled: u32,
    }

    impl Actor<Msg> for Echoer {
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(i) = msg {
                self.handled += 1;
                ctx.charge(self.cpu_per_ping);
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn client(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }

    fn build_ping_pong(
        seed: u64,
        net: NetworkConfig,
        count: u32,
        cores: u32,
        cpu: Duration,
    ) -> Simulation<Msg> {
        let mut sim = Simulation::new(seed, net);
        sim.add_node(
            client(1),
            NodeProps::default(),
            Box::new(Pinger {
                peer: client(2),
                count,
                pongs_received: Vec::new(),
                completion_times: Vec::new(),
            }),
        );
        sim.add_node(
            client(2),
            NodeProps::default().with_cores(cores),
            Box::new(Echoer {
                cpu_per_ping: cpu,
                handled: 0,
            }),
        );
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 5, 1, Duration::from_micros(10));
        sim.run_until(SimTime::from_millis(10));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger exists");
        assert_eq!(pinger.pongs_received.len(), 5);
        let echoer: &Echoer = sim.actor(client(2)).expect("echoer exists");
        assert_eq!(echoer.handled, 5);
        assert_eq!(sim.metrics().messages_delivered, 10);
    }

    #[test]
    fn single_core_serializes_processing() {
        // 10 pings arrive nearly simultaneously; with one core and 100us per
        // ping, the last pong must come back at least ~1ms after the first.
        let mut sim = build_ping_pong(
            1,
            NetworkConfig::instant(),
            10,
            1,
            Duration::from_micros(100),
        );
        sim.run_until(SimTime::from_millis(50));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert_eq!(pinger.pongs_received.len(), 10);
        let first = *pinger.completion_times.first().expect("non-empty");
        let last = *pinger.completion_times.last().expect("non-empty");
        assert!(
            last - first >= Duration::from_micros(850),
            "expected serialization, got spread {:?}",
            last - first
        );
        let m = sim.metrics().node(client(2)).expect("metrics");
        assert_eq!(m.cpu_busy, Duration::from_micros(1000));
        assert!(m.queue_wait > Duration::ZERO);
    }

    #[test]
    fn more_cores_reduce_latency() {
        let run = |cores: u32| {
            let mut sim = build_ping_pong(
                1,
                NetworkConfig::instant(),
                8,
                cores,
                Duration::from_micros(100),
            );
            sim.run_until(SimTime::from_millis(50));
            let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
            *pinger.completion_times.last().expect("non-empty")
        };
        let serial = run(1);
        let parallel = run(8);
        assert!(
            parallel < serial,
            "8 cores {parallel:?} !< 1 core {serial:?}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let trace = |seed| {
            let mut sim =
                build_ping_pong(seed, NetworkConfig::lan(), 20, 2, Duration::from_micros(30));
            sim.run_until(SimTime::from_millis(20));
            let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
            pinger.completion_times.clone()
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(
            trace(7),
            trace(8),
            "different seeds should differ in jitter"
        );
    }

    #[test]
    fn crashed_node_drops_messages() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 5, 1, Duration::ZERO);
        sim.crash(client(2));
        sim.run_until(SimTime::from_millis(10));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert!(pinger.pongs_received.is_empty());
        assert_eq!(sim.metrics().messages_dropped, 5);
    }

    #[test]
    fn partition_blocks_and_heals() {
        struct PeriodicSender {
            peer: NodeId,
        }
        impl Actor<Msg> for PeriodicSender {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.schedule_self(Duration::from_millis(1), Msg::Tick);
            }
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
                if msg == Msg::Tick {
                    ctx.send(self.peer, Msg::Ping(0));
                    ctx.schedule_self(Duration::from_millis(1), Msg::Tick);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim: Simulation<Msg> = Simulation::new(3, NetworkConfig::lan());
        sim.add_node(
            client(1),
            NodeProps::default(),
            Box::new(PeriodicSender { peer: client(2) }),
        );
        sim.add_node(
            client(2),
            NodeProps::default(),
            Box::new(Echoer {
                cpu_per_ping: Duration::ZERO,
                handled: 0,
            }),
        );
        let pidx = sim.add_partition(Partition::isolating([client(2)]));
        sim.partition_mut(pidx).expect("partition").activate();
        sim.run_until(SimTime::from_millis(10));
        let handled_during_partition = sim.actor::<Echoer>(client(2)).expect("echoer").handled;
        assert_eq!(handled_during_partition, 0);
        sim.partition_mut(pidx).expect("partition").heal();
        sim.run_until(SimTime::from_millis(20));
        assert!(sim.actor::<Echoer>(client(2)).expect("echoer").handled > 5);
    }

    #[test]
    fn clock_skew_shifts_local_clock() {
        struct ClockReader {
            readings: Vec<(SimTime, SimTime)>,
        }
        impl Actor<Msg> for ClockReader {
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {
                self.readings.push((ctx.now(), ctx.local_clock()));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(3, NetworkConfig::instant());
        sim.add_node(
            client(1),
            NodeProps::default().with_skew_ns(2_000_000),
            Box::new(ClockReader { readings: vec![] }),
        );
        sim.inject(client(1), client(1), Msg::Tick, SimTime::from_millis(5));
        sim.run_until(SimTime::from_millis(10));
        let reader: &ClockReader = sim.actor(client(1)).expect("reader");
        let (global, local) = reader.readings[0];
        assert_eq!(local - global, Duration::from_millis(2));
    }

    #[test]
    fn lossy_network_drops_some_messages() {
        let mut sim = build_ping_pong(11, NetworkConfig::lossy(0.5), 100, 4, Duration::ZERO);
        sim.run_until(SimTime::from_millis(100));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert!(pinger.pongs_received.len() < 100);
        assert!(sim.metrics().messages_dropped > 0);
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 3, 1, Duration::ZERO);
        sim.run_until(SimTime::from_micros(10)); // too early for round trips
        let before = sim
            .actor::<Pinger>(client(1))
            .expect("pinger")
            .pongs_received
            .len();
        assert_eq!(before, 0);
        assert_eq!(sim.now(), SimTime::from_micros(10));
        sim.run_until(SimTime::from_millis(5));
        let after = sim
            .actor::<Pinger>(client(1))
            .expect("pinger")
            .pongs_received
            .len();
        assert_eq!(after, 3);
    }

    #[test]
    fn inject_delivers_external_messages() {
        let mut sim: Simulation<Msg> = Simulation::new(1, NetworkConfig::instant());
        sim.add_node(
            client(2),
            NodeProps::default(),
            Box::new(Echoer {
                cpu_per_ping: Duration::ZERO,
                handled: 0,
            }),
        );
        sim.inject(client(2), client(99), Msg::Ping(1), SimTime::from_millis(1));
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(sim.actor::<Echoer>(client(2)).expect("echoer").handled, 1);
    }
}
