//! The discrete-event simulation engine.
//!
//! ## The indexed scheduler
//!
//! The hot loop of every experiment is: pop the earliest event, find the
//! destination actor, run its handler, enqueue its outputs. The original
//! implementation kept one global `BinaryHeap` of events and looked actors
//! up in a `HashMap<NodeId, _>` per delivery; both dominate profiles at
//! high client counts. This version is index-addressed:
//!
//! * **Dense actor slots** — `add_node` assigns each node a slot in a
//!   `Vec`; destination `NodeId`s are resolved to slot indices once, when a
//!   message is *sent*, so a delivery is a bounds-checked array access.
//!   Per-node metrics live in the slot, so the per-delivery accounting
//!   touches no hash map either.
//! * **Bucketed calendar queue** — events are filed by time bucket
//!   (2¹⁶ ns ≈ 66 µs wide). Events in the bucket currently being drained
//!   sit in a small [`BinaryHeap`]; near-future buckets are plain `Vec`s in
//!   a 1024-slot ring (one push = one `Vec::push`); events beyond the
//!   ring's ~67 ms horizon overflow into a fallback heap and are promoted
//!   when the cursor reaches their bucket. Heap discipline is thus paid
//!   only within one bucket (a handful of events) instead of across the
//!   whole queue.
//!
//! ## Determinism contract
//!
//! Delivery order is *identical* to a single global min-heap ordered by
//! `(time, sequence number)`: every event in the drain bucket precedes
//! every event in a later bucket by construction, and ties within a bucket
//! are broken by the globally unique, monotonically assigned sequence
//! number. All randomness (latency jitter, loss) is drawn from one seeded
//! RNG at the same points as before, so a fixed seed reproduces the exact
//! event trace — `tests/golden_trace.rs` pins this with a trace hash
//! captured from the original heap scheduler.

use crate::actor::{Actor, Context, Output};
use crate::metrics::{Metrics, NodeMetrics};
use crate::network::{LinkFault, LinkFaultKind, NetworkConfig, Partition};
use basil_common::{Duration, NodeId, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// A typed in-flight message corruptor: mutates a payload that a
/// [`LinkFaultKind::Corrupt`] fault selected, using the salt for variety.
/// Installed per simulation via [`Simulation::set_corruptor`]; without one,
/// corruption models *detected* garbling on an authenticated channel and the
/// message is discarded instead.
pub type Corruptor<M> = Arc<dyn Fn(&mut M, u64) + Send + Sync>;

/// Static properties of a simulated node.
#[derive(Clone, Copy, Debug)]
pub struct NodeProps {
    /// Number of CPU cores available for message processing.
    pub cores: u32,
    /// Offset of this node's local clock from global simulation time, in
    /// nanoseconds (positive = clock runs ahead). Models NTP skew.
    pub clock_skew_ns: i64,
}

impl NodeProps {
    /// A client node: clients in the paper's closed-loop benchmark drive a
    /// handful of outstanding requests, so a few cores suffice.
    pub fn client() -> Self {
        NodeProps {
            cores: 2,
            clock_skew_ns: 0,
        }
    }

    /// A replica node matching the paper's m510 servers (8 cores).
    pub fn replica() -> Self {
        NodeProps {
            cores: 8,
            clock_skew_ns: 0,
        }
    }

    /// Overrides the core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Overrides the clock skew.
    pub fn with_skew_ns(mut self, skew: i64) -> Self {
        self.clock_skew_ns = skew;
        self
    }
}

impl Default for NodeProps {
    fn default() -> Self {
        NodeProps {
            cores: 1,
            clock_skew_ns: 0,
        }
    }
}

pub(crate) struct NodeSlot<M> {
    pub(crate) id: NodeId,
    pub(crate) actor: Box<dyn Actor<M>>,
    pub(crate) props: NodeProps,
    pub(crate) core_free: Vec<SimTime>,
    pub(crate) crashed: bool,
    pub(crate) metrics: NodeMetrics,
}

/// What executing one event against its destination slot produced. The
/// slot-local half of a dispatch: handler run, per-slot metrics, core
/// accounting. The *global* half (event counters, network sampling, queue
/// pushes) stays with the driver so the slot half can run on a worker
/// thread — see [`crate::parallel`].
pub(crate) enum ExecOutcome<M> {
    /// The destination was crashed; the message is dropped.
    Dropped,
    /// The handler ran.
    Done {
        /// The node that handled the event (source of the outputs).
        from: NodeId,
        /// Time the handler's charged CPU completed (outputs leave then).
        completion: SimTime,
        /// The sends and timers the handler recorded.
        outputs: Vec<Output<M>>,
    },
}

impl<M: 'static> NodeSlot<M> {
    fn local_clock(&self, now: SimTime) -> SimTime {
        let ns = now.as_nanos() as i64 + self.props.clock_skew_ns;
        SimTime::from_nanos(ns.max(0) as u64)
    }

    /// Index of the core that frees up earliest.
    fn earliest_core(&self) -> usize {
        self.core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("nodes have at least one core")
    }

    /// Runs one event's handler against this slot: core queueing, the
    /// handler itself, and the per-slot metrics. Touches nothing but the
    /// slot, so the serial loop and the parallel workers share it — which is
    /// what makes the two runtimes identical by construction.
    pub(crate) fn execute(&mut self, ev: Event<M>) -> ExecOutcome<M> {
        if self.crashed {
            return ExecOutcome::Dropped;
        }
        let core = self.earliest_core();
        let start = self.core_free[core].max(ev.at);
        let wait = start - ev.at;
        let local = self.local_clock(start);

        let mut ctx = Context::new(self.id, start, local);
        if ev.is_timer {
            self.actor.on_timer(&mut ctx, ev.msg);
        } else {
            self.actor.on_message(&mut ctx, ev.from, ev.msg);
        }
        let (outputs, charged) = ctx.finish();
        let completion = start + charged;
        self.core_free[core] = completion;

        if ev.is_timer {
            self.metrics.timers_fired += 1;
        } else {
            self.metrics.messages_processed += 1;
        }
        self.metrics.cpu_busy += charged;
        self.metrics.queue_wait += wait;
        self.metrics.messages_sent += outputs
            .iter()
            .filter(|o| matches!(o, Output::Send { .. }))
            .count() as u64;

        ExecOutcome::Done {
            from: self.id,
            completion,
            outputs,
        }
    }
}

/// Slot index standing for a destination that was not registered when the
/// message was sent; the event is dropped at dispatch, as the heap
/// scheduler did for unknown `NodeId`s.
pub(crate) const UNKNOWN_SLOT: u32 = u32::MAX;

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    /// Destination, pre-resolved to a dense slot index at enqueue time.
    pub(crate) to_slot: u32,
    pub(crate) from: NodeId,
    pub(crate) msg: M,
    pub(crate) is_timer: bool,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Width of one calendar bucket: 2^16 ns ≈ 66 µs, on the order of one LAN
/// message latency, so consecutive protocol events land in the same or
/// adjacent buckets.
const BUCKET_BITS: u32 = 16;
/// Number of ring buckets (power of two). Span = 1024 × 66 µs ≈ 67 ms;
/// protocol timeouts beyond that go to the overflow heap.
const WHEEL_SLOTS: usize = 1024;

const fn bucket_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_BITS
}

/// The calendar event queue: a drain heap for the current bucket, a ring of
/// unsorted near-future buckets, and an overflow heap for the far future.
///
/// Pops are in strict `(at, seq)` order — see the module docs for why this
/// is bit-for-bit identical to one global min-heap.
struct EventQueue<M> {
    /// Events of buckets `<= cursor` (plus anything scheduled in the past,
    /// e.g. an `inject` behind the clock), ordered by `(at, seq)`.
    current: BinaryHeap<Reverse<Event<M>>>,
    /// Ring of future buckets; slot `b & (WHEEL_SLOTS-1)` holds the events
    /// of exactly one bucket `b` in `(cursor, cursor + WHEEL_SLOTS)`.
    wheel: Vec<Vec<Event<M>>>,
    /// Number of events currently filed in the ring.
    wheel_len: usize,
    /// Events more than the ring span into the future.
    overflow: BinaryHeap<Reverse<Event<M>>>,
    /// Bucket currently being drained through `current`.
    cursor: u64,
    /// Total events queued.
    len: usize,
}

impl<M> EventQueue<M> {
    fn new() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, ev: Event<M>) {
        let b = bucket_of(ev.at);
        self.len += 1;
        if b <= self.cursor {
            self.current.push(Reverse(ev));
        } else if b - self.cursor < WHEEL_SLOTS as u64 {
            self.wheel[(b as usize) & (WHEEL_SLOTS - 1)].push(ev);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Moves the cursor to the next non-empty bucket and spills that
    /// bucket's events into the drain heap. No-op when nothing is queued
    /// beyond the cursor.
    fn advance(&mut self) {
        let next_overflow = self.overflow.peek().map(|Reverse(e)| bucket_of(e.at));
        // The ring scan visits buckets in increasing order: a non-empty
        // slot at distance d from the cursor can only hold bucket
        // `cursor + d` (two buckets of one slot are WHEEL_SLOTS apart and
        // cannot both be within the ring's open window).
        let mut next_wheel = None;
        if self.wheel_len > 0 {
            for d in 1..WHEEL_SLOTS as u64 {
                let slot = ((self.cursor + d) as usize) & (WHEEL_SLOTS - 1);
                if !self.wheel[slot].is_empty() {
                    next_wheel = Some(self.cursor + d);
                    break;
                }
            }
        }
        let target = match (next_wheel, next_overflow) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => return,
        };
        self.cursor = target;
        if next_wheel == Some(target) {
            let slot = (target as usize) & (WHEEL_SLOTS - 1);
            let events = std::mem::take(&mut self.wheel[slot]);
            self.wheel_len -= events.len();
            self.current.extend(events.into_iter().map(Reverse));
        }
        while let Some(Reverse(e)) = self.overflow.peek() {
            if bucket_of(e.at) > self.cursor {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked event exists");
            self.current.push(Reverse(e));
        }
    }

    /// Ensures the drain heap holds the globally earliest event.
    fn prime(&mut self) {
        while self.current.is_empty() && (self.wheel_len > 0 || !self.overflow.is_empty()) {
            self.advance();
        }
    }

    /// Timestamp of the earliest queued event.
    fn peek_at(&mut self) -> Option<SimTime> {
        self.prime();
        self.current.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest queued event.
    fn pop(&mut self) -> Option<Event<M>> {
        self.prime();
        let Reverse(ev) = self.current.pop()?;
        self.len -= 1;
        Some(ev)
    }

    /// Number of events currently in the drain heap (primed by a preceding
    /// `peek_at`). The drain bucket is at least one lookahead window wide,
    /// so this is an upper bound on the next epoch's size — the parallel
    /// driver's cheap density hint.
    fn current_len(&self) -> usize {
        self.current.len()
    }
}

/// The discrete-event simulator.
///
/// Generic over the message type `M` exchanged by the actors registered in
/// it. All randomness (latency jitter, message loss) flows from the seed
/// passed to [`Simulation::new`], so runs are reproducible; see the module
/// docs for the scheduler design and the determinism contract.
pub struct Simulation<M> {
    /// Dense slots; `None` only transiently, while a slot is checked out to
    /// a parallel worker (see [`crate::parallel`]). Between runs every slot
    /// is home.
    pub(crate) slots: Vec<Option<NodeSlot<M>>>,
    index: HashMap<NodeId, u32>,
    queue: EventQueue<M>,
    now: SimTime,
    seq: u64,
    pub(crate) network: NetworkConfig,
    partitions: Vec<Partition>,
    /// Targeted, time-windowed link faults (see [`LinkFault`]); consulted in
    /// [`Simulation::apply_outputs`] only, so the serial and parallel
    /// runtimes see the identical fault decisions.
    link_faults: Vec<LinkFault>,
    corruptor: Option<Corruptor<M>>,
    rng: SmallRng,
    /// Registered node ids in sorted order, maintained on `add_node` so
    /// `node_ids` is allocation-free and startup order is deterministic.
    node_order: Vec<NodeId>,
    /// Whole-simulation counters; the per-node breakdown lives in the
    /// slots and is assembled on demand by [`Simulation::metrics`].
    pub(crate) global: Metrics,
    started: bool,
}

impl<M: Clone + 'static> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(seed: u64, network: NetworkConfig) -> Self {
        Simulation {
            slots: Vec::new(),
            index: HashMap::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            seq: 0,
            network,
            partitions: Vec::new(),
            link_faults: Vec::new(),
            corruptor: None,
            rng: SmallRng::seed_from_u64(seed),
            node_order: Vec::new(),
            global: Metrics::default(),
            started: false,
        }
    }

    /// Registers an actor under `id`. Panics if the id is already taken.
    ///
    /// Destinations are resolved to dense slot indices when a message is
    /// sent, so nodes should be registered before the simulation runs;
    /// messages sent to an id that is unregistered at send time are
    /// dropped on delivery.
    pub fn add_node(&mut self, id: NodeId, props: NodeProps, actor: Box<dyn Actor<M>>) {
        assert!(
            !self.index.contains_key(&id),
            "node {id:?} registered twice"
        );
        let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 nodes");
        assert!(slot != UNKNOWN_SLOT, "node capacity exhausted");
        let cores = props.cores.max(1) as usize;
        self.index.insert(id, slot);
        let pos = self
            .node_order
            .binary_search(&id)
            .expect_err("id not yet registered");
        self.node_order.insert(pos, id);
        self.slots.push(Some(NodeSlot {
            id,
            actor,
            props,
            core_free: vec![SimTime::ZERO; cores],
            crashed: false,
            metrics: NodeMetrics::default(),
        }));
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulation-wide metrics collected so far: the global counters plus
    /// the per-node breakdown, assembled from the dense per-slot records.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.global.clone();
        m.per_node = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|s| (s.id, s.metrics.clone()))
            .collect();
        m
    }

    /// The metrics of one node, without assembling the full report.
    pub fn node_metrics(&self, id: NodeId) -> Option<&NodeMetrics> {
        self.slot_ref(id).map(|s| &s.metrics)
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).map(|i| *i as usize)
    }

    fn slot_ref(&self, id: NodeId) -> Option<&NodeSlot<M>> {
        self.slot_of(id).and_then(|i| self.slots[i].as_ref())
    }

    fn slot_mut(&mut self, id: NodeId) -> Option<&mut NodeSlot<M>> {
        self.slot_of(id).and_then(|i| self.slots[i].as_mut())
    }

    /// All registered node identifiers, in sorted order.
    ///
    /// Allocation-free: the sorted order is maintained incrementally by
    /// [`Simulation::add_node`]. Collect if you need to mutate the
    /// simulation while iterating.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_order.iter().copied()
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Immutable access to a registered actor, downcast to its concrete type.
    pub fn actor<A: Actor<M>>(&self, id: NodeId) -> Option<&A> {
        self.slot_ref(id)
            .and_then(|s| s.actor.as_any().downcast_ref::<A>())
    }

    /// Mutable access to a registered actor, downcast to its concrete type.
    pub fn actor_mut<A: Actor<M>>(&mut self, id: NodeId) -> Option<&mut A> {
        self.slot_mut(id)
            .and_then(|s| s.actor.as_any_mut().downcast_mut::<A>())
    }

    /// Marks a node as crashed: all subsequent deliveries to it are dropped.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(s) = self.slot_mut(id) {
            s.crashed = true;
        }
    }

    /// *Warm*-restarts a crashed node: deliveries resume and the actor wakes
    /// with its full pre-crash memory, as if it had merely been paused. This
    /// models a long GC stall or scheduling hiccup; a real process crash
    /// loses memory — model that with [`Simulation::restart_amnesia`].
    pub fn restart(&mut self, id: NodeId) {
        if let Some(s) = self.slot_mut(id) {
            s.crashed = false;
        }
    }

    /// *Amnesia*-restarts a crashed node: the registered actor is replaced
    /// by `actor` — typically rebuilt from whatever durable state the caller
    /// salvaged from the old one — and deliveries resume. Returns the old
    /// boxed actor (so the caller can drop or inspect it), or `None` if `id`
    /// is not registered.
    ///
    /// If the simulation has already started, the replacement's
    /// [`Actor::on_start`] runs at the current simulation time with the same
    /// core accounting as a message delivery, so anything it sends or
    /// schedules (catch-up requests, recovery deadlines) enters the timeline
    /// deterministically.
    pub fn restart_amnesia(
        &mut self,
        id: NodeId,
        actor: Box<dyn Actor<M>>,
    ) -> Option<Box<dyn Actor<M>>> {
        let i = self.slot_of(id)?;
        let now = self.now;
        let started = self.started;
        let slot = self.slots[i].as_mut()?;
        let old = std::mem::replace(&mut slot.actor, actor);
        slot.crashed = false;
        if started {
            let core = slot.earliest_core();
            let start = slot.core_free[core].max(now);
            let local = slot.local_clock(start);
            let mut ctx = Context::new(id, start, local);
            slot.actor.on_start(&mut ctx);
            let (outputs, charged) = ctx.finish();
            let completion = start + charged;
            if charged > Duration::ZERO {
                slot.core_free[core] = completion;
                slot.metrics.cpu_busy += charged;
            }
            slot.metrics.messages_sent += outputs
                .iter()
                .filter(|o| matches!(o, Output::Send { .. }))
                .count() as u64;
            self.apply_outputs(i as u32, id, completion, outputs);
        }
        Some(old)
    }

    /// Installs a network partition. Returns its index for later healing.
    pub fn add_partition(&mut self, partition: Partition) -> usize {
        self.partitions.push(partition);
        self.partitions.len() - 1
    }

    /// Mutable access to an installed partition (to activate or heal it).
    pub fn partition_mut(&mut self, index: usize) -> Option<&mut Partition> {
        self.partitions.get_mut(index)
    }

    /// Installs a targeted link fault (drop / delay / replay / corrupt on a
    /// matcher-selected set of links, active during a time window). Returns
    /// its index. Faults are evaluated in installation order per message.
    pub fn add_link_fault(&mut self, fault: LinkFault) -> usize {
        self.link_faults.push(fault);
        self.link_faults.len() - 1
    }

    /// Removes every installed link fault.
    pub fn clear_link_faults(&mut self) {
        self.link_faults.clear();
    }

    /// Installs the typed corruptor applied by [`LinkFaultKind::Corrupt`]
    /// faults. Without one, corrupted messages are discarded (detected
    /// garble on an authenticated channel) rather than mutated.
    pub fn set_corruptor(&mut self, corruptor: Corruptor<M>) {
        self.corruptor = Some(corruptor);
    }

    /// Injects a message from the outside world (e.g. the benchmark harness)
    /// to be delivered to `to` at time `at`.
    ///
    /// Like actor sends, the destination is resolved when this call is
    /// made: `to` must already be registered via [`Simulation::add_node`],
    /// otherwise the message is dropped at delivery time (counted in
    /// `messages_dropped`).
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: M, at: SimTime) {
        let seq = self.next_seq();
        let to_slot = self.index.get(&to).copied().unwrap_or(UNKNOWN_SLOT);
        self.queue.push(Event {
            at,
            seq,
            to_slot,
            from,
            msg,
            is_timer: false,
        });
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub(crate) fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for pos in 0..self.node_order.len() {
            let id = self.node_order[pos];
            let i = self.slot_of(id).expect("listed node exists");
            let slot = self.slots[i].as_mut().expect("slot is home");
            let local = slot.local_clock(SimTime::ZERO);
            let mut ctx = Context::new(id, SimTime::ZERO, local);
            slot.actor.on_start(&mut ctx);
            let (outputs, charged) = ctx.finish();
            let completion = SimTime::ZERO + charged;
            if charged > Duration::ZERO {
                let core = slot.earliest_core();
                slot.core_free[core] = completion;
                slot.metrics.cpu_busy += charged;
            }
            slot.metrics.messages_sent += outputs
                .iter()
                .filter(|o| matches!(o, Output::Send { .. }))
                .count() as u64;
            self.apply_outputs(i as u32, id, completion, outputs);
        }
    }

    /// Runs until the event queue is exhausted or `deadline` is reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.now = ev.at;
            self.dispatch(ev);
        }
        self.now = deadline.max(self.now);
    }

    /// Runs for `d` of simulated time past the current time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.queue.pop() {
            Some(ev) => {
                self.now = ev.at;
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn dispatch(&mut self, ev: Event<M>) -> Option<SimTime> {
        let (at, is_timer, to_slot) = (ev.at, ev.is_timer, ev.to_slot);
        let outcome = match self
            .slots
            .get_mut(to_slot as usize)
            .and_then(Option::as_mut)
        {
            Some(slot) => slot.execute(ev),
            // Message to a node unknown at send time: drop.
            None => ExecOutcome::Dropped,
        };
        self.apply_exec(to_slot, at, is_timer, outcome)
    }

    /// Applies a handler's recorded outputs: network sampling (partitions,
    /// loss, latency jitter) and queue insertion, in output order. This is
    /// the *only* place randomness is consumed, so any runtime that applies
    /// outputs in serial `(time, seq)` dispatch order reproduces the exact
    /// event trace. Returns the earliest timestamp enqueued (used by the
    /// parallel driver's epoch-safety check).
    pub(crate) fn apply_outputs(
        &mut self,
        from_slot: u32,
        from: NodeId,
        completion: SimTime,
        outputs: Vec<Output<M>>,
    ) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for out in outputs {
            match out {
                Output::Send { to, mut msg } => {
                    self.global.messages_sent += 1;
                    if self.partitions.iter().any(|p| p.blocks(from, to)) {
                        self.global.messages_dropped += 1;
                        continue;
                    }
                    if self.network.sample_drop(&mut self.rng) {
                        self.global.messages_dropped += 1;
                        continue;
                    }
                    // Targeted link faults, in installation order. Matching
                    // is deterministic and only matching faults draw from
                    // the RNG, so with no faults installed the RNG stream —
                    // and every pinned golden trace — is untouched.
                    let mut extra_delay = Duration::ZERO;
                    let mut replay = false;
                    let mut fault_dropped = false;
                    if !self.link_faults.is_empty() {
                        for f in &self.link_faults {
                            if !f.applies(completion, from, to) {
                                continue;
                            }
                            match f.kind {
                                LinkFaultKind::Drop { probability } => {
                                    if self.rng.gen::<f64>() < probability {
                                        fault_dropped = true;
                                        break;
                                    }
                                }
                                LinkFaultKind::Delay { extra } => extra_delay += extra,
                                LinkFaultKind::Replay { probability } => {
                                    if self.rng.gen::<f64>() < probability {
                                        replay = true;
                                    }
                                }
                                LinkFaultKind::Corrupt { probability } => {
                                    if self.rng.gen::<f64>() < probability {
                                        self.global.messages_corrupted += 1;
                                        match &self.corruptor {
                                            Some(c) => {
                                                let salt = self.rng.gen::<u64>();
                                                c(&mut msg, salt);
                                            }
                                            // Detected garble on an
                                            // authenticated channel: the
                                            // receiver discards it.
                                            None => {
                                                fault_dropped = true;
                                                break;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if fault_dropped {
                        self.global.messages_dropped += 1;
                        continue;
                    }
                    let to_slot = self.index.get(&to).copied().unwrap_or(UNKNOWN_SLOT);
                    let dup = if replay {
                        self.global.messages_replayed += 1;
                        Some(msg.clone())
                    } else {
                        None
                    };
                    let latency =
                        self.network.sample_latency(from, to, &mut self.rng) + extra_delay;
                    let seq = self.next_seq();
                    let at = completion + latency;
                    earliest = Some(earliest.map_or(at, |e: SimTime| e.min(at)));
                    self.queue.push(Event {
                        at,
                        seq,
                        to_slot,
                        from,
                        msg,
                        is_timer: false,
                    });
                    if let Some(msg) = dup {
                        let latency =
                            self.network.sample_latency(from, to, &mut self.rng) + extra_delay;
                        let seq = self.next_seq();
                        let at = completion + latency;
                        earliest = Some(earliest.map_or(at, |e: SimTime| e.min(at)));
                        self.queue.push(Event {
                            at,
                            seq,
                            to_slot,
                            from,
                            msg,
                            is_timer: false,
                        });
                    }
                }
                Output::Timer { delay, msg } => {
                    let seq = self.next_seq();
                    let at = completion + delay;
                    earliest = Some(earliest.map_or(at, |e: SimTime| e.min(at)));
                    self.queue.push(Event {
                        at,
                        seq,
                        to_slot: from_slot,
                        from,
                        msg,
                        is_timer: true,
                    });
                }
            }
        }
        earliest
    }

    /// Records the driver-side accounting for one dispatched event and
    /// applies its outputs. Shared by the serial loop and the parallel
    /// driver's in-order apply stage.
    pub(crate) fn apply_exec(
        &mut self,
        to_slot: u32,
        at: SimTime,
        is_timer: bool,
        outcome: ExecOutcome<M>,
    ) -> Option<SimTime> {
        self.global.events_processed += 1;
        self.global.last_event_at = at;
        self.now = at;
        match outcome {
            ExecOutcome::Dropped => {
                self.global.messages_dropped += 1;
                None
            }
            ExecOutcome::Done {
                from,
                completion,
                outputs,
            } => {
                self.global.messages_delivered += u64::from(!is_timer);
                self.apply_outputs(to_slot, from, completion, outputs)
            }
        }
    }

    /// Timestamp of the earliest queued event (primes the drain heap).
    pub(crate) fn peek_at(&mut self) -> Option<SimTime> {
        self.queue.peek_at()
    }

    /// Upper bound on the next epoch's size — see `EventQueue::current_len`.
    pub(crate) fn queue_density(&self) -> usize {
        self.queue.current_len()
    }

    /// Pops and dispatches exactly one event (the serial loop's step,
    /// exposed for the parallel driver's sparse-queue path).
    pub(crate) fn step_one(&mut self) {
        if let Some(ev) = self.queue.pop() {
            self.dispatch(ev);
        }
    }

    /// Pops the next *epoch*: the maximal run of queued events whose
    /// timestamps all fall within `lookahead` of the earliest pending event
    /// (and at or before `deadline`), appended to `buf` in `(time, seq)`
    /// order.
    ///
    /// If `lookahead` is at most the minimum delay of any send latency or
    /// timer, no event generated by an epoch event can land inside the
    /// epoch, so the epoch's events can be executed before any of their
    /// outputs are applied — the invariant the parallel runtime builds on.
    pub(crate) fn pop_epoch(
        &mut self,
        deadline: SimTime,
        lookahead: Duration,
        buf: &mut Vec<Event<M>>,
    ) {
        let Some(first_at) = self.queue.peek_at() else {
            return;
        };
        if first_at > deadline {
            return;
        }
        let horizon = first_at.saturating_add(lookahead.max(Duration::from_nanos(1)));
        while let Some(at) = self.queue.peek_at() {
            if at > deadline || at >= horizon {
                break;
            }
            buf.push(self.queue.pop().expect("peeked event exists"));
        }
    }

    /// Pushes un-executed events back into the queue (the inline epoch path
    /// backs out when an epoch event schedules work inside the epoch
    /// window). Events keep their original sequence numbers, so ordering is
    /// unaffected.
    pub(crate) fn requeue(&mut self, events: impl IntoIterator<Item = Event<M>>) {
        for ev in events {
            self.queue.push(ev);
        }
    }

    /// Takes the destination slot of `ev` out of the table (checked out to a
    /// worker) — `None` when the destination is unknown or already taken.
    pub(crate) fn take_slot(&mut self, idx: u32) -> Option<NodeSlot<M>> {
        self.slots.get_mut(idx as usize).and_then(Option::take)
    }

    /// Returns a checked-out slot to its home position.
    pub(crate) fn put_slot(&mut self, idx: u32, slot: NodeSlot<M>) {
        let home = &mut self.slots[idx as usize];
        debug_assert!(home.is_none(), "slot {idx} returned twice");
        *home = Some(slot);
    }

    /// Advances the clock to `deadline` if nothing later ran (used by the
    /// parallel driver to mirror `run_until`'s final clock rule).
    pub(crate) fn finish_run(&mut self, deadline: SimTime) {
        self.now = deadline.max(self.now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;
    use std::any::Any;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    /// Sends `count` pings to a peer on start, counts pongs.
    struct Pinger {
        peer: NodeId,
        count: u32,
        pongs_received: Vec<u32>,
        completion_times: Vec<SimTime>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            for i in 0..self.count {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(i) = msg {
                self.pongs_received.push(i);
                self.completion_times.push(ctx.now());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Echoes pings as pongs, charging a fixed CPU cost per ping.
    struct Echoer {
        cpu_per_ping: Duration,
        handled: u32,
    }

    impl Actor<Msg> for Echoer {
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(i) = msg {
                self.handled += 1;
                ctx.charge(self.cpu_per_ping);
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn client(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }

    fn build_ping_pong(
        seed: u64,
        net: NetworkConfig,
        count: u32,
        cores: u32,
        cpu: Duration,
    ) -> Simulation<Msg> {
        let mut sim = Simulation::new(seed, net);
        sim.add_node(
            client(1),
            NodeProps::default(),
            Box::new(Pinger {
                peer: client(2),
                count,
                pongs_received: Vec::new(),
                completion_times: Vec::new(),
            }),
        );
        sim.add_node(
            client(2),
            NodeProps::default().with_cores(cores),
            Box::new(Echoer {
                cpu_per_ping: cpu,
                handled: 0,
            }),
        );
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 5, 1, Duration::from_micros(10));
        sim.run_until(SimTime::from_millis(10));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger exists");
        assert_eq!(pinger.pongs_received.len(), 5);
        let echoer: &Echoer = sim.actor(client(2)).expect("echoer exists");
        assert_eq!(echoer.handled, 5);
        assert_eq!(sim.metrics().messages_delivered, 10);
    }

    #[test]
    fn single_core_serializes_processing() {
        // 10 pings arrive nearly simultaneously; with one core and 100us per
        // ping, the last pong must come back at least ~1ms after the first.
        let mut sim = build_ping_pong(
            1,
            NetworkConfig::instant(),
            10,
            1,
            Duration::from_micros(100),
        );
        sim.run_until(SimTime::from_millis(50));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert_eq!(pinger.pongs_received.len(), 10);
        let first = *pinger.completion_times.first().expect("non-empty");
        let last = *pinger.completion_times.last().expect("non-empty");
        assert!(
            last - first >= Duration::from_micros(850),
            "expected serialization, got spread {:?}",
            last - first
        );
        let m = sim.node_metrics(client(2)).expect("metrics");
        assert_eq!(m.cpu_busy, Duration::from_micros(1000));
        assert!(m.queue_wait > Duration::ZERO);
    }

    #[test]
    fn more_cores_reduce_latency() {
        let run = |cores: u32| {
            let mut sim = build_ping_pong(
                1,
                NetworkConfig::instant(),
                8,
                cores,
                Duration::from_micros(100),
            );
            sim.run_until(SimTime::from_millis(50));
            let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
            *pinger.completion_times.last().expect("non-empty")
        };
        let serial = run(1);
        let parallel = run(8);
        assert!(
            parallel < serial,
            "8 cores {parallel:?} !< 1 core {serial:?}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let trace = |seed| {
            let mut sim =
                build_ping_pong(seed, NetworkConfig::lan(), 20, 2, Duration::from_micros(30));
            sim.run_until(SimTime::from_millis(20));
            let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
            pinger.completion_times.clone()
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(
            trace(7),
            trace(8),
            "different seeds should differ in jitter"
        );
    }

    #[test]
    fn crashed_node_drops_messages() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 5, 1, Duration::ZERO);
        sim.crash(client(2));
        sim.run_until(SimTime::from_millis(10));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert!(pinger.pongs_received.is_empty());
        assert_eq!(sim.metrics().messages_dropped, 5);
    }

    #[test]
    fn partition_blocks_and_heals() {
        struct PeriodicSender {
            peer: NodeId,
        }
        impl Actor<Msg> for PeriodicSender {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.schedule_self(Duration::from_millis(1), Msg::Tick);
            }
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
                if msg == Msg::Tick {
                    ctx.send(self.peer, Msg::Ping(0));
                    ctx.schedule_self(Duration::from_millis(1), Msg::Tick);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim: Simulation<Msg> = Simulation::new(3, NetworkConfig::lan());
        sim.add_node(
            client(1),
            NodeProps::default(),
            Box::new(PeriodicSender { peer: client(2) }),
        );
        sim.add_node(
            client(2),
            NodeProps::default(),
            Box::new(Echoer {
                cpu_per_ping: Duration::ZERO,
                handled: 0,
            }),
        );
        let pidx = sim.add_partition(Partition::isolating([client(2)]));
        sim.partition_mut(pidx).expect("partition").activate();
        sim.run_until(SimTime::from_millis(10));
        let handled_during_partition = sim.actor::<Echoer>(client(2)).expect("echoer").handled;
        assert_eq!(handled_during_partition, 0);
        sim.partition_mut(pidx).expect("partition").heal();
        sim.run_until(SimTime::from_millis(20));
        assert!(sim.actor::<Echoer>(client(2)).expect("echoer").handled > 5);
    }

    #[test]
    fn clock_skew_shifts_local_clock() {
        struct ClockReader {
            readings: Vec<(SimTime, SimTime)>,
        }
        impl Actor<Msg> for ClockReader {
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {
                self.readings.push((ctx.now(), ctx.local_clock()));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(3, NetworkConfig::instant());
        sim.add_node(
            client(1),
            NodeProps::default().with_skew_ns(2_000_000),
            Box::new(ClockReader { readings: vec![] }),
        );
        sim.inject(client(1), client(1), Msg::Tick, SimTime::from_millis(5));
        sim.run_until(SimTime::from_millis(10));
        let reader: &ClockReader = sim.actor(client(1)).expect("reader");
        let (global, local) = reader.readings[0];
        assert_eq!(local - global, Duration::from_millis(2));
    }

    #[test]
    fn lossy_network_drops_some_messages() {
        let mut sim = build_ping_pong(11, NetworkConfig::lossy(0.5), 100, 4, Duration::ZERO);
        sim.run_until(SimTime::from_millis(100));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert!(pinger.pongs_received.len() < 100);
        assert!(sim.metrics().messages_dropped > 0);
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 3, 1, Duration::ZERO);
        sim.run_until(SimTime::from_micros(10)); // too early for round trips
        let before = sim
            .actor::<Pinger>(client(1))
            .expect("pinger")
            .pongs_received
            .len();
        assert_eq!(before, 0);
        assert_eq!(sim.now(), SimTime::from_micros(10));
        sim.run_until(SimTime::from_millis(5));
        let after = sim
            .actor::<Pinger>(client(1))
            .expect("pinger")
            .pongs_received
            .len();
        assert_eq!(after, 3);
    }

    #[test]
    fn inject_delivers_external_messages() {
        let mut sim: Simulation<Msg> = Simulation::new(1, NetworkConfig::instant());
        sim.add_node(
            client(2),
            NodeProps::default(),
            Box::new(Echoer {
                cpu_per_ping: Duration::ZERO,
                handled: 0,
            }),
        );
        sim.inject(client(2), client(99), Msg::Ping(1), SimTime::from_millis(1));
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(sim.actor::<Echoer>(client(2)).expect("echoer").handled, 1);
    }

    /// A timer far beyond the calendar ring's span must take the overflow
    /// path and still fire at the right time, after nearer events.
    #[test]
    fn far_future_timers_survive_the_overflow_path() {
        struct LongTimer {
            fired_at: Vec<SimTime>,
        }
        impl Actor<Msg> for LongTimer {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                // Far beyond WHEEL_SLOTS * 2^BUCKET_BITS ns (~67 ms).
                ctx.schedule_self(Duration::from_millis(500), Msg::Tick);
                ctx.schedule_self(Duration::from_millis(250), Msg::Tick);
                ctx.schedule_self(Duration::from_micros(10), Msg::Tick);
            }
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {
                self.fired_at.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(1, NetworkConfig::instant());
        sim.add_node(
            client(1),
            NodeProps::default(),
            Box::new(LongTimer { fired_at: vec![] }),
        );
        sim.run_until(SimTime::from_secs(1));
        let t: &LongTimer = sim.actor(client(1)).expect("timer actor");
        assert_eq!(
            t.fired_at,
            vec![
                SimTime::from_micros(10),
                SimTime::from_millis(250),
                SimTime::from_millis(500),
            ]
        );
    }

    use crate::network::{LinkFault, LinkFaultKind, NodeMatcher};

    #[test]
    fn link_fault_drop_blocks_only_inside_window() {
        struct PeriodicPinger {
            peer: NodeId,
        }
        impl Actor<Msg> for PeriodicPinger {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.schedule_self(Duration::from_millis(1), Msg::Tick);
            }
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
                if msg == Msg::Tick {
                    ctx.send(self.peer, Msg::Ping(0));
                    ctx.schedule_self(Duration::from_millis(1), Msg::Tick);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(5, NetworkConfig::instant());
        sim.add_node(
            client(1),
            NodeProps::default(),
            Box::new(PeriodicPinger { peer: client(2) }),
        );
        sim.add_node(
            client(2),
            NodeProps::default(),
            Box::new(Echoer {
                cpu_per_ping: Duration::ZERO,
                handled: 0,
            }),
        );
        // Pings leave at 1, 2, ..., 9 ms; the window [2, 6) swallows the
        // ones at 2, 3, 4, 5 ms.
        sim.add_link_fault(LinkFault::new(
            LinkFaultKind::Drop { probability: 1.0 },
            NodeMatcher::Node(client(1)),
            NodeMatcher::Node(client(2)),
            SimTime::from_millis(2),
            SimTime::from_millis(6),
        ));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.actor::<Echoer>(client(2)).expect("echoer").handled, 5);
        assert_eq!(sim.metrics().messages_dropped, 4);
    }

    #[test]
    fn link_fault_replay_duplicates_matching_messages() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 5, 2, Duration::ZERO);
        sim.add_link_fault(LinkFault::new(
            LinkFaultKind::Replay { probability: 1.0 },
            NodeMatcher::Node(client(1)),
            NodeMatcher::Node(client(2)),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        sim.run_until(SimTime::from_millis(10));
        // Every ping delivered twice; pongs are not matched by the fault.
        assert_eq!(sim.actor::<Echoer>(client(2)).expect("echoer").handled, 10);
        assert_eq!(sim.metrics().messages_replayed, 5);
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert_eq!(pinger.pongs_received.len(), 10);
    }

    #[test]
    fn link_fault_delay_adds_to_latency() {
        let mut sim = build_ping_pong(1, NetworkConfig::instant(), 1, 1, Duration::ZERO);
        sim.add_link_fault(LinkFault::new(
            LinkFaultKind::Delay {
                extra: Duration::from_millis(3),
            },
            NodeMatcher::Any,
            NodeMatcher::Node(client(2)),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        sim.run_until(SimTime::from_millis(10));
        let pinger: &Pinger = sim.actor(client(1)).expect("pinger");
        assert_eq!(pinger.pongs_received.len(), 1);
        assert!(
            pinger.completion_times[0] >= SimTime::from_millis(3),
            "ping delayed 3 ms: {:?}",
            pinger.completion_times[0]
        );
    }

    #[test]
    fn corrupt_without_corruptor_discards_as_detected_garble() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 5, 1, Duration::ZERO);
        sim.add_link_fault(LinkFault::new(
            LinkFaultKind::Corrupt { probability: 1.0 },
            NodeMatcher::Clients,
            NodeMatcher::Node(client(2)),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.actor::<Echoer>(client(2)).expect("echoer").handled, 0);
        let m = sim.metrics();
        assert_eq!(m.messages_corrupted, 5);
        assert_eq!(m.messages_dropped, 5);
    }

    #[test]
    fn corrupt_with_corruptor_mutates_payload() {
        let mut sim = build_ping_pong(1, NetworkConfig::lan(), 3, 1, Duration::ZERO);
        sim.set_corruptor(std::sync::Arc::new(|msg: &mut Msg, _salt| {
            if let Msg::Ping(i) = msg {
                *i += 100;
            }
        }));
        sim.add_link_fault(LinkFault::new(
            LinkFaultKind::Corrupt { probability: 1.0 },
            NodeMatcher::Node(client(1)),
            NodeMatcher::Node(client(2)),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        sim.run_until(SimTime::from_millis(10));
        let mut pongs = sim
            .actor::<Pinger>(client(1))
            .expect("pinger")
            .pongs_received
            .clone();
        pongs.sort_unstable();
        assert_eq!(pongs, vec![100, 101, 102]);
        assert_eq!(sim.metrics().messages_corrupted, 3);
        assert_eq!(sim.metrics().messages_dropped, 0);
    }

    /// Events queued across many buckets and in the same bucket pop in
    /// strict (time, sequence) order — the global-heap equivalence the
    /// determinism contract promises.
    #[test]
    fn queue_pops_in_time_then_sequence_order() {
        struct Recorder {
            seen: Vec<(SimTime, u32)>,
        }
        impl Actor<Msg> for Recorder {
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
                if let Msg::Ping(i) = msg {
                    self.seen.push((ctx.now(), i));
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(1, NetworkConfig::instant());
        sim.add_node(
            client(1),
            NodeProps::default().with_cores(64),
            Box::new(Recorder { seen: vec![] }),
        );
        // Inject in scrambled time order, including same-time pairs (which
        // must deliver in injection order) and far-future outliers.
        let times: Vec<u64> = vec![900, 20, 20, 500_000_000, 100, 70_000_000, 100, 3];
        for (i, us) in times.iter().enumerate() {
            sim.inject(
                client(1),
                client(9),
                Msg::Ping(i as u32),
                SimTime::from_nanos(*us * 1_000),
            );
        }
        sim.run_until(SimTime::from_secs(600));
        let rec: &Recorder = sim.actor(client(1)).expect("recorder");
        let mut expected: Vec<(SimTime, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, us)| (SimTime::from_nanos(us * 1_000), i as u32))
            .collect();
        // Stable sort by time keeps same-time entries in injection
        // (sequence) order.
        expected.sort_by_key(|(at, _)| *at);
        assert_eq!(rec.seen, expected);
    }
}
