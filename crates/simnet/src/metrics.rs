//! Simulation metrics: message counts, CPU utilization, queueing.

use basil_common::{Duration, NodeId, SimTime};
use std::collections::HashMap;

/// Per-node metrics collected by the simulator.
#[derive(Clone, Debug, Default)]
pub struct NodeMetrics {
    /// Messages whose handler has run on this node.
    pub messages_processed: u64,
    /// Timers fired on this node.
    pub timers_fired: u64,
    /// Total CPU time charged by this node's handlers.
    pub cpu_busy: Duration,
    /// Total time messages spent waiting for a free core before processing.
    pub queue_wait: Duration,
    /// Messages sent by this node.
    pub messages_sent: u64,
}

impl NodeMetrics {
    /// CPU utilization of this node over a window of `elapsed` wall time,
    /// normalized by `cores`.
    pub fn utilization(&self, elapsed: Duration, cores: u32) -> f64 {
        if elapsed == Duration::ZERO || cores == 0 {
            return 0.0;
        }
        self.cpu_busy.as_nanos() as f64 / (elapsed.as_nanos() as f64 * cores as f64)
    }
}

/// Whole-simulation metrics.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to a handler.
    pub messages_delivered: u64,
    /// Messages dropped by the network (loss, partition, or a link fault —
    /// including corrupted messages discarded as detected garble).
    pub messages_dropped: u64,
    /// Messages a [`crate::network::LinkFaultKind::Corrupt`] fault hit
    /// (whether mutated by a corruptor or discarded).
    pub messages_corrupted: u64,
    /// Messages a [`crate::network::LinkFaultKind::Replay`] fault
    /// duplicated.
    pub messages_replayed: u64,
    /// Events processed by the simulator loop.
    pub events_processed: u64,
    /// Per-node breakdown.
    pub per_node: HashMap<NodeId, NodeMetrics>,
    /// Time of the last processed event.
    pub last_event_at: SimTime,
}

impl Metrics {
    /// The metrics entry for `node`, creating it if needed.
    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeMetrics {
        self.per_node.entry(node).or_default()
    }

    /// The metrics entry for `node`, if the node has done anything yet.
    pub fn node(&self, node: NodeId) -> Option<&NodeMetrics> {
        self.per_node.get(&node)
    }

    /// Aggregate CPU busy time across a set of nodes (e.g. all replicas of a
    /// shard).
    pub fn total_cpu(&self, nodes: impl IntoIterator<Item = NodeId>) -> Duration {
        let mut total = Duration::ZERO;
        for n in nodes {
            if let Some(m) = self.per_node.get(&n) {
                total += m.cpu_busy;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;

    #[test]
    fn utilization_math() {
        let m = NodeMetrics {
            cpu_busy: Duration::from_millis(500),
            ..Default::default()
        };
        let u = m.utilization(Duration::from_secs(1), 1);
        assert!((u - 0.5).abs() < 1e-9);
        let u8c = m.utilization(Duration::from_secs(1), 8);
        assert!((u8c - 0.0625).abs() < 1e-9);
        assert_eq!(m.utilization(Duration::ZERO, 1), 0.0);
    }

    #[test]
    fn total_cpu_sums_selected_nodes() {
        let mut metrics = Metrics::default();
        let a = NodeId::Client(ClientId(1));
        let b = NodeId::Client(ClientId(2));
        metrics.node_mut(a).cpu_busy = Duration::from_millis(10);
        metrics.node_mut(b).cpu_busy = Duration::from_millis(20);
        assert_eq!(metrics.total_cpu([a, b]), Duration::from_millis(30));
        assert_eq!(metrics.total_cpu([a]), Duration::from_millis(10));
        assert_eq!(
            metrics.total_cpu([NodeId::Client(ClientId(9))]),
            Duration::ZERO
        );
    }
}
